"""Tests for generators, transforms, and dataset analogues."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import datasets, generators, transforms


class TestGenerators:
    def test_uniform_bounds(self, rng):
        points = generators.uniform(1000, 4, rng)
        assert points.shape == (1000, 4)
        assert points.min() >= 0.0 and points.max() <= 1.0

    def test_gaussian_mixture_shape(self, rng):
        points = generators.gaussian_mixture(500, 8, rng, n_clusters=5)
        assert points.shape == (500, 8)

    def test_gaussian_mixture_is_clustered(self, rng):
        points = generators.gaussian_mixture(
            2000, 4, rng, n_clusters=3, cluster_std=0.01
        )
        # Clustered data: mean nearest-neighbor distance far below the
        # data extent.
        sample = points[:200]
        dists = np.linalg.norm(sample[:, None] - sample[None, :], axis=2)
        np.fill_diagonal(dists, np.inf)
        assert dists.min(axis=1).mean() < 0.1 * np.ptp(points)

    def test_gaussian_mixture_weights(self, rng):
        weights = np.array([1.0, 0.0, 0.0])
        points = generators.gaussian_mixture(
            300, 2, rng, n_clusters=3, cluster_std=0.001, weights=weights
        )
        assert np.ptp(points, axis=0).max() < 0.1  # all in one blob

    def test_gaussian_mixture_bad_weights(self, rng):
        with pytest.raises(ValueError):
            generators.gaussian_mixture(10, 2, rng, n_clusters=3,
                                        weights=np.array([1.0, 2.0]))

    def test_hierarchical_clusters_shape(self, rng):
        points = generators.hierarchical_clusters(400, 6, rng)
        assert points.shape == (400, 6)

    def test_hierarchical_clusters_validation(self, rng):
        with pytest.raises(ValueError):
            generators.hierarchical_clusters(10, 2, rng, branching=())
        with pytest.raises(ValueError):
            generators.hierarchical_clusters(10, 2, rng, scale_ratio=1.5)

    def test_embedded_manifold_low_rank(self, rng):
        points = generators.embedded_manifold(500, 10, rng, intrinsic_dim=2,
                                              noise=0.0)
        singular = np.linalg.svd(points - points.mean(axis=0),
                                 compute_uv=False)
        assert singular[2] < 1e-8 * singular[0]

    def test_embedded_manifold_validation(self, rng):
        with pytest.raises(ValueError):
            generators.embedded_manifold(10, 4, rng, intrinsic_dim=5)

    def test_random_walk_series_shape(self, rng):
        series = generators.random_walk_series(50, 100, rng)
        assert series.shape == (50, 100)

    def test_determinism(self):
        a = generators.gaussian_mixture(100, 3, np.random.default_rng(5))
        b = generators.gaussian_mixture(100, 3, np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_invalid_sizes(self, rng):
        with pytest.raises(ValueError):
            generators.uniform(0, 3, rng)
        with pytest.raises(ValueError):
            generators.uniform(10, 0, rng)


class TestKLT:
    def test_distances_preserved(self, rng):
        points = rng.random((200, 6))
        transformed = transforms.klt(points)
        original = np.linalg.norm(points[0] - points[1])
        rotated = np.linalg.norm(transformed[0] - transformed[1])
        assert rotated == pytest.approx(original)

    def test_variance_sorted(self, rng):
        points = rng.random((500, 5)) * np.array([1.0, 5.0, 0.1, 2.0, 3.0])
        transformed = transforms.klt(points)
        variances = transformed.var(axis=0)
        assert np.all(np.diff(variances) <= 1e-9)

    def test_decorrelated(self, rng):
        points = rng.random((2000, 4))
        points[:, 1] += points[:, 0]  # correlated input
        transformed = transforms.klt(points)
        cov = np.cov(transformed, rowvar=False)
        off_diag = cov - np.diag(np.diag(cov))
        assert np.abs(off_diag).max() < 1e-8

    def test_centered(self, rng):
        transformed = transforms.klt(rng.random((100, 3)) + 5.0)
        assert np.allclose(transformed.mean(axis=0), 0.0, atol=1e-9)

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            transforms.klt(np.zeros((1, 3)))


class TestDFT:
    def test_output_width_equals_length(self, rng):
        series = rng.random((30, 360))
        features = transforms.dft_features(series)
        assert features.shape == (30, 360)

    def test_odd_length(self, rng):
        features = transforms.dft_features(rng.random((10, 7)))
        assert features.shape == (10, 7)

    def test_isometry(self, rng):
        series = rng.random((20, 64))
        features = transforms.dft_features(series)
        original = np.linalg.norm(series[3] - series[9])
        transformed = np.linalg.norm(features[3] - features[9])
        assert transformed == pytest.approx(original, rel=1e-9)

    def test_energy_compaction_on_walks(self, rng):
        series = generators.random_walk_series(100, 128, rng)
        features = transforms.dft_features(series)
        energy = (features**2).mean(axis=0)
        low = energy[: 16].sum()
        high = energy[-64:].sum()
        assert low > 5 * high  # random walks are low-frequency heavy

    def test_invalid_input(self):
        with pytest.raises(ValueError):
            transforms.dft_features(np.zeros(10))


class TestDatasetAnalogues:
    def test_registry_complete(self):
        assert set(datasets.DATASETS) == {
            "COLOR64", "TEXTURE48", "TEXTURE60", "ISOLET617", "STOCK360"
        }

    def test_paper_cardinalities(self):
        assert datasets.DATASETS["COLOR64"].n_points == 112_361
        assert datasets.DATASETS["TEXTURE48"].n_points == 26_697
        assert datasets.DATASETS["TEXTURE60"].n_points == 275_465
        assert datasets.DATASETS["ISOLET617"].n_points == 7_800
        assert datasets.DATASETS["STOCK360"].n_points == 6_500

    def test_paper_dimensionalities(self):
        dims = {name: spec.dim for name, spec in datasets.DATASETS.items()}
        assert dims == {
            "COLOR64": 64, "TEXTURE48": 48, "TEXTURE60": 60,
            "ISOLET617": 617, "STOCK360": 360,
        }

    def test_scale_reduces_cardinality(self):
        points = datasets.load("TEXTURE48", scale=0.01, seed=0)
        assert points.shape == (267, 48)

    def test_load_case_insensitive(self):
        points = datasets.load("stock360", scale=0.1)
        assert points.shape[1] == 360

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            datasets.load("NOPE")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            datasets.load("COLOR64", scale=0.0)
        with pytest.raises(ValueError):
            datasets.load("COLOR64", scale=1.5)

    def test_determinism(self):
        a = datasets.load("TEXTURE48", scale=0.02, seed=9)
        b = datasets.load("TEXTURE48", scale=0.02, seed=9)
        assert np.array_equal(a, b)

    def test_seed_changes_data(self):
        a = datasets.load("TEXTURE48", scale=0.02, seed=1)
        b = datasets.load("TEXTURE48", scale=0.02, seed=2)
        assert not np.allclose(a, b)

    def test_klt_variance_ordering(self):
        points = datasets.load("COLOR64", scale=0.02, seed=0)
        variances = points.var(axis=0)
        assert np.all(np.diff(variances) <= 1e-9)
