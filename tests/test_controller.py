"""Deterministic-tick suite for the autonomous topology controller.

Every policy decision -- dwell windows, cool-downs, the no-flap rule,
priority ordering, refusals, busy skips -- is driven through
:meth:`TopologyController.tick` against a scripted fake topology with
an injected counting clock: zero wall-clock sleeps, zero real
surgeries.  A final set of tests runs the loop against a real
over-partitioned cluster to prove the fake didn't lie about the
interfaces.
"""

from __future__ import annotations

import threading
from types import SimpleNamespace

import numpy as np
import pytest

from repro.cluster import PredictionCluster
from repro.cluster.controller import TopologyController
from repro.errors import BudgetExceededError, InputValidationError
from repro.workload.queries import density_biased_knn_workload


# ---------------------------------------------------------------------------
# Scripted fakes: the controller only sees detector outputs and thunks
# ---------------------------------------------------------------------------


class FakeDrift:
    def __init__(self):
        self.props: list = []

    def proposals(self):
        return list(self.props)

    def live_center(self, shard):
        return f"center-{shard}"


class FakeTopology:
    """Scriptable detectors over a mutable shard set."""

    def __init__(self, active=(0, 1, 2)):
        self.active = set(active)
        self.events: list[dict] = []
        self.drift = FakeDrift()
        self.splits: list[dict] = []
        self.merges: list[dict] = []
        self.calls: list[tuple] = []
        self.fail_next: BaseException | None = None
        self._next_id = 100

    def split_candidates(self):
        return [c for c in self.splits if c["shard"] in self.active]

    def merge_candidates(self):
        return [c for c in self.merges
                if set(c["pair"]) <= self.active]

    def _drift_workload(self, shard):
        return f"workload-{shard}"

    def _surgery(self, op, parents, n_children):
        if self.fail_next is not None:
            error, self.fail_next = self.fail_next, None
            raise error
        children = tuple(
            self._next_id + i for i in range(n_children)
        )
        self._next_id += n_children
        self.active -= set(parents)
        self.active |= set(children)
        self.events.append({
            "op": op, "shards": list(parents),
            "children": list(children),
        })
        return children

    def re_tune_shard(self, shard, *, workload=None, center=None):
        self.calls.append(("re-tune", shard, workload, center))
        return self._surgery("re-tune", (shard,), 1)[0]

    def split_shard(self, shard):
        self.calls.append(("split", shard))
        return self._surgery("split", (shard,), 2)

    def merge_shards(self, a, b):
        self.calls.append(("merge", a, b))
        return self._surgery("merge", (a, b), 1)[0]


class FakeCluster:
    def __init__(self, active=(0, 1, 2)):
        self.topology = FakeTopology(active)
        self.router = SimpleNamespace(in_flight=lambda: 0)

    def active_shards(self):
        return sorted(self.topology.active)


def make_controller(cluster=None, **kwargs):
    cluster = cluster or FakeCluster()
    ticks = [0.0]

    def clock():
        ticks[0] += 1.0
        return ticks[0]

    kwargs.setdefault("clock", clock)
    return cluster, TopologyController(cluster, **kwargs)


def drift_proposal(shard, drift=0.9):
    return SimpleNamespace(shard=shard, drift=drift)


# ---------------------------------------------------------------------------
# Construction and lifecycle
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("bad", [
    {"interval_s": 0.0}, {"interval_s": -1.0},
    {"dwell_epochs": 0}, {"cooldown_epochs": -1},
])
def test_constructor_rejects_bad_hysteresis(bad):
    with pytest.raises(InputValidationError):
        TopologyController(FakeCluster(), **bad)


def test_start_stop_lifecycle():
    cluster, controller = make_controller(interval_s=0.005)
    assert not controller.running
    controller.start()
    controller.start()  # idempotent
    assert controller.running
    controller.stop()
    controller.stop()  # idempotent
    assert not controller.running
    # a stopped controller can be restarted
    controller.start()
    assert controller.running
    controller.stop()


def test_idle_tick_records_epoch_and_gauge():
    cluster, controller = make_controller()
    record = controller.tick()
    assert record["action"] == "idle"
    assert record["tick"] == controller.epoch == 1
    assert record["in_flight"] == 0
    assert controller.counters["ticks"] == 1
    assert controller.events == [record]


# ---------------------------------------------------------------------------
# Dwell window
# ---------------------------------------------------------------------------


def test_merge_waits_out_dwell_window():
    cluster, controller = make_controller(dwell_epochs=3)
    cluster.topology.merges = [{"pair": (0, 1), "ratio": 1.0}]
    assert controller.tick()["action"] == "idle"
    assert controller.tick()["action"] == "idle"
    assert controller.counters["dwell_waits"] == 2
    record = controller.tick()
    assert record["action"] == "merge"
    assert record["pair"] == [0, 1]
    assert cluster.topology.calls == [("merge", 0, 1)]
    assert cluster.active_shards() == [2, 100]


def test_dwell_resets_when_candidate_disappears():
    cluster, controller = make_controller(dwell_epochs=2)
    pair = {"pair": (0, 1), "ratio": 1.0}
    cluster.topology.merges = [pair]
    assert controller.tick()["action"] == "idle"  # dwell 1
    cluster.topology.merges = []
    assert controller.tick()["action"] == "idle"  # gone: clock resets
    cluster.topology.merges = [pair]
    assert controller.tick()["action"] == "idle"  # dwell 1 again
    assert controller.tick()["action"] == "merge"  # dwell 2: fires


# ---------------------------------------------------------------------------
# Priority and cool-down
# ---------------------------------------------------------------------------


def test_priority_retune_beats_split_beats_merge():
    cluster, controller = make_controller(
        dwell_epochs=1, cooldown_epochs=0
    )
    topology = cluster.topology
    topology.drift.props = [drift_proposal(2)]
    topology.splits = [{"shard": 1, "ratio": 9.0}]
    topology.merges = [{"pair": (0, 1), "ratio": 1.0}]
    record = controller.tick()
    assert record["action"] == "re-tune"
    assert record["shard"] == 2
    # the re-tune passed the synthesized workload and live center
    assert topology.calls[-1] == (
        "re-tune", 2, "workload-2", "center-2"
    )
    topology.drift.props = []
    assert controller.tick()["action"] == "split"
    topology.splits = []
    # shard 2 became 100 (re-tune) and shard 1 became 101+102 (split);
    # re-point the merge pair at survivors before it can fire
    topology.merges = [{"pair": (0, 100), "ratio": 1.0}]
    assert controller.tick()["action"] == "merge"


def test_cooldown_vetoes_surgery_on_newborn_shard():
    cluster, controller = make_controller(
        dwell_epochs=1, cooldown_epochs=2
    )
    topology = cluster.topology
    topology.splits = [{"shard": 0, "ratio": 9.0}]
    record = controller.tick()  # epoch 1: split -> children 100, 101
    assert record["action"] == "split"
    children = record["successors"]
    topology.splits = [{"shard": children[0], "ratio": 9.0}]
    # cool-down runs until epoch 3 (birth 1 + cooldown 2)
    assert controller.tick()["action"] == "idle"  # epoch 2: cooling
    assert controller.counters["cooldown_vetoes"] == 1
    assert controller.tick()["action"] == "split"  # epoch 3: released
    assert controller.flaps == 0


def test_absorbs_manual_surgeries_from_event_log():
    cluster, controller = make_controller(cooldown_epochs=3)
    # a human performed a split behind the controller's back
    cluster.topology.split_shard(1)
    controller.tick()
    report = controller.report()
    assert set(report["born"]) == {100, 101}
    assert report["born"][100]["op"] == "split"
    assert report["cooling"] == {100: 4, 101: 4}


# ---------------------------------------------------------------------------
# The no-flap rule
# ---------------------------------------------------------------------------


def test_no_flap_merge_child_may_not_split_within_dwell():
    cluster, controller = make_controller(
        dwell_epochs=2, cooldown_epochs=0
    )
    topology = cluster.topology
    topology.merges = [{"pair": (0, 1), "ratio": 1.0}]
    controller.tick()                                 # dwell 1
    record = controller.tick()                        # merge -> 100
    assert record["action"] == "merge"
    merged = record["successors"][0]
    topology.merges = []
    # the merged child immediately looks expensive: a split candidate
    topology.splits = [{"shard": merged, "ratio": 9.0}]
    assert controller.tick()["action"] == "idle"      # flap veto
    assert controller.counters["flap_vetoes"] == 1
    assert controller.tick()["action"] == "split"     # window passed
    # the veto *worked*, so no actual flap was ever recorded
    assert controller.flaps == 0


def test_no_flap_split_child_may_not_merge_within_dwell():
    cluster, controller = make_controller(
        dwell_epochs=3, cooldown_epochs=0
    )
    topology = cluster.topology
    topology.splits = [{"shard": 0, "ratio": 9.0}]
    record = controller.tick()                        # split -> 100, 101
    children = record["successors"]
    topology.splits = []
    topology.merges = [{"pair": tuple(children), "ratio": 1.0}]
    # dwell alone holds it for ticks 2-3; tick 4 is ripe but the pair
    # was born of a split at epoch 1, so 4 - 1 = 3 is the first epoch
    # the no-flap window allows -- the two gates hand over exactly.
    assert controller.tick()["action"] == "idle"      # dwell 1
    assert controller.tick()["action"] == "idle"      # dwell 2
    assert controller.tick()["action"] == "merge"     # dwell 3, window up
    assert controller.flaps == 0


# ---------------------------------------------------------------------------
# Refusals and serialization
# ---------------------------------------------------------------------------


def test_budget_refusal_leaves_topology_untouched():
    cluster, controller = make_controller(dwell_epochs=1)
    topology = cluster.topology
    topology.merges = [{"pair": (0, 1), "ratio": 1.0}]
    topology.fail_next = BudgetExceededError(
        "io_ops", spent=10.0, limit=5.0, phase="merge"
    )
    record = controller.tick()
    assert record["action"] == "refused:merge"
    assert record["error"] == "BudgetExceededError"
    assert controller.counters["refused_merge"] == 1
    assert cluster.active_shards() == [0, 1, 2]  # untouched
    # admission recovers next tick: the same decision fires cleanly
    assert controller.tick()["action"] == "merge"
    assert cluster.active_shards() == [2, 100]


def test_concurrent_tick_skips_instead_of_queueing():
    cluster, controller = make_controller()
    assert controller._lock.acquire(blocking=False)
    try:
        record = controller.tick()
    finally:
        controller._lock.release()
    assert record["action"] == "skip:surgery-in-flight"
    assert controller.counters["busy_skips"] == 1
    assert controller.epoch == 0  # a skipped tick is not an epoch
    assert controller.tick()["action"] == "idle"  # lock released: runs


def test_background_loop_survives_tick_errors():
    cluster, controller = make_controller(interval_s=0.001)

    fired = threading.Event()

    def exploding(*args, **kwargs):
        fired.set()
        raise RuntimeError("detector blew up")

    cluster.topology.merge_candidates = exploding
    controller.start()
    assert fired.wait(timeout=5.0)
    assert controller.running  # the loop outlived the error
    controller.stop()
    assert controller.counters["tick_errors"] >= 1
    assert any(e["action"] == "error" for e in controller.events)


def test_report_shape():
    cluster, controller = make_controller(dwell_epochs=2)
    cluster.topology.merges = [{"pair": (0, 1), "ratio": 1.0}]
    controller.tick()
    report = controller.report()
    assert report["epoch"] == 1
    assert report["flaps"] == 0
    assert report["dwell"] == {"0+1": 1}
    assert report["running"] is False
    assert report["counters"]["ticks"] == 1


# ---------------------------------------------------------------------------
# Against a real cluster
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def blob_data():
    rng = np.random.default_rng(7)
    data = np.vstack([
        rng.normal(0.0, 1.0, size=(200, 4)),
        rng.normal(6.0, 0.5, size=(200, 4)),
    ])
    tuning = density_biased_knn_workload(data, 16, 4, rng)
    return data, tuning


def make_cluster(blob_data, tmp_path, **kwargs):
    data, tuning = blob_data
    kwargs.setdefault("n_shards", 3)
    kwargs.setdefault("merge_when", 2.5)
    return PredictionCluster(
        data, tuning, artifact_root=tmp_path,
        n_replicas=3, replication=2, memory=200,
        fit_seed=7, seed=7, **kwargs,
    )


def test_real_cluster_controller_merges_over_partition(
    blob_data, tmp_path
):
    cluster = make_cluster(blob_data, tmp_path)
    try:
        ticks = [0.0]

        def clock():
            ticks[0] += 0.5
            return ticks[0]

        controller = cluster.start_controller(
            autostart=False, dwell_epochs=2, clock=clock,
        )
        records = [controller.tick() for _ in range(5)]
        actions = [r["action"] for r in records]
        assert actions.count("merge") == 1
        assert controller.flaps == 0
        # the merged shard serves, and metrics expose the loop
        merged = cluster.active_shards()[-1]
        workload = density_biased_knn_workload(
            cluster.shard_points[merged], 4, 4,
            np.random.default_rng(1),
        )
        assert cluster.request(merged, workload).status == "ok"
        assert cluster.metrics()["controller"]["epoch"] == 5
    finally:
        cluster.stop()


def test_real_cluster_refuses_second_controller(blob_data, tmp_path):
    cluster = make_cluster(blob_data, tmp_path)
    try:
        cluster.start_controller(interval_s=60.0)
        with pytest.raises(InputValidationError):
            cluster.start_controller()
        cluster.stop_controller()
        # after stopping, attaching again is fine
        cluster.start_controller(autostart=False)
    finally:
        cluster.stop()
