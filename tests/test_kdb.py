"""Tests for the k-d-B-tree substrate and its predictor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kdb_model import KDBMiniIndexModel
from repro.rtree.geometry import volume
from repro.rtree.kdb import KDBTree
from repro.workload.queries import density_biased_knn_workload


@pytest.fixture(scope="module")
def kdb(clustered_points):
    return KDBTree.bulk_load(clustered_points, c_data=32)


@pytest.fixture(scope="module")
def workload(clustered_points):
    return density_biased_knn_workload(
        clustered_points, 30, 21, np.random.default_rng(8)
    )


class TestConstruction:
    def test_validates(self, kdb):
        kdb.validate()

    def test_pages_tile_the_space(self, kdb):
        lower, upper = kdb.leaf_corners()
        root_volume = volume(kdb.root.mbr.lower, kdb.root.mbr.upper)
        assert volume(lower, upper).sum() == pytest.approx(float(root_volume))

    def test_pages_disjoint(self, kdb):
        from repro.rtree.stats import pairwise_overlap_count

        lower, upper = kdb.leaf_corners()
        assert pairwise_overlap_count(lower, upper) == 0

    def test_capacity_respected(self, kdb):
        assert all(l.n_points <= 32 for l in kdb.leaves)

    def test_leaf_count_power_of_two_split(self, clustered_points):
        # Binary median splits: leaves = 2^ceil(log2(N / C)).
        tree = KDBTree.bulk_load(clustered_points, c_data=32)
        n = clustered_points.shape[0]
        expected = 2 ** int(np.ceil(np.log2(n / 32)))
        assert tree.n_leaves == expected

    def test_single_page(self, rng):
        points = rng.random((10, 3))
        tree = KDBTree.bulk_load(points, c_data=32)
        assert tree.n_leaves == 1
        tree.validate()

    def test_duplicates(self):
        points = np.tile([0.5, 0.5], (200, 1))
        tree = KDBTree.bulk_load(points, c_data=16)
        tree.validate()

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            KDBTree.bulk_load(np.empty((0, 2)), c_data=8)
        with pytest.raises(ValueError):
            KDBTree.bulk_load(np.zeros((5, 2)), c_data=0)
        with pytest.raises(ValueError):
            KDBTree.bulk_load(np.zeros((5, 2)), c_data=8, virtual_n=3)

    @given(st.integers(2, 400), st.integers(1, 5), st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_random_shapes_validate(self, n, d, seed):
        gen = np.random.default_rng(seed)
        tree = KDBTree.bulk_load(gen.random((n, d)), c_data=7)
        tree.validate()


class TestQueries:
    def test_knn_matches_brute_force(self, kdb, clustered_points, rng):
        for _ in range(5):
            query = clustered_points[rng.integers(len(clustered_points))]
            result = kdb.knn(query, 7)
            expected = np.sort(
                np.linalg.norm(clustered_points - query, axis=1)
            )[:7]
            assert np.allclose(np.sort(result.distances), expected)

    def test_counting_consistency(self, kdb, clustered_points, workload):
        counts = kdb.leaf_accesses_for_radius(workload.queries, workload.radii)
        assert np.all(counts >= 1)
        assert np.all(counts <= kdb.n_leaves)


class TestPrediction:
    @pytest.fixture(scope="class")
    def measured(self, kdb, workload):
        return float(
            kdb.leaf_accesses_for_radius(
                workload.queries, workload.radii
            ).mean()
        )

    def test_mini_page_count_exact(self, kdb, clustered_points, workload):
        result = KDBMiniIndexModel(32).predict(
            clustered_points, workload, 0.25, np.random.default_rng(0)
        )
        assert result.detail["n_mini_leaves"] == kdb.n_leaves

    @pytest.mark.parametrize("fraction", [0.5, 0.25, 0.1])
    def test_accurate_without_compensation(
        self, clustered_points, workload, measured, fraction
    ):
        """Space-partitioning pages need no Theorem 1 growth: sample
        medians estimate data medians at any usable fraction."""
        result = KDBMiniIndexModel(32).predict(
            clustered_points, workload, fraction, np.random.default_rng(0)
        )
        assert abs(result.relative_error(measured)) < 0.15

    def test_full_sample_exact(self, clustered_points, workload, measured):
        result = KDBMiniIndexModel(32).predict(
            clustered_points, workload, 1.0, np.random.default_rng(0)
        )
        assert result.mean_accesses == pytest.approx(measured)

    def test_invalid_fraction(self, clustered_points, workload):
        with pytest.raises(ValueError):
            KDBMiniIndexModel(32).predict(
                clustered_points, workload, 1.0001, np.random.default_rng(0)
            )
