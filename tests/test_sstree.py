"""Tests for the SS-tree substrate and its sphere-page predictor."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.spheres import SphereMiniIndexModel
from repro.rtree.sstree import (
    Sphere,
    SSTree,
    count_sphere_sphere,
    sphere_radius_compensation,
)
from repro.workload.queries import density_biased_knn_workload

C_DATA, C_DIR = 32, 16


@pytest.fixture(scope="module")
def sstree(clustered_points):
    return SSTree.bulk_load(clustered_points, C_DATA, C_DIR)


@pytest.fixture(scope="module")
def workload(clustered_points):
    return density_biased_knn_workload(
        clustered_points, 30, 21, np.random.default_rng(4)
    )


class TestSphere:
    def test_mindist_inside_zero(self):
        sphere = Sphere(np.zeros(3), 1.0)
        assert sphere.mindist_sq(np.array([0.5, 0.0, 0.0])) == 0.0

    def test_mindist_outside(self):
        sphere = Sphere(np.zeros(2), 1.0)
        assert sphere.mindist_sq(np.array([3.0, 0.0])) == pytest.approx(4.0)

    def test_intersects_sphere(self):
        sphere = Sphere(np.zeros(2), 1.0)
        assert sphere.intersects_sphere(np.array([2.5, 0.0]), 1.5)
        assert not sphere.intersects_sphere(np.array([2.5, 0.0]), 1.4)

    def test_grown(self):
        sphere = Sphere(np.ones(2), 2.0)
        grown = sphere.grown(1.5)
        assert grown.radius == pytest.approx(3.0)
        assert np.array_equal(grown.center, sphere.center)

    def test_validation(self):
        with pytest.raises(ValueError):
            Sphere(np.zeros(2), -1.0)
        with pytest.raises(ValueError):
            Sphere(np.zeros((2, 2)), 1.0)
        with pytest.raises(ValueError):
            Sphere(np.zeros(2), 1.0).grown(-1.0)


class TestRadiusCompensation:
    def test_no_sampling_identity(self):
        assert sphere_radius_compensation(32, 1.0, 8) == pytest.approx(1.0)

    def test_always_grows(self):
        assert sphere_radius_compensation(32, 0.3, 8) > 1.0

    def test_shrinks_with_dimension(self):
        """Extreme-value concentration: sphere radii barely shrink in
        high dimensions."""
        low = sphere_radius_compensation(32, 0.3, 2)
        high = sphere_radius_compensation(32, 0.3, 64)
        assert high < low

    def test_matches_uniform_ball_monte_carlo(self):
        """E[max radius of n uniform ball points] = R * nd / (nd + 1)."""
        gen = np.random.default_rng(3)
        d, trials = 3, 4000
        for n in (5, 20):
            direction = gen.standard_normal((trials, n, d))
            direction /= np.linalg.norm(direction, axis=2, keepdims=True)
            radius = gen.random((trials, n)) ** (1.0 / d)
            measured = np.mean((radius).max(axis=1))
            assert measured == pytest.approx(n * d / (n * d + 1), rel=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            sphere_radius_compensation(1.0, 0.5, 4)
        with pytest.raises(ValueError):
            sphere_radius_compensation(32, 0.0, 4)
        with pytest.raises(ValueError):
            sphere_radius_compensation(32, 0.5, 0)


class TestSSTree:
    def test_validates(self, sstree):
        sstree.validate()

    def test_same_topology_as_box_tree(self, sstree, clustered_points):
        from repro.rtree.tree import RTree

        box = RTree.bulk_load(clustered_points, C_DATA, C_DIR)
        assert sstree.n_leaves == box.n_leaves
        assert sstree.height == box.height

    def test_knn_matches_brute_force(self, sstree, clustered_points, rng):
        for _ in range(5):
            query = clustered_points[rng.integers(len(clustered_points))]
            result = sstree.knn(query, 7)
            expected = np.sort(
                np.linalg.norm(clustered_points - query, axis=1)
            )[:7]
            assert np.allclose(np.sort(result.distances), expected)

    def test_optimality_invariant(self, sstree, clustered_points):
        result = sstree.knn(clustered_points[0], 21)
        counted = sstree.leaf_accesses_for_radius(
            clustered_points[0][None, :], np.array([result.radius])
        )
        assert result.leaf_accesses == counted[0]

    def test_spheres_cover_points(self, sstree, clustered_points):
        centers, radii = sstree.leaf_spheres()
        for leaf, (center, radius) in zip(
            (l for l in sstree.leaves if l.mbr is not None),
            zip(centers, radii),
        ):
            dists = np.linalg.norm(
                clustered_points[leaf.point_ids] - center, axis=1
            )
            assert dists.max() <= radius + 1e-9

    def test_mini_topology_imposed(self, clustered_points, rng):
        n = clustered_points.shape[0]
        sample = clustered_points[rng.choice(n, n // 4, replace=False)]
        mini = SSTree.bulk_load(sample, C_DATA, C_DIR, virtual_n=n)
        full = SSTree.bulk_load(clustered_points, C_DATA, C_DIR)
        assert mini.n_leaves == full.n_leaves

    def test_spheres_access_more_than_boxes_high_d(self):
        """Sphere pages overlap more than boxes in high dimensions --
        the SR-tree's motivating observation."""
        from repro.data import datasets
        from repro.rtree.tree import RTree

        points = datasets.texture60(scale=0.02, seed=5)
        workload = density_biased_knn_workload(
            points, 20, 21, np.random.default_rng(1)
        )
        spheres = SSTree.bulk_load(points, 34, 16)
        boxes = RTree.bulk_load(points, 34, 16)
        sphere_mean = spheres.leaf_accesses_for_radius(
            workload.queries, workload.radii
        ).mean()
        box_mean = boxes.leaf_accesses_for_radius(
            workload.queries, workload.radii
        ).mean()
        assert sphere_mean > box_mean


class TestCountSphereSphere:
    def test_matches_pairwise(self, rng):
        leaf_centers = rng.random((20, 4))
        leaf_radii = rng.random(20) * 0.2
        query = rng.random(4)
        counts = count_sphere_sphere(
            query, np.array([0.3]), leaf_centers, leaf_radii
        )
        expected = sum(
            1
            for c, r in zip(leaf_centers, leaf_radii)
            if np.linalg.norm(query - c) <= 0.3 + r
        )
        assert counts[0] == expected

    def test_empty_leaves(self):
        counts = count_sphere_sphere(
            np.zeros((2, 3)), np.ones(2), np.empty((0, 3)), np.empty(0)
        )
        assert counts.sum() == 0


class TestSpherePrediction:
    @pytest.fixture(scope="class")
    def measured(self, sstree, workload):
        return float(
            sstree.leaf_accesses_for_radius(
                workload.queries, workload.radii
            ).mean()
        )

    def test_accurate_at_half_sample(self, clustered_points, workload, measured):
        model = SphereMiniIndexModel(C_DATA, C_DIR)
        result = model.predict(clustered_points, workload, 0.5,
                               np.random.default_rng(0))
        assert abs(result.relative_error(measured)) < 0.15

    def test_bootstrap_beats_uniform_when_sampled_hard(
        self, clustered_points, workload, measured
    ):
        uniform = SphereMiniIndexModel(C_DATA, C_DIR, calibration="uniform")
        bootstrap = SphereMiniIndexModel(C_DATA, C_DIR)
        err_uniform = abs(
            uniform.predict(clustered_points, workload, 0.2,
                            np.random.default_rng(0)).relative_error(measured)
        )
        err_bootstrap = abs(
            bootstrap.predict(clustered_points, workload, 0.2,
                              np.random.default_rng(0)).relative_error(measured)
        )
        assert err_bootstrap <= err_uniform + 0.03

    def test_full_sample_exact(self, clustered_points, workload, measured):
        result = SphereMiniIndexModel(C_DATA, C_DIR).predict(
            clustered_points, workload, 1.0, np.random.default_rng(0)
        )
        assert result.mean_accesses == pytest.approx(measured)

    def test_growth_factor_reported(self, clustered_points, workload):
        result = SphereMiniIndexModel(C_DATA, C_DIR).predict(
            clustered_points, workload, 0.3, np.random.default_rng(0)
        )
        assert result.detail["radius_growth"] >= 1.0

    def test_invalid_calibration(self):
        with pytest.raises(ValueError):
            SphereMiniIndexModel(C_DATA, C_DIR, calibration="magic")

    def test_invalid_fraction(self, clustered_points, workload):
        with pytest.raises(ValueError):
            SphereMiniIndexModel(C_DATA, C_DIR).predict(
                clustered_points, workload, 0.0, np.random.default_rng(0)
            )
