"""The counting-kernel contract: every backend is bit-identical.

The kernels package promises that ``reference`` (the per-query oracle),
``numpy_batched`` (the tiled default), and any optional backend return
*exactly* equal ``int64`` counts for the same geometry and workload --
not merely close.  These tests enforce that promise three ways: by
property (random geometries and workloads, including empty and
degenerate ones), by layer (each predictor run under each kernel), and
by interface (registry resolution, the typed unknown-kernel error, and
the CLI exit code it maps to).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.dynamic import DynamicMiniIndexModel
from repro.core.kdb_model import KDBMiniIndexModel
from repro.core.predictor import IndexCostPredictor
from repro.errors import UnknownKernelError
from repro.kernels import (
    DEFAULT_KERNEL,
    KERNEL_ENV_VAR,
    NUMBA_AVAILABLE,
    PREFERRED_KERNEL,
    BatchPlan,
    LeafGeometry,
    NumpyBatchedKernel,
    as_radii_grid,
    available_kernels,
    default_kernel_name,
    get_kernel,
)
from repro.kernels import registry as kernel_registry
from repro.kernels.reference import ReferenceKernel
from repro.workload.queries import KNNWorkload, RangeWorkload

FAST = ["--dataset", "TEXTURE48", "--scale", "0.05", "--queries", "10",
        "--memory", "500"]


def _random_case(seed: int, k: int, d: int, n_queries: int):
    """A random leaf geometry plus spheres and ranges probing it."""
    gen = np.random.default_rng(seed)
    lower = gen.random((k, d)) * 2.0 - 0.5
    extent = gen.random((k, d)) * 0.4
    # Sprinkle degenerate (zero-extent) sides and whole-point leaves.
    extent[gen.random((k, d)) < 0.15] = 0.0
    geometry = LeafGeometry.from_corners(lower, lower + extent)
    queries = gen.random((n_queries, d)) * 2.0 - 0.5
    radii = gen.random(n_queries) * 0.6
    radii[gen.random(n_queries) < 0.2] = 0.0  # radius-0 point probes
    q_lower = gen.random((n_queries, d)) * 2.0 - 0.5
    q_extent = gen.random((n_queries, d)) * 0.5
    q_extent[gen.random((n_queries, d)) < 0.2] = 0.0
    return geometry, queries, radii, q_lower, q_lower + q_extent


class TestKernelEquivalence:
    """Property: every registered backend equals the reference oracle."""

    @given(
        st.integers(0, 10_000),
        st.integers(1, 120),
        st.integers(1, 6),
        st.integers(1, 40),
    )
    @settings(max_examples=40, deadline=None)
    def test_knn_counts_bit_identical(self, seed, k, d, n_queries):
        geometry, queries, radii, _, _ = _random_case(seed, k, d, n_queries)
        expected = get_kernel("reference").count_knn(geometry, queries, radii)
        for name in available_kernels():
            counts = get_kernel(name).count_knn(geometry, queries, radii)
            assert counts.dtype == np.int64, name
            np.testing.assert_array_equal(counts, expected, err_msg=name)

    @given(
        st.integers(0, 10_000),
        st.integers(1, 120),
        st.integers(1, 6),
        st.integers(1, 40),
    )
    @settings(max_examples=40, deadline=None)
    def test_range_counts_bit_identical(self, seed, k, d, n_queries):
        geometry, _, _, q_lower, q_upper = _random_case(seed, k, d, n_queries)
        expected = get_kernel("reference").count_range(
            geometry, q_lower, q_upper
        )
        for name in available_kernels():
            counts = get_kernel(name).count_range(geometry, q_lower, q_upper)
            np.testing.assert_array_equal(counts, expected, err_msg=name)

    @given(st.integers(0, 10_000), st.integers(1, 5), st.integers(1, 20))
    @settings(max_examples=25, deadline=None)
    def test_empty_geometry_counts_zero(self, seed, d, n_queries):
        gen = np.random.default_rng(seed)
        geometry = LeafGeometry.empty(d)
        queries = gen.random((n_queries, d))
        radii = gen.random(n_queries)
        for name in available_kernels():
            counts = get_kernel(name).count_knn(geometry, queries, radii)
            assert counts.shape == (n_queries,)
            assert not counts.any(), name

    @given(st.integers(0, 10_000), st.integers(1, 80), st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_zero_queries(self, seed, k, d):
        geometry, _, _, _, _ = _random_case(seed, k, d, 1)
        for name in available_kernels():
            counts = get_kernel(name).count_knn(
                geometry, np.empty((0, d)), np.empty(0)
            )
            assert counts.shape == (0,)

    def test_point_on_boundary_counts(self):
        """The sphere test is inclusive: dist == radius intersects, and
        every backend agrees on the exact boundary."""
        geometry = LeafGeometry.from_corners(
            np.array([[1.0, 0.0]]), np.array([[2.0, 1.0]])
        )
        queries = np.array([[0.0, 0.5]])
        radii = np.array([1.0])  # sphere exactly touches the left face
        for name in available_kernels():
            assert get_kernel(name).count_knn(geometry, queries, radii) == [1]
            assert get_kernel(name).count_knn(
                geometry, queries, radii - 1e-9
            ) == [0]

    @given(
        st.integers(0, 10_000),
        st.integers(1, 200),
        st.integers(1, 8),
        st.integers(1, 50),
        st.integers(1, 4096),
    )
    @settings(max_examples=30, deadline=None)
    def test_tiling_invariant_under_memory_cap(
        self, seed, k, d, n_queries, cap
    ):
        """Shrinking the tile cap to pathological sizes never changes
        the counts -- tiling is a pure execution-shape choice."""
        geometry, queries, radii, q_lower, q_upper = _random_case(
            seed, k, d, n_queries
        )
        default = NumpyBatchedKernel()
        tiny = NumpyBatchedKernel(memory_cap_bytes=cap)
        np.testing.assert_array_equal(
            tiny.count_knn(geometry, queries, radii),
            default.count_knn(geometry, queries, radii),
        )
        np.testing.assert_array_equal(
            tiny.count_range(geometry, q_lower, q_upper),
            default.count_range(geometry, q_lower, q_upper),
        )


class TestFusedGrid:
    """The fused multi-radius contract: ``count_grid`` row ``r`` equals
    ``count_knn`` at ``radii_grid[r]``, bit for bit, on every backend."""

    @given(
        st.integers(0, 10_000),
        st.integers(1, 120),
        st.integers(1, 6),
        st.integers(1, 30),
        st.integers(1, 6),
    )
    @settings(max_examples=40, deadline=None)
    def test_rows_bit_identical_to_per_request_loop(
        self, seed, k, d, n_queries, g
    ):
        geometry, queries, radii, _, _ = _random_case(seed, k, d, n_queries)
        gen = np.random.default_rng(seed + 1)
        # Rows scale the base radii through zero, shrunken, and inflated
        # regimes so pruning envelopes and boundary hits all occur.
        grid = radii[None, :] * gen.random((g, 1)) * 2.0
        grid[gen.random((g, n_queries)) < 0.15] = 0.0
        for name in available_kernels():
            kernel = get_kernel(name)
            fused = kernel.count_grid(geometry, queries, grid)
            assert fused.shape == (g, n_queries), name
            assert fused.dtype == np.int64, name
            for r in range(g):
                np.testing.assert_array_equal(
                    fused[r], kernel.count_knn(geometry, queries, grid[r]),
                    err_msg=f"{name} row {r}",
                )

    @given(st.integers(0, 10_000), st.integers(1, 60), st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_one_dim_grid_broadcasts_per_row_radius(self, seed, k, d):
        """A (g,) grid means one shared radius per row."""
        geometry, queries, _, _, _ = _random_case(seed, k, d, 7)
        scalars = np.array([0.0, 0.2, 0.9])
        for name in available_kernels():
            kernel = get_kernel(name)
            fused = kernel.count_grid(geometry, queries, scalars)
            for r, radius in enumerate(scalars):
                np.testing.assert_array_equal(
                    fused[r],
                    kernel.count_knn(
                        geometry, queries, np.full(7, radius)
                    ),
                    err_msg=name,
                )

    def test_empty_geometry_and_degenerate_shapes(self):
        for name in available_kernels():
            kernel = get_kernel(name)
            empty = kernel.count_grid(
                LeafGeometry.empty(3), np.random.default_rng(0).random((4, 3)),
                np.zeros((2, 4)),
            )
            assert empty.shape == (2, 4) and not empty.any()
            no_queries = kernel.count_grid(
                LeafGeometry.from_corners(np.zeros((2, 3)), np.ones((2, 3))),
                np.empty((0, 3)), np.empty((5, 0)),
            )
            assert no_queries.shape == (5, 0)
            no_rows = kernel.count_grid(
                LeafGeometry.from_corners(np.zeros((2, 3)), np.ones((2, 3))),
                np.zeros((4, 3)), np.empty((0, 4)),
            )
            assert no_rows.shape == (0, 4)

    def test_boundary_rows_inclusive(self):
        """dist == radius intersects in every grid row, exactly as in
        the single-radius path."""
        geometry = LeafGeometry.from_corners(
            np.array([[1.0, 0.0]]), np.array([[2.0, 1.0]])
        )
        queries = np.array([[0.0, 0.5]])
        grid = np.array([[1.0], [1.0 - 1e-9]])
        for name in available_kernels():
            fused = get_kernel(name).count_grid(geometry, queries, grid)
            np.testing.assert_array_equal(fused, [[1], [0]], err_msg=name)


class TestBatchPlanAndGrid:
    def test_as_radii_grid_normalizes_and_validates(self):
        centers = np.zeros((4, 2))
        grid = as_radii_grid(centers, [0.1, 0.2])
        assert grid.shape == (2, 4) and grid.dtype == np.float64
        np.testing.assert_array_equal(grid[0], np.full(4, 0.1))
        two_d = as_radii_grid(centers, np.arange(8.0).reshape(2, 4))
        assert two_d.flags["C_CONTIGUOUS"]
        with pytest.raises(ValueError):
            as_radii_grid(centers, np.zeros((2, 3)))  # wrong q
        with pytest.raises(ValueError):
            as_radii_grid(centers, np.zeros((1, 2, 4)))  # 3-d

    def test_for_members_split_round_trip(self):
        plan = BatchPlan.for_members(
            ["a", "b", "c"], [3, 0, 2], kernel="numpy_batched", n_leaves=7
        )
        assert plan.n_members == 3 and plan.n_queries == 5
        fused = np.arange(5)
        parts = plan.split(fused)
        np.testing.assert_array_equal(parts[0], [0, 1, 2])
        assert parts[1].shape == (0,)
        np.testing.assert_array_equal(parts[2], [3, 4])
        parts[0][0] = 99  # split copies: mutating a part is private
        assert fused[0] == 0

    def test_attribute_is_exact_and_proportional(self):
        plan = BatchPlan.for_members(
            ["a", "b", "c"], [1, 2, 3], kernel="reference", n_leaves=10
        )
        shares = plan.attribute(100)
        assert sum(shares) == 100
        assert shares == [17, 33, 50]
        # Zero-query members never get charged unless they are alone.
        lop = BatchPlan.for_members(["x", "y"], [0, 4],
                                    kernel="reference", n_leaves=1)
        assert lop.attribute(9) == [0, 9]

    def test_non_contiguous_segments_rejected(self):
        with pytest.raises(ValueError):
            BatchPlan(kernel="reference", members=("a", "b"),
                      segments=((0, 2), (3, 4)), n_leaves=1)


class TestRegistry:
    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed here")
    def test_default_is_batched_without_numba(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        assert DEFAULT_KERNEL == "numpy_batched"
        assert default_kernel_name() == "numpy_batched"
        assert get_kernel().name == "numpy_batched"

    def test_preferred_kernel_ladder(self, monkeypatch):
        """Explicit env beats numba-if-importable beats numpy_batched."""
        assert PREFERRED_KERNEL == "numba"
        monkeypatch.delenv(KERNEL_ENV_VAR, raising=False)
        if "numba" not in kernel_registry._factories:
            monkeypatch.setitem(
                kernel_registry._factories, "numba", ReferenceKernel
            )
        assert default_kernel_name() == "numba"
        monkeypatch.setenv(KERNEL_ENV_VAR, "reference")
        assert default_kernel_name() == "reference"

    def test_env_var_resolution(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "reference")
        assert default_kernel_name() == "reference"
        assert get_kernel().name == "reference"
        # An explicit name always beats the environment.
        assert get_kernel("numpy_batched").name == "numpy_batched"

    def test_available_kernels_sorted(self):
        names = available_kernels()
        assert "reference" in names and "numpy_batched" in names
        assert list(names) == sorted(names)

    def test_instances_cached(self):
        assert get_kernel("reference") is get_kernel("reference")

    def test_unknown_kernel_typed_error(self):
        with pytest.raises(UnknownKernelError) as excinfo:
            get_kernel("simd_avx1024")
        err = excinfo.value
        assert err.kernel == "simd_avx1024"
        assert "reference" in err.available
        assert "simd_avx1024" in str(err)
        assert "reference" in str(err)
        assert isinstance(err, ValueError)

    def test_unknown_env_kernel_raises(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "warp_drive")
        with pytest.raises(UnknownKernelError):
            get_kernel()

    @pytest.mark.skipif(NUMBA_AVAILABLE, reason="numba is installed here")
    def test_missing_numba_explains_itself(self):
        assert "numba" not in available_kernels()
        with pytest.raises(UnknownKernelError) as excinfo:
            get_kernel("numba")
        assert "not installed" in str(excinfo.value)

    @pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba not installed")
    def test_numba_registered_when_available(self):
        assert "numba" in available_kernels()
        assert get_kernel("numba").name == "numba"


class TestPredictorsKernelInvariant:
    """Every predictor's per-query counts survive a kernel swap."""

    @pytest.fixture(scope="class")
    def points(self, clustered_points):
        return clustered_points[:1500]

    @pytest.fixture(scope="class")
    def workload(self, points):
        predictor = IndexCostPredictor(dim=16, memory=300, c_data=32,
                                       c_dir=16)
        return predictor.make_workload(points, 15, 11, seed=2)

    @pytest.mark.parametrize("method", ["mini", "cutoff", "resampled"])
    def test_facade_methods(self, method, points, workload):
        results = {}
        for name in ("reference", "numpy_batched"):
            predictor = IndexCostPredictor(
                dim=16, memory=300, c_data=32, c_dir=16, kernel=name
            )
            result = predictor.predict(points, workload, method=method,
                                       seed=5)
            assert result.detail["kernel"] == name
            results[name] = result.per_query
        np.testing.assert_array_equal(
            results["reference"], results["numpy_batched"]
        )

    def test_kdb_model(self, points, workload):
        counts = [
            KDBMiniIndexModel(c_data=32, kernel=name)
            .predict(points, workload, 0.25, np.random.default_rng(3))
            .per_query
            for name in ("reference", "numpy_batched")
        ]
        np.testing.assert_array_equal(counts[0], counts[1])

    def test_dynamic_model(self, points, workload):
        counts = [
            DynamicMiniIndexModel(32, 16, kernel=name)
            .predict(points, workload, 0.25, np.random.default_rng(3))
            .per_query
            for name in ("reference", "numpy_batched")
        ]
        np.testing.assert_array_equal(counts[0], counts[1])

    def test_range_workload_through_facade(self, points):
        gen = np.random.default_rng(9)
        centers = points[gen.choice(points.shape[0], 12)]
        workload = RangeWorkload(lower=centers - 0.05, upper=centers + 0.05)
        counts = [
            IndexCostPredictor(dim=16, memory=300, c_data=32, c_dir=16,
                               kernel=name)
            .predict(points, workload, method="resampled", seed=5).per_query
            for name in ("reference", "numpy_batched")
        ]
        np.testing.assert_array_equal(counts[0], counts[1])

    def test_faulted_run_kernel_invariant(self, points, workload):
        """Seed-driven fault injection is kernel-independent: a flaky
        disk produces the same (repaired) prediction under any backend."""
        counts = []
        for name in ("reference", "numpy_batched"):
            predictor = IndexCostPredictor(
                dim=16, memory=300, c_data=32, c_dir=16, kernel=name,
                fault_rate=0.05, fault_seed=11,
            )
            counts.append(
                predictor.predict(points, workload, method="resampled",
                                  seed=5).per_query
            )
        np.testing.assert_array_equal(counts[0], counts[1])

    def test_bad_kernel_fails_at_construction(self):
        with pytest.raises(UnknownKernelError):
            IndexCostPredictor(dim=4, memory=100, kernel="gpu_tensor")

    def test_env_kernel_checked_at_construction(self, monkeypatch):
        """The env-var default is validated as eagerly as the field."""
        monkeypatch.setenv(KERNEL_ENV_VAR, "definitely_not_a_kernel")
        with pytest.raises(UnknownKernelError):
            IndexCostPredictor(dim=16, memory=300, c_data=32, c_dir=16)


class TestCLIKernelFlag:
    def test_explicit_kernel_runs(self, capsys):
        assert main(["predict", *FAST, "--kernel", "reference"]) == 0
        assert "'kernel': 'reference'" in capsys.readouterr().out

    def test_kernels_agree_end_to_end(self, capsys):
        main(["predict", *FAST, "--kernel", "reference"])
        ref = capsys.readouterr().out
        main(["predict", *FAST, "--kernel", "numpy_batched"])
        fast = capsys.readouterr().out
        assert (
            [ln for ln in ref.splitlines() if "accesses" in ln]
            == [ln for ln in fast.splitlines() if "accesses" in ln]
        )

    def test_unknown_kernel_exits_14(self, capsys):
        assert main(["predict", *FAST, "--kernel", "quantum"]) == 14
        err = capsys.readouterr().err
        assert "quantum" in err

    def test_unknown_env_kernel_exits_14(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV_VAR, "quantum")
        assert main(["predict", *FAST]) == 14


class TestLeafGeometry:
    def test_from_leaves_skips_unset_mbrs(self, tiny_points):
        from repro.rtree.tree import RTree

        tree = RTree.bulk_load(tiny_points, 8, 4)
        geometry = tree.leaf_geometry
        assert geometry.k == tree.n_leaves
        assert geometry.dim == 2
        np.testing.assert_array_equal(
            np.asarray([leaf.n_points for leaf in tree.leaves]),
            geometry.n_points,
        )

    def test_scaled_preserves_counts_metadata(self):
        geometry = LeafGeometry.from_corners(
            np.zeros((3, 2)), np.ones((3, 2)),
            n_points=np.array([4, 5, 6]),
        )
        scaled = geometry.scaled(2.0)
        np.testing.assert_array_equal(scaled.n_points, geometry.n_points)
        np.testing.assert_allclose(scaled.lower, -0.5)
        np.testing.assert_allclose(scaled.upper, 1.5)

    def test_kdb_leaves_cached_and_invalidated(self, tiny_points):
        from repro.rtree.kdb import KDBTree

        tree = KDBTree.bulk_load(tiny_points, c_data=8)
        assert tree.leaves is tree.leaves  # cached, not rebuilt per access
        before = tree.leaf_geometry
        assert tree.leaf_geometry is before
        tree.invalidate_caches()
        after = tree.leaf_geometry
        assert after is not before
        np.testing.assert_array_equal(after.lower, before.lower)
        np.testing.assert_array_equal(after.upper, before.upper)

    def test_rtree_leaves_cached_and_invalidated(self, tiny_points):
        from repro.rtree.tree import RTree

        tree = RTree.bulk_load(tiny_points, 8, 4)
        assert tree.leaves is tree.leaves
        before = tree.leaf_geometry
        assert tree.leaf_geometry is before
        tree.invalidate_caches()
        assert tree.leaf_geometry is not before
