"""Service-level chaos sweeps: the no-hang / no-lie / no-leak invariant.

Each sweep floods a fresh service with a seeded storm -- worker kills,
a corrupted warm-start artifact, a tenant that always blows its
deadline, a tenant on a faulty disk, a tenant with a starvation-level
I/O allowance -- and asserts that every admitted request terminated in
one of the three allowed states and that every tenant's three op sums
(responses, ledger, governor) reconcile exactly.  Seeds are read from
``CHAOS_SEED`` when set so CI shards the sweep the same way the disk
chaos suite does.
"""

from __future__ import annotations

import os
import warnings

import pytest

from repro.errors import DegradedResultWarning
from repro.service import (
    ServiceChaosScenario,
    assert_service_invariant,
    run_service_chaos,
)

SEEDS = ([int(os.environ["CHAOS_SEED"])]
         if os.environ.get("CHAOS_SEED") else [0, 1])
COALESCE_AXIS_OFF = os.environ.get("COALESCE") == "0"


@pytest.fixture(autouse=True)
def _quiet_degradation_warnings():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedResultWarning)
        yield


@pytest.mark.parametrize("seed", SEEDS)
def test_storm_invariant_holds(seed, tmp_path):
    outcome = run_service_chaos(
        ServiceChaosScenario(seed=seed), artifact_dir=tmp_path
    )
    assert_service_invariant(outcome)
    # the storm actually stormed: every injected failure family showed
    # up and was survived, not skipped
    assert outcome.classified.get("identical", 0) > 0
    assert outcome.classified.get("typed_error", 0) > 0
    assert outcome.artifact_rebuilds == 1
    assert "deadline" in outcome.causes_seen
    assert "budget" in outcome.causes_seen


@pytest.mark.skipif(COALESCE_AXIS_OFF, reason="COALESCE=0 disables the "
                    "request-coalescing axis")
@pytest.mark.parametrize("seed", SEEDS)
def test_storm_invariant_holds_with_coalescing(seed, tmp_path):
    """The same storm with the batched execution plane on: the no-hang /
    no-lie / no-leak invariant is coalescing-independent, fused members
    still classify byte-identical against the uncoalesced oracle, and
    the attribution split keeps every tenant's three op sums equal."""
    outcome = run_service_chaos(
        ServiceChaosScenario(seed=seed, coalesce=True), artifact_dir=tmp_path
    )
    assert_service_invariant(outcome)
    assert outcome.classified.get("identical", 0) > 0
    assert outcome.classified.get("typed_error", 0) > 0
    # the coalescer genuinely fused requests rather than degenerating
    # into singleton batches
    batching = outcome.batching
    assert batching["enabled"]
    assert batching["batches_dispatched"] > 0
    assert batching["batched_requests"] > batching["batches_dispatched"]


@pytest.mark.parametrize("seed", SEEDS)
def test_storm_without_artifacts(seed):
    outcome = run_service_chaos(
        ServiceChaosScenario(seed=seed, corrupt_artifact=False)
    )
    assert_service_invariant(outcome)
    assert outcome.artifact_rebuilds == 0


def test_heavy_worker_slaughter_never_hangs(tmp_path):
    """Half of all requests kill their worker; the supervisor must keep
    the pool alive and every future must still resolve."""
    outcome = run_service_chaos(
        ServiceChaosScenario(seed=7, worker_death_rate=0.5,
                             requests_per_tenant=8),
        artifact_dir=tmp_path,
    )
    assert_service_invariant(outcome)
    assert outcome.workers_respawned >= 1
    assert outcome.classified.get("hung", 0) == 0


def test_calm_storm_no_untyped_failures():
    """With the kill and corruption knobs at zero, only the adversarial
    tenants' own deadline/budget verdicts remain -- no worker deaths,
    no rebuilds, no untyped errors, and the books still reconcile."""
    outcome = run_service_chaos(
        ServiceChaosScenario(seed=3, worker_death_rate=0.0,
                             corrupt_artifact=False, n_tenants=2,
                             requests_per_tenant=4)
    )
    assert_service_invariant(outcome)
    assert outcome.classified.get("untyped_error", 0) == 0
    assert outcome.workers_respawned == 0
