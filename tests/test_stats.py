"""Tests for the index quality statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rtree.stats import (
    LeafStatistics,
    leaf_statistics,
    pairwise_overlap_count,
)
from repro.rtree.tree import RTree


def stats_for_tree(tree: RTree) -> LeafStatistics:
    lower, upper = tree.leaf_corners
    occupancies = np.array(
        [l.n_points for l in tree.leaves if l.mbr is not None]
    )
    return leaf_statistics(lower, upper, occupancies, tree.topology.c_data)


class TestPairwiseOverlap:
    def test_disjoint_boxes(self):
        lower = np.array([[0.0, 0.0], [2.0, 0.0], [4.0, 0.0]])
        upper = lower + 1.0
        assert pairwise_overlap_count(lower, upper) == 0

    def test_all_overlapping(self):
        lower = np.zeros((4, 2))
        upper = np.ones((4, 2))
        assert pairwise_overlap_count(lower, upper) == 6  # C(4, 2)

    def test_touching_edges_not_overlapping(self):
        # Sharing only a face has zero intersection volume.
        lower = np.array([[0.0, 0.0], [1.0, 0.0]])
        upper = np.array([[1.0, 1.0], [2.0, 1.0]])
        assert pairwise_overlap_count(lower, upper) == 0

    def test_partial(self):
        lower = np.array([[0.0, 0.0], [0.5, 0.5], [5.0, 5.0]])
        upper = np.array([[1.0, 1.0], [1.5, 1.5], [6.0, 6.0]])
        assert pairwise_overlap_count(lower, upper) == 1

    def test_single_box(self):
        assert pairwise_overlap_count(np.zeros((1, 2)), np.ones((1, 2))) == 0

    def test_blockwise_matches_naive(self, rng):
        lower = rng.random((80, 3))
        upper = lower + rng.random((80, 3)) * 0.3
        naive = 0
        for i in range(80):
            for j in range(i + 1, 80):
                if np.all(lower[i] < upper[j]) and np.all(lower[j] < upper[i]):
                    naive += 1
        assert pairwise_overlap_count(lower, upper) == naive


class TestLeafStatistics:
    def test_basic_fields(self, clustered_points):
        tree = RTree.bulk_load(clustered_points, 32, 16)
        stats = stats_for_tree(tree)
        assert stats.n_leaves == tree.n_leaves
        assert stats.n_points == clustered_points.shape[0]
        assert 0 < stats.utilization <= 1.0
        assert stats.min_occupancy <= stats.mean_occupancy <= stats.max_occupancy
        assert stats.total_volume == pytest.approx(
            stats.mean_volume * stats.n_leaves
        )

    def test_bulk_load_beats_dynamic_on_overlap(self, clustered_points):
        """The packed VAMSplit layout overlaps less than the
        insertion-built R*-tree -- the measurable reason behind the
        access-count gap."""
        from repro.rtree.rstar import RStarTree

        bulk = RTree.bulk_load(clustered_points, 32, 16)
        bulk_stats = stats_for_tree(bulk)
        dynamic = RStarTree.build(clustered_points, 32, 16,
                                  shuffle_seed=3).freeze()
        lower, upper = dynamic.leaf_corners
        occupancies = np.array([l.n_points for l in dynamic.leaves])
        dyn_stats = leaf_statistics(lower, upper, occupancies, 32)
        assert bulk_stats.utilization > dyn_stats.utilization
        assert bulk_stats.overlap_fraction <= dyn_stats.overlap_fraction

    def test_summary_text(self, clustered_points):
        tree = RTree.bulk_load(clustered_points, 32, 16)
        text = stats_for_tree(tree).summary()
        assert "leaves" in text and "capacity" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            leaf_statistics(np.zeros((2, 2)), np.ones((3, 2)),
                            np.ones(2, dtype=int), 8)
        with pytest.raises(ValueError):
            leaf_statistics(np.zeros((2, 2)), np.ones((2, 2)),
                            np.ones(3, dtype=int), 8)
        with pytest.raises(ValueError):
            leaf_statistics(np.zeros((2, 2)), np.ones((2, 2)),
                            np.ones(2, dtype=int), 0)
        with pytest.raises(ValueError):
            leaf_statistics(np.empty((0, 2)), np.empty((0, 2)),
                            np.empty(0, dtype=int), 8)
