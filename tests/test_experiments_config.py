"""Tests for experiment configuration (environment knobs)."""

from __future__ import annotations

import pytest

from repro.experiments.config import (
    DEFAULT_K,
    DEFAULT_MEMORY_FRACTION,
    experiment_queries,
    experiment_scale,
)


class TestScale:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert experiment_scale() == 0.1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert experiment_scale() == 0.5

    def test_full_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "1.0")
        assert experiment_scale() == 1.0

    def test_invalid_rejected(self, monkeypatch):
        for bad in ("0", "-0.1", "1.5"):
            monkeypatch.setenv("REPRO_SCALE", bad)
            with pytest.raises(ValueError):
                experiment_scale()


class TestQueries:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_QUERIES", raising=False)
        assert experiment_queries() == 200

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUERIES", "500")
        assert experiment_queries() == 500

    def test_invalid_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_QUERIES", "0")
        with pytest.raises(ValueError):
            experiment_queries()


class TestConstants:
    def test_paper_parameters(self):
        assert DEFAULT_K == 21
        # Table 3's memory ratio: M = 10,000 at N = 275,465.
        assert DEFAULT_MEMORY_FRACTION == pytest.approx(10_000 / 275_465)
