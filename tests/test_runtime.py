"""Tests for the budget-governed runtime layer.

Covers the four pieces of :mod:`repro.runtime` -- budgets/governor,
circuit breaker, hedged execution, batch admission control -- plus
their integration into the facade: the ample-budget zero-interference
guarantee (bit-identical estimate, zero extra charged I/O), mid-flight
downgrade on exhaustion, and the anytime annotation.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.predictor import IndexCostPredictor
from repro.disk.accounting import IOCost
from repro.errors import (
    BudgetExceededError,
    CircuitOpenError,
    DeadlineExceededError,
    DegradedResultWarning,
    InputValidationError,
)
from repro.runtime import (
    BatchRunner,
    BatchTask,
    Budget,
    CircuitBreaker,
    Governor,
    run_hedged,
)

N, DIM, MEMORY = 800, 8, 250


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(42).random((N, DIM))


@pytest.fixture(scope="module")
def predictor():
    return IndexCostPredictor(dim=DIM, memory=MEMORY)


@pytest.fixture(scope="module")
def workload(points, predictor):
    return predictor.make_workload(points, n_queries=12, k=5, seed=1)


@pytest.fixture(scope="module")
def reference(points, predictor, workload):
    return predictor.predict(points, workload, method="resampled", seed=2)


class TestBudget:
    def test_defaults_unlimited(self):
        assert Budget().unlimited
        assert not Budget(max_io_ops=10).unlimited

    @pytest.mark.parametrize("kwargs", [
        {"max_io_ops": -1},
        {"max_seconds": 0.0}, {"max_seconds": -2.0},
        {"max_sample_bytes": -1},
    ])
    def test_rejects_invalid_limits(self, kwargs):
        with pytest.raises(InputValidationError):
            Budget(**kwargs)

    def test_io_ops_counts_seeks_plus_transfers(self):
        cost = IOCost(seeks=3, transfers=7, retries=5, faults_seen=2)
        assert Budget.io_ops(cost) == 10
        assert cost.ops == 10


class TestGovernor:
    def test_check_attributes_spend_per_phase(self):
        governor = Governor(Budget(max_io_ops=100))
        governor.check("read", IOCost(seeks=2, transfers=3))
        governor.check("scan", IOCost(seeks=4, transfers=6))
        assert governor.phase_spend == {"read": 5, "scan": 5}
        assert governor.spent_ops == 10

    def test_budget_equal_to_spend_never_trips(self):
        governor = Governor(Budget(max_io_ops=10))
        governor.check("scan", IOCost(seeks=5, transfers=5))
        assert governor.report()["within_budget"]

    def test_one_op_over_trips(self):
        governor = Governor(Budget(max_io_ops=10))
        with pytest.raises(BudgetExceededError) as excinfo:
            governor.check("scan", IOCost(seeks=5, transfers=6))
        assert excinfo.value.resource == "io_ops"
        assert excinfo.value.phase == "scan"
        assert not governor.report()["within_budget"]

    def test_deadline_uses_injected_monotonic_clock(self):
        fake = iter([0.0, 0.5, 1.5]).__next__
        governor = Governor(Budget(max_seconds=1.0), clock=fake)
        governor.check("ok")  # t=0.5: inside
        with pytest.raises(DeadlineExceededError):
            governor.check("late")  # t=1.5: past the deadline

    def test_end_attempt_folds_spend_across_attempts(self):
        governor = Governor(Budget(max_io_ops=100))
        governor.check("a", IOCost(seeks=5))
        governor.end_attempt()
        governor.check("b", IOCost(seeks=3))
        assert governor.spent_ops == 8

    def test_require_ops_refuses_unaffordable_attempt(self):
        governor = Governor(Budget(max_io_ops=10))
        governor.require_ops(10, phase="fits")  # exactly affordable
        with pytest.raises(BudgetExceededError):
            governor.require_ops(11, phase="admit")

    def test_check_deadline_ignores_blown_op_budget(self):
        governor = Governor(Budget(max_io_ops=5))
        with pytest.raises(BudgetExceededError):
            governor.check("scan", IOCost(seeks=6))
        governor.check_deadline("admit:mini")  # must not raise

    def test_admit_sample_blocks_before_scan(self):
        governor = Governor(Budget(max_sample_bytes=1000))
        with pytest.raises(BudgetExceededError) as excinfo:
            governor.admit_sample(100, 8, phase="scan")
        assert excinfo.value.resource == "sample_bytes"
        assert governor.sample_bytes == 0  # nothing was admitted

    def test_end_attempt_releases_sample_bytes(self):
        governor = Governor(Budget(max_sample_bytes=10_000))
        governor.admit_sample(100, 8)
        assert governor.sample_bytes == 6400
        governor.end_attempt()
        governor.admit_sample(100, 8)  # a second attempt's sample fits

    def test_report_shape(self):
        governor = Governor(Budget(max_io_ops=50, max_seconds=60.0))
        governor.check("scan", IOCost(seeks=1, transfers=2))
        report = governor.report()
        assert report["spent_io_ops"] == 3
        assert report["remaining_io_ops"] == 47
        assert report["within_budget"] is True
        assert report["exhausted"] is None
        assert report["phase_spend"] == {"scan": 3}


class TestGovernedFacade:
    def test_ample_budget_bit_identical_zero_extra_io(
        self, points, predictor, workload, reference
    ):
        governed = predictor.predict(
            points, workload, method="resampled", seed=2,
            budget=Budget(max_io_ops=10**9, max_seconds=3600.0,
                          max_sample_bytes=2**40),
        )
        assert np.array_equal(governed.per_query, reference.per_query)
        assert governed.io_cost == reference.io_cost
        report = governed.detail["budget"]
        assert report["within_budget"] and report["exhausted"] is None
        assert report["spent_io_ops"] == reference.io_cost.ops
        assert "degradation" not in governed.detail

    def test_exact_budget_never_trips(
        self, points, predictor, workload, reference
    ):
        governed = predictor.predict(
            points, workload, method="resampled", seed=2,
            budget=Budget(max_io_ops=reference.io_cost.ops),
        )
        assert np.array_equal(governed.per_query, reference.per_query)
        assert governed.detail["budget"]["within_budget"]

    def test_admission_denial_skips_without_spending(
        self, points, predictor, workload
    ):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            result = predictor.predict(
                points, workload, method="resampled", seed=2,
                budget=Budget(max_io_ops=3),
            )
        record = result.detail["degradation"]
        assert record["method_used"] == "mini"
        skipped = [a for a in record["attempts"] if a.get("skipped")]
        assert {a["method"] for a in skipped} == {"resampled", "cutoff"}
        assert all(a["cause"] == "budget" for a in record["attempts"])
        report = result.detail["budget"]
        assert report["spent_io_ops"] == 0
        assert report["within_budget"]  # admission prevented overspend
        assert report["exhausted"]["resource"] == "io_ops"

    def test_midflight_trip_downgrades_and_annotates(
        self, points, predictor, workload, reference
    ):
        # Enough to be admitted (query reads + scan lower bound), not
        # enough to finish resampled: trips at a phase boundary.
        budget = Budget(max_io_ops=reference.io_cost.ops - 1)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            result = predictor.predict(
                points, workload, method="resampled", seed=2, budget=budget,
            )
        record = result.detail["degradation"]
        assert record["attempts"][0]["method"] == "resampled"
        assert record["attempts"][0]["cause"] == "budget"
        assert result.detail["budget"]["exhausted"] is not None

    def test_deadline_degrades_to_baseline(self, points, predictor, workload):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            result = predictor.predict(
                points, workload, method="resampled", seed=2,
                budget=Budget(max_seconds=1e-9),
            )
        record = result.detail["degradation"]
        assert record["method_used"] == "baseline"
        assert not result.detail["budget"]["within_budget"]
        assert np.isfinite(result.mean_accesses)

    def test_sample_cap_degrades(self, points, predictor, workload):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            result = predictor.predict(
                points, workload, method="resampled", seed=2,
                budget=Budget(max_sample_bytes=64),
            )
        assert result.detail["degradation"]["method_used"] == "baseline"

    def test_strict_budget_raises_typed_errors(
        self, points, predictor, workload
    ):
        with pytest.raises(BudgetExceededError):
            predictor.predict(points, workload, method="resampled", seed=2,
                              budget=Budget(max_io_ops=3), degrade=False)
        with pytest.raises(DeadlineExceededError):
            predictor.predict(points, workload, method="resampled", seed=2,
                              budget=Budget(max_seconds=1e-9), degrade=False)

    def test_unlimited_budget_adds_no_annotation(
        self, points, predictor, workload, reference
    ):
        result = predictor.predict(points, workload, method="resampled",
                                   seed=2, budget=Budget())
        assert "budget" not in result.detail
        assert np.array_equal(result.per_query, reference.per_query)

    def test_hedge_requires_deadline(self, points, predictor, workload):
        with pytest.raises(InputValidationError):
            predictor.predict(points, workload, hedge=True)
        with pytest.raises(InputValidationError):
            predictor.predict(points, workload, hedge=True,
                              budget=Budget(max_io_ops=100))

    def test_hedge_serves_primary_inside_deadline(
        self, points, predictor, workload, reference
    ):
        result = predictor.predict(
            points, workload, method="resampled", seed=2,
            budget=Budget(max_seconds=60.0), hedge=True,
        )
        assert result.detail["hedge"]["winner"] == "primary"
        assert np.array_equal(result.per_query, reference.per_query)


class TestCircuitBreaker:
    def _trip(self, breaker):
        for _ in range(breaker.min_calls):
            breaker.before_attempt()
            breaker.record_failure()

    def test_opens_at_failure_threshold(self):
        breaker = CircuitBreaker(min_calls=4, window=8, cooldown_s=60.0)
        self._trip(breaker)
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.before_attempt()
        assert breaker.short_circuited == 1

    def test_half_open_probe_closes_on_success(self):
        clock = [0.0]
        breaker = CircuitBreaker(min_calls=4, window=8, cooldown_s=1.0,
                                 clock=lambda: clock[0])
        self._trip(breaker)
        clock[0] = 1.5  # cooldown over: one probe admitted
        breaker.before_attempt()
        assert breaker.state == "half_open"
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.failure_rate() == 0.0  # window cleared

    def test_half_open_probe_failure_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(min_calls=4, window=8, cooldown_s=1.0,
                                 clock=lambda: clock[0])
        self._trip(breaker)
        clock[0] = 1.5
        breaker.before_attempt()
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.before_attempt()

    def test_healthy_device_never_opens(self):
        breaker = CircuitBreaker(min_calls=4, window=8)
        for _ in range(100):
            breaker.before_attempt()
            breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.opened_count == 0

    def test_breaker_on_faulty_predictor_degrades_to_memory_methods(
        self, points, workload
    ):
        breaker = CircuitBreaker(min_calls=1, window=4, cooldown_s=300.0)
        predictor = IndexCostPredictor(
            dim=DIM, memory=MEMORY, fault_rate=1.0, retry=None,
            breaker=breaker,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            result = predictor.predict(points, workload, method="resampled",
                                       seed=2)
        assert result.detail["degradation"]["method_used"] == "mini"
        assert breaker.state == "open"
        # The second attempt (cutoff) hit the open circuit instead of
        # burning charged I/O on a device known to be bad.
        errors = [a["error"] for a in
                  result.detail["degradation"]["attempts"]]
        assert any("CircuitOpenError" in e for e in errors)
        assert breaker.short_circuited >= 1


class TestHedge:
    def test_primary_wins_when_fast(self):
        outcome = run_hedged(lambda: "primary", lambda: "hedge",
                             deadline_s=5.0)
        assert outcome.winner == "primary"
        assert outcome.result == "primary"

    def test_hedge_wins_when_primary_stalls(self):
        import threading
        release = threading.Event()

        def slow():
            release.wait(10.0)
            return "primary"

        outcome = run_hedged(slow, lambda: "hedge", deadline_s=0.2)
        release.set()
        assert outcome.winner == "hedge"
        assert outcome.result == "hedge"

    def test_raises_when_both_miss_deadline(self):
        import threading
        release = threading.Event()

        def stall():
            release.wait(10.0)
            return "late"

        with pytest.raises(DeadlineExceededError):
            run_hedged(stall, stall, deadline_s=0.1, grace_s=0.05)
        release.set()

    def test_primary_error_propagates_when_hedge_also_fails(self):
        def boom():
            raise BudgetExceededError("io_ops", 5, 1, phase="test")

        with pytest.raises(BudgetExceededError):
            run_hedged(boom, boom, deadline_s=1.0, grace_s=0.1)


class TestBatchRunner:
    def test_all_complete_under_ample_budget(self):
        runner = BatchRunner(budget=Budget(max_seconds=60.0), max_workers=2)
        report = runner.run([
            BatchTask(f"t{i}", lambda i=i: i * i) for i in range(5)
        ])
        assert [t.status for t in report.tasks] == ["ok"] * 5
        assert [t.result for t in report.tasks] == [0, 1, 4, 9, 16]
        assert report.all_accounted

    def test_failed_task_reported_not_raised(self):
        def boom():
            raise ValueError("cell exploded")

        report = BatchRunner(max_workers=1).run([
            BatchTask("good", lambda: 1), BatchTask("bad", boom),
        ])
        by_name = {t.name: t for t in report.tasks}
        assert by_name["good"].status == "ok"
        assert by_name["bad"].status == "failed"
        assert "cell exploded" in by_name["bad"].error

    def test_over_deadline_task_abandoned(self):
        import threading
        release = threading.Event()

        def wedge():
            release.wait(10.0)
            return "late"

        # Two workers: the wedged cell's abandoned thread must not
        # stop the healthy cell from running to completion.
        runner = BatchRunner(task_deadline_s=0.1, max_workers=2)
        report = runner.run([BatchTask("wedged", wedge),
                             BatchTask("quick", lambda: 7)])
        release.set()
        by_name = {t.name: t for t in report.tasks}
        assert by_name["wedged"].status == "over_budget"
        assert by_name["quick"].status == "ok"
        assert report.all_accounted

    def test_global_io_budget_rejects_later_tasks(self):
        class Result:
            io_cost = IOCost(seeks=50, transfers=50)

        runner = BatchRunner(budget=Budget(max_io_ops=10), max_workers=1)
        report = runner.run([BatchTask("first", Result),
                             BatchTask("second", Result)])
        assert report.tasks[0].status == "ok"
        assert report.tasks[1].status == "rejected"
        assert "I/O budget exhausted" in report.tasks[1].error
        assert report.io_ops == 100

    def test_duplicate_names_rejected(self):
        with pytest.raises(InputValidationError):
            BatchRunner().run([BatchTask("x", lambda: 1),
                               BatchTask("x", lambda: 2)])

    def test_io_ledger_read_from_prediction_results(
        self, points, predictor, workload, reference
    ):
        from repro.experiments.runner import run_prediction_grid

        report = run_prediction_grid(
            predictor, points, workload, methods=("resampled", "mini"),
            budget=Budget(max_seconds=120.0), max_workers=2, seed=2,
        )
        assert {t.status for t in report.tasks} == {"ok"}
        assert report.io_ops == reference.io_cost.ops  # mini charges none


class TestBudgetedSweeps:
    def test_pagesize_batch_matches_serial(self, points, workload):
        from repro.apps.pagesize import sweep_page_sizes

        sizes = (4096, 8192, 16384)
        serial = sweep_page_sizes(points, workload, memory=MEMORY,
                                  page_sizes=sizes, seed=2)
        batched = sweep_page_sizes(points, workload, memory=MEMORY,
                                   page_sizes=sizes, seed=2,
                                   budget=Budget(max_seconds=120.0))
        for a, b in zip(serial.points, batched.points):
            assert b.status == "ok"
            assert a.predicted_accesses == b.predicted_accesses
        assert (serial.predicted_optimum.page_bytes
                == batched.predicted_optimum.page_bytes)

    def test_pagesize_tight_budget_marks_cells(self, points, workload):
        from repro.apps.pagesize import sweep_page_sizes

        sweep = sweep_page_sizes(points, workload, memory=MEMORY,
                                 page_sizes=(4096, 8192, 16384), seed=2,
                                 budget=Budget(max_io_ops=1), max_workers=1)
        statuses = [p.status for p in sweep.points]
        assert statuses[0] == "ok"
        assert set(statuses[1:]) == {"rejected"}
        optimum = sweep.predicted_optimum
        assert optimum is not None and optimum.status == "ok"

    def test_dimension_sweep_batch_matches_serial(self, points, workload):
        from repro.apps.dimensions import sweep_index_dimensions

        serial = sweep_index_dimensions(points, workload, (2, 4, 8),
                                        memory=MEMORY, seed=2)
        batched = sweep_index_dimensions(points, workload, (2, 4, 8),
                                         memory=MEMORY, seed=2,
                                         budget=Budget(max_seconds=120.0))
        assert len(batched.completed) == 3
        for a, b in zip(serial.points, batched.points):
            assert a.predicted_accesses == b.predicted_accesses


class TestFacadeInjectedClock:
    def test_fake_clock_drives_deadline_without_sleeping(
        self, points, predictor, workload
    ):
        """The facade threads an injected clock into its governor, so a
        deadline trip is test-drivable with zero real waiting: the fake
        clock leaps 1000 "seconds" per reading."""
        ticks = {"now": 0.0}

        def clock() -> float:
            ticks["now"] += 1000.0
            return ticks["now"]

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DegradedResultWarning)
            result = predictor.predict(
                points, workload, method="resampled", seed=2,
                budget=Budget(max_seconds=60.0), clock=clock,
            )
        record = result.detail["degradation"]
        assert record["method_used"] == "baseline"
        assert all(a["cause"] == "budget" for a in record["attempts"])
        assert not result.detail["budget"]["within_budget"]

    def test_generous_fake_clock_is_zero_interference(
        self, points, predictor, workload, reference
    ):
        result = predictor.predict(
            points, workload, method="resampled", seed=2,
            budget=Budget(max_seconds=1e9), clock=lambda: 0.0,
        )
        assert np.array_equal(result.per_query, reference.per_query)

    def test_clock_ignored_without_budget(
        self, points, predictor, workload, reference
    ):
        def exploding_clock() -> float:
            raise AssertionError("no governor, so the clock must not run")

        result = predictor.predict(
            points, workload, method="resampled", seed=2,
            clock=exploding_clock,
        )
        assert np.array_equal(result.per_query, reference.per_query)


class TestConcurrencyHammer:
    """Thread-safety hammers for the shared runtime state.

    Each test drives real contention (tiny switch interval, many
    threads, tight loops over read-modify-write paths) and asserts
    exact totals -- the kind of check that fails within a few runs if
    the locks are removed, because concurrent ``+= 1`` on plain
    attributes loses increments.
    """

    @staticmethod
    def _hammer(worker, n_threads: int) -> None:
        import sys
        import threading

        old = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        try:
            threads = [
                threading.Thread(target=worker) for _ in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        finally:
            sys.setswitchinterval(old)

    def test_disk_ledger_exact_under_contention(self):
        from repro.disk.device import SimulatedDisk

        disk = SimulatedDisk()
        rounds, n_threads = 400, 8

        def worker() -> None:
            for _ in range(rounds):
                disk.access(0, 2)
                disk.note_fault()
                disk.note_retry(IOCost(seeks=1))

        self._hammer(worker, n_threads)
        cost = disk.cost
        total = rounds * n_threads
        assert cost.transfers == 2 * total
        assert cost.faults_seen == total
        assert cost.retries == total
        # every access seeks (head parks at page 2, runs start at 0)
        # and every retry charges one backoff seek
        assert cost.seeks == 2 * total

    def test_breaker_opens_exactly_once_under_contention(self):
        breaker = CircuitBreaker(failure_threshold=0.5, window=16,
                                 min_calls=8, cooldown_s=1000.0)
        rounds, n_threads = 500, 8

        def worker() -> None:
            for _ in range(rounds):
                try:
                    breaker.before_attempt()
                except CircuitOpenError:
                    continue
                breaker.record_failure()

        self._hammer(worker, n_threads)
        # the open transition is a read-modify-write on shared state;
        # racing threads must not double-open (the cooldown never
        # elapses, so no probe can close and reopen it either)
        assert breaker.state == "open"
        assert breaker.opened_count == 1
        assert breaker.short_circuited > 0

    def test_governor_totals_exact_under_contention(self):
        from repro.runtime import Governor

        governor = Governor(Budget(max_io_ops=10**9))
        rounds, n_threads = 400, 8
        lock = __import__("threading").Lock()

        def worker() -> None:
            for _ in range(rounds):
                # observe/end_attempt is a set-then-fold pair; callers
                # folding into a shared governor serialize the pair,
                # exactly as TenantLedger.settle does
                with lock:
                    governor.observe("hammer", IOCost(seeks=1, transfers=2))
                    governor.end_attempt()

        self._hammer(worker, n_threads)
        assert governor.spent_ops == 3 * rounds * n_threads
        assert governor.phase_spend["hammer"] == 3 * rounds * n_threads

    def test_batch_runner_concurrent_runs_tally(self, points, workload):
        import threading

        runner = BatchRunner(budget=Budget(max_seconds=600.0))
        predictor = IndexCostPredictor(dim=DIM, memory=MEMORY)

        def run_once(name: str):
            tasks = [BatchTask(
                name=name,
                fn=lambda: predictor.predict(points, workload,
                                             method="mini", seed=3),
            )]
            runner.run(tasks)

        threads = [
            threading.Thread(target=run_once, args=(f"task-{i}",))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert runner.runs_completed == 4
        assert runner.tasks_run == 4
