"""Tests for the analytical I/O cost model (Eqs. 1-5)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.costmodel import (
    AnalyticalCostModel,
    cost_build_lower_subtrees,
    cost_cutoff,
    cost_ondisk_build,
    cost_read_query_points,
    cost_resampled,
    cost_resampling,
    cost_scan_dataset,
)
from repro.core.cutoff import CutoffModel
from repro.core.topology import Topology
from repro.disk.accounting import DiskParameters, IOCost
from repro.disk.device import SimulatedDisk
from repro.disk.pagefile import PointFile
from repro.workload.queries import density_biased_knn_workload


class TestComponentFormulas:
    def test_read_query_points(self):
        assert cost_read_query_points(500) == IOCost(seeks=500, transfers=500)
        with pytest.raises(ValueError):
            cost_read_query_points(-1)

    def test_scan_dataset(self):
        assert cost_scan_dataset(275_465, 34) == IOCost(
            seeks=1, transfers=math.ceil(275_465 / 34)
        )

    def test_cutoff_is_sum(self):
        combined = cost_cutoff(100_000, 34, 500)
        assert combined == cost_read_query_points(500) + cost_scan_dataset(
            100_000, 34
        )

    def test_resampling_paper_structure(self):
        # Eq 4 with sigma_lower = 1: chunks = ceil(N/M); per chunk
        # (1 + k) seeks and 2 * ceil(M/B) transfers.
        n, m, b, k = 275_465, 10_000, 34, 34
        cost = cost_resampling(n, m, b, 1.0, k)
        chunks = math.ceil(n / m)
        assert cost.seeks == chunks * (1 + k)
        assert cost.transfers == chunks * 2 * math.ceil(m / b)

    def test_resampling_partial_sigma_scans_everything(self):
        n, m, b = 100_000, 5_000, 34
        cost = cost_resampling(n, m, b, 0.25, 5)
        # Read transfers cover the whole file: chunks * M/(B*sigma) ~ N/B.
        assert cost.transfers >= math.ceil(n / b)

    def test_resampling_invalid_sigma(self):
        with pytest.raises(ValueError):
            cost_resampling(1000, 100, 34, 0.0, 5)

    def test_build_lower_subtrees(self):
        cost = cost_build_lower_subtrees(10_000, 34, 34)
        assert cost == IOCost(seeks=34, transfers=34 * math.ceil(10_000 / 34))

    def test_resampled_is_sum_of_parts(self):
        total = cost_resampled(100_000, 5_000, 34, 1.0, 20, 500)
        parts = (
            cost_read_query_points(500)
            + cost_scan_dataset(100_000, 34)
            + cost_resampling(100_000, 5_000, 34, 1.0, 20)
            + cost_build_lower_subtrees(5_000, 34, 20)
        )
        assert total == parts


class TestOnDiskBuildFormula:
    def test_tiny_tree_single_pass(self):
        topo = Topology(100, 32, 16)
        cost = cost_ondisk_build(topo, memory=1000, points_per_page=10)
        # Everything fits in memory: one read + one write pass.
        assert cost == IOCost(seeks=2, transfers=2 * 10)

    def test_larger_memory_never_costs_more(self):
        topo = Topology(200_000, 34, 16)
        costs = [
            cost_ondisk_build(topo, memory=m, points_per_page=34).seconds()
            for m in (1_000, 10_000, 100_000)
        ]
        assert costs[0] >= costs[1] >= costs[2]

    def test_best_case_cheaper_than_expected_case(self):
        topo = Topology(200_000, 34, 16)
        best = cost_ondisk_build(topo, 10_000, 34, find_passes=1.0)
        expected = cost_ondisk_build(topo, 10_000, 34, find_passes=2.0)
        assert best.seconds() < expected.seconds()

    def test_invalid_inputs(self):
        topo = Topology(1000, 32, 16)
        with pytest.raises(ValueError):
            cost_ondisk_build(topo, 0, 34)
        with pytest.raises(ValueError):
            cost_ondisk_build(topo, 100, 34, find_passes=0.5)


class TestAnalyticalCostModel:
    model = AnalyticalCostModel()

    def test_figure9_ordering(self):
        """Figure 9: cutoff < resampled < on-disk across memory sizes."""
        for memory in (1_000, 10_000, 100_000):
            ondisk = self.model.seconds(self.model.ondisk(1_000_000, 60, memory))
            resampled = self.model.seconds(
                self.model.resampled(1_000_000, 60, memory)
            )
            cutoff = self.model.seconds(self.model.cutoff(1_000_000, 60, memory))
            assert cutoff < resampled < ondisk

    def test_figure9_monotone_in_memory(self):
        costs = [
            self.model.seconds(self.model.ondisk(1_000_000, 60, m))
            for m in (1_000, 5_000, 20_000, 100_000)
        ]
        assert all(a >= b for a, b in zip(costs, costs[1:]))

    def test_figure9_cutoff_order_of_magnitude(self):
        ondisk = self.model.seconds(self.model.ondisk(1_000_000, 60, 10_000))
        cutoff = self.model.seconds(self.model.cutoff(1_000_000, 60, 10_000))
        assert ondisk / cutoff > 10

    def test_figure10_linear_in_dimensionality(self):
        """Figure 10: the cutoff scan cost is linear in d."""
        query_term = self.model.seconds(cost_read_query_points(500))
        costs = [
            self.model.seconds(self.model.cutoff(1_000_000, d, 600_000 // d))
            - query_term
            for d in (20, 40, 80)
        ]
        # Doubling d roughly doubles the scan (transfer) cost.
        assert costs[1] / costs[0] == pytest.approx(2.0, rel=0.2)
        assert costs[2] / costs[1] == pytest.approx(2.0, rel=0.2)

    def test_explicit_h_upper(self):
        a = self.model.resampled(1_000_000, 60, 10_000, h_upper=2)
        b = self.model.resampled(1_000_000, 60, 10_000, h_upper=3)
        assert a != b

    def test_matches_simulated_cutoff_exactly(self, clustered_points):
        """The analytical Eq. 3 must equal the charged simulation."""
        workload = density_biased_knn_workload(
            clustered_points, 25, 5, np.random.default_rng(1)
        )
        disk = SimulatedDisk()
        file = PointFile.from_points(disk, clustered_points)
        result = CutoffModel(32, 16, memory=400, h_upper=2).predict(
            file, workload, np.random.default_rng(0)
        )
        analytical = cost_cutoff(
            clustered_points.shape[0], file.points_per_page, 25
        )
        assert result.io_cost == analytical

    def test_seconds_pricing(self):
        model = AnalyticalCostModel(disk=DiskParameters(t_seek=1.0, t_xfer=0.0))
        assert model.seconds(IOCost(seeks=7, transfers=99)) == pytest.approx(7.0)
