"""Unit and property tests for MBR geometry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.rtree import geometry
from repro.rtree.geometry import MBR


def finite_points(min_n=1, max_n=32, min_d=1, max_d=8):
    """Strategy: an (n, d) float array with bounded finite values."""
    return st.integers(min_n, max_n).flatmap(
        lambda n: st.integers(min_d, max_d).flatmap(
            lambda d: hnp.arrays(
                np.float64,
                (n, d),
                elements=st.floats(-100, 100, allow_nan=False, width=32),
            )
        )
    )


class TestMBRBasics:
    def test_of_points_bounds(self, tiny_points):
        box = MBR.of_points(tiny_points)
        assert np.all(box.lower <= tiny_points.min(axis=0))
        assert np.all(box.upper >= tiny_points.max(axis=0))
        assert np.allclose(box.lower, tiny_points.min(axis=0))
        assert np.allclose(box.upper, tiny_points.max(axis=0))

    def test_single_point_is_degenerate(self):
        box = MBR.of_points(np.array([[1.0, 2.0, 3.0]]))
        assert box.volume() == 0.0
        assert box.contains_point([1.0, 2.0, 3.0])

    def test_invalid_corners_rejected(self):
        with pytest.raises(ValueError):
            MBR(np.array([1.0, 0.0]), np.array([0.0, 1.0]))

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            MBR(np.array([0.0]), np.array([1.0, 2.0]))

    def test_empty_points_rejected(self):
        with pytest.raises(ValueError):
            MBR.of_points(np.empty((0, 3)))

    def test_volume_and_margin(self):
        box = MBR(np.zeros(3), np.array([1.0, 2.0, 3.0]))
        assert box.volume() == pytest.approx(6.0)
        assert box.margin() == pytest.approx(6.0)

    def test_center_and_extents(self):
        box = MBR(np.array([0.0, -2.0]), np.array([2.0, 2.0]))
        assert np.allclose(box.center, [1.0, 0.0])
        assert np.allclose(box.extents, [2.0, 4.0])

    def test_union_contains_both(self):
        a = MBR(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        b = MBR(np.array([2.0, -1.0]), np.array([3.0, 0.5]))
        u = a.union(b)
        assert u.intersects_box(a) and u.intersects_box(b)
        assert np.allclose(u.lower, [0.0, -1.0])
        assert np.allclose(u.upper, [3.0, 1.0])

    def test_mindist_inside_is_zero(self):
        box = MBR(np.zeros(2), np.ones(2))
        assert box.mindist_sq([0.5, 0.5]) == 0.0
        assert box.mindist_sq([0.0, 1.0]) == 0.0  # boundary counts

    def test_mindist_outside(self):
        box = MBR(np.zeros(2), np.ones(2))
        assert box.mindist_sq([2.0, 0.5]) == pytest.approx(1.0)
        assert box.mindist_sq([2.0, 2.0]) == pytest.approx(2.0)

    def test_sphere_intersection(self):
        box = MBR(np.zeros(2), np.ones(2))
        assert box.intersects_sphere(np.array([2.0, 0.5]), 1.0)
        assert not box.intersects_sphere(np.array([2.0, 0.5]), 0.99)

    def test_grown_by_one_is_identity(self):
        box = MBR(np.array([0.0, 1.0]), np.array([2.0, 4.0]))
        grown = box.grown(1.0)
        assert np.allclose(grown.lower, box.lower)
        assert np.allclose(grown.upper, box.upper)

    def test_grown_preserves_center(self):
        box = MBR(np.array([0.0, 1.0]), np.array([2.0, 4.0]))
        grown = box.grown(1.5)
        assert np.allclose(grown.center, box.center)
        assert np.allclose(grown.extents, box.extents * 1.5)

    def test_grow_negative_rejected(self):
        box = MBR(np.zeros(2), np.ones(2))
        with pytest.raises(ValueError):
            box.grown(-0.1)


class TestVectorizedOps:
    def test_mindist_matches_scalar(self, rng):
        points = rng.random((20, 4))
        lower = points - rng.random((20, 4)) * 0.1
        upper = points + rng.random((20, 4)) * 0.1
        query = rng.random(4) * 2 - 0.5
        vector = geometry.mindist_sq_point_to_boxes(query, lower, upper)
        for i in range(20):
            box = MBR(lower[i], upper[i])
            assert vector[i] == pytest.approx(box.mindist_sq(query))

    def test_count_sphere_intersections_matches_mask(self, rng):
        lower = rng.random((50, 3))
        upper = lower + rng.random((50, 3))
        query = rng.random(3)
        count = geometry.count_sphere_intersections(query, 0.4, lower, upper)
        mask = geometry.sphere_intersects_boxes(query, 0.4, lower, upper)
        assert count == int(mask.sum())

    def test_intersects_box_symmetry(self, rng):
        lower = rng.random((30, 3))
        upper = lower + rng.random((30, 3))
        q_lower = rng.random(3) * 0.5
        q_upper = q_lower + 0.5
        hits = geometry.intersects_box(lower, upper, q_lower, q_upper)
        for i in range(30):
            a = MBR(lower[i], upper[i])
            b = MBR(q_lower, q_upper)
            assert hits[i] == a.intersects_box(b) == b.intersects_box(a)

    def test_contains_point_boundary(self):
        lower = np.array([[0.0, 0.0]])
        upper = np.array([[1.0, 1.0]])
        assert geometry.contains_point(lower, upper, np.array([1.0, 0.0]))[0]
        assert not geometry.contains_point(lower, upper, np.array([1.0001, 0.0]))[0]

    def test_stack_mbrs_roundtrip(self):
        boxes = [MBR(np.zeros(2), np.ones(2)), MBR(np.ones(2), np.full(2, 3.0))]
        lower, upper = geometry.stack_mbrs(boxes)
        assert lower.shape == (2, 2)
        assert np.allclose(lower[1], [1.0, 1.0])

    def test_stack_empty_rejected(self):
        with pytest.raises(ValueError):
            geometry.stack_mbrs([])

    def test_volume_stacked(self):
        lower = np.zeros((3, 2))
        upper = np.array([[1.0, 1.0], [2.0, 1.0], [0.5, 4.0]])
        assert np.allclose(geometry.volume(lower, upper), [1.0, 2.0, 2.0])

    def test_union_stacked(self):
        lo, hi = geometry.union(
            np.zeros((2, 2)), np.ones((2, 2)),
            np.full((2, 2), 0.5), np.full((2, 2), 2.0),
        )
        assert np.allclose(lo, 0.0)
        assert np.allclose(hi, 2.0)

    def test_grow_centered_shrink(self):
        lower = np.array([[0.0, 0.0]])
        upper = np.array([[2.0, 4.0]])
        lo, hi = geometry.grow_centered(lower, upper, 0.5)
        assert np.allclose(lo, [[0.5, 1.0]])
        assert np.allclose(hi, [[1.5, 3.0]])


class TestGeometryProperties:
    @given(finite_points(min_n=2))
    @settings(max_examples=50, deadline=None)
    def test_mbr_contains_all_points(self, points):
        box = MBR.of_points(points)
        for point in points:
            assert box.contains_point(point)

    @given(finite_points(min_n=1))
    @settings(max_examples=50, deadline=None)
    def test_mindist_zero_for_members(self, points):
        box = MBR.of_points(points)
        dists = geometry.mindist_sq_point_to_boxes(
            points[0], box.lower[None, :], box.upper[None, :]
        )
        assert dists[0] == pytest.approx(0.0, abs=1e-9)

    @given(finite_points(min_n=2), st.floats(1.0, 10.0))
    @settings(max_examples=50, deadline=None)
    def test_growth_monotone_in_mindist(self, points, factor):
        """Growing a box can only decrease MINDIST to any query."""
        box = MBR.of_points(points)
        grown = box.grown(factor)
        query = points.mean(axis=0) + 50.0
        assert grown.mindist_sq(query) <= box.mindist_sq(query) + 1e-9

    @given(finite_points(min_n=2, max_n=16), finite_points(min_n=2, max_n=16))
    @settings(max_examples=50, deadline=None)
    def test_union_volume_superadditive(self, a_pts, b_pts):
        if a_pts.shape[1] != b_pts.shape[1]:
            b_pts = b_pts[:, : a_pts.shape[1]]
            if b_pts.shape[1] != a_pts.shape[1]:
                return
        a = MBR.of_points(a_pts)
        b = MBR.of_points(b_pts)
        u = a.union(b)
        assert u.volume() >= max(a.volume(), b.volume()) - 1e-9
