"""Tests for the top-down bulk loader."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.topology import Topology
from repro.rtree.bulkload import BulkLoadConfig, build_subtree, build_tree
from repro.rtree.split import max_extent_dimension
from repro.rtree.tree import RTree


class TestFullBuild:
    def test_validates_on_clustered_data(self, clustered_points):
        tree = RTree.bulk_load(clustered_points, c_data=32, c_dir=16)
        tree.validate()

    def test_validates_on_uniform_data(self, uniform_points):
        tree = RTree.bulk_load(uniform_points, c_data=20, c_dir=8)
        tree.validate()

    def test_single_leaf_tree(self, tiny_points):
        tree = RTree.bulk_load(tiny_points, c_data=64, c_dir=16)
        assert tree.height == 1
        assert tree.n_leaves == 1
        tree.validate()

    def test_single_point(self):
        tree = RTree.bulk_load(np.array([[0.5, 0.5]]), c_data=4, c_dir=4)
        assert tree.height == 1
        assert tree.root.n_points == 1
        tree.validate()

    def test_leaf_order_partitions_split_dimension(self, rng):
        # With strongly 1-d data, consecutive leaves should occupy
        # consecutive intervals (VAMSplit cuts the dominant dimension).
        points = np.sort(rng.random(1024))[:, None] * np.array([[1.0, 0.001]])
        tree = RTree.bulk_load(points, c_data=32, c_dir=4)
        tree.validate()
        maxes = [tree.points[l.point_ids, 0].max() for l in tree.leaves]
        mins = [tree.points[l.point_ids, 0].min() for l in tree.leaves]
        for i in range(len(maxes) - 1):
            assert maxes[i] <= mins[i + 1] + 1e-12

    def test_midpoint_mode_still_partitions(self, clustered_points):
        config = BulkLoadConfig(rank_mode="midpoint")
        tree = RTree.bulk_load(clustered_points, c_data=32, c_dir=16,
                               config=config)
        # Midpoint splits may violate the exact VAMSplit node counts but
        # must still cover every point exactly once within capacities.
        ids = np.sort(np.concatenate([l.point_ids for l in tree.leaves]))
        assert np.array_equal(ids, np.arange(clustered_points.shape[0]))
        assert all(l.n_points <= 32 for l in tree.leaves)

    def test_max_extent_rule(self, clustered_points):
        config = BulkLoadConfig(dimension_rule=max_extent_dimension)
        tree = RTree.bulk_load(clustered_points, c_data=32, c_dir=16,
                               config=config)
        tree.validate()

    def test_invalid_rank_mode(self):
        with pytest.raises(ValueError):
            BulkLoadConfig(rank_mode="bogus")

    def test_non_2d_points_rejected(self):
        topo = Topology(10, 4, 4)
        with pytest.raises(ValueError):
            build_tree(np.zeros(10), topo)

    def test_more_points_than_virtual_rejected(self, tiny_points):
        topo = Topology(10, 4, 4)
        with pytest.raises(ValueError):
            build_tree(tiny_points, topo)


class TestMiniIndexBuild:
    def test_topology_imposed_exactly(self, clustered_points, rng):
        n = clustered_points.shape[0]
        sample = clustered_points[rng.choice(n, n // 10, replace=False)]
        mini = RTree.bulk_load(sample, c_data=32, c_dir=16, virtual_n=n)
        full_topo = Topology(n, 32, 16)
        assert mini.height == full_topo.height
        for level in range(1, mini.height + 1):
            assert len(mini.nodes_at_level(level)) == full_topo.nodes_at_level(level)

    def test_mini_validate(self, clustered_points, rng):
        n = clustered_points.shape[0]
        sample = clustered_points[rng.choice(n, n // 5, replace=False)]
        mini = RTree.bulk_load(sample, c_data=32, c_dir=16, virtual_n=n)
        mini.validate()

    def test_tiny_sample_allows_empty_leaves(self, clustered_points, rng):
        n = clustered_points.shape[0]
        sample = clustered_points[rng.choice(n, 20, replace=False)]
        mini = RTree.bulk_load(sample, c_data=32, c_dir=16, virtual_n=n)
        mini.validate()  # empty leaves are legal in a mini-index
        total = sum(l.n_points for l in mini.leaves)
        assert total == 20

    def test_sample_points_partitioned(self, clustered_points, rng):
        n = clustered_points.shape[0]
        m = n // 8
        sample = clustered_points[rng.choice(n, m, replace=False)]
        mini = RTree.bulk_load(sample, c_data=32, c_dir=16, virtual_n=n)
        ids = np.sort(np.concatenate([l.point_ids for l in mini.leaves]))
        assert np.array_equal(ids, np.arange(m))


class TestStopLevel:
    def test_upper_tree_leaf_level(self, clustered_points):
        topo = Topology(clustered_points.shape[0], 32, 16)
        assert topo.height >= 3
        root = build_tree(clustered_points, topo, stop_level=2)
        leaves = list(root.iter_leaves())
        assert all(l.level == 2 for l in leaves)
        assert len(leaves) == topo.nodes_at_level(2)

    def test_virtual_counts_sum_to_total(self, clustered_points):
        topo = Topology(clustered_points.shape[0], 32, 16)
        root = build_tree(clustered_points, topo, stop_level=2)
        assert sum(l.virtual_n for l in root.iter_leaves()) == topo.n_points

    def test_stop_at_root(self, clustered_points):
        topo = Topology(clustered_points.shape[0], 32, 16)
        root = build_tree(clustered_points, topo, stop_level=topo.height)
        assert root.is_leaf
        assert root.n_points == clustered_points.shape[0]

    def test_invalid_stop_level(self, clustered_points):
        topo = Topology(clustered_points.shape[0], 32, 16)
        with pytest.raises(ValueError):
            build_tree(clustered_points, topo, stop_level=0)
        with pytest.raises(ValueError):
            build_tree(clustered_points, topo, stop_level=topo.height + 1)


class TestBuildSubtree:
    def test_subtree_matches_partition_counts(self, clustered_points):
        topo = Topology(clustered_points.shape[0], 32, 16)
        n = 400
        ids = np.arange(n, dtype=np.int64)
        root = build_subtree(clustered_points[:n], ids, 2, n, topo)
        assert root.level == 2
        assert root.n_points == n
        leaf_sizes = [l.n_points for l in root.iter_leaves()]
        assert sum(leaf_sizes) == n
        assert all(size <= 32 for size in leaf_sizes)


class TestBuildProperties:
    @given(st.integers(2, 800), st.integers(2, 5), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_any_shape_validates(self, n, d, seed):
        gen = np.random.default_rng(seed)
        points = gen.random((n, d))
        tree = RTree.bulk_load(points, c_data=8, c_dir=4)
        tree.validate()

    @given(st.integers(50, 500), st.floats(0.05, 0.9), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_any_sample_rate_validates(self, n, rate, seed):
        gen = np.random.default_rng(seed)
        points = gen.random((n, 3))
        m = max(1, int(n * rate))
        sample = points[gen.choice(n, m, replace=False)]
        mini = RTree.bulk_load(sample, c_data=8, c_dir=4, virtual_n=n)
        mini.validate()
