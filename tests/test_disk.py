"""Tests for the disk simulator: accounting, device, paged files."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disk.accounting import DiskParameters, IOCost
from repro.disk.device import SimulatedDisk
from repro.disk.pagefile import PointFile


class TestIOCost:
    def test_addition(self):
        total = IOCost(2, 10) + IOCost(3, 5)
        assert total == IOCost(5, 15)

    def test_subtraction(self):
        assert IOCost(5, 15) - IOCost(2, 10) == IOCost(3, 5)

    def test_scaling(self):
        assert IOCost(1, 4).scaled(3) == IOCost(3, 12)

    def test_seconds_default_disk(self):
        cost = IOCost(seeks=100, transfers=1000)
        assert cost.seconds() == pytest.approx(100 * 0.010 + 1000 * 0.0004)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            IOCost(-1, 0)
        with pytest.raises(ValueError):
            IOCost(1, 2).scaled(-1)

    def test_is_zero(self):
        assert IOCost().is_zero
        assert not IOCost(1, 0).is_zero

    @given(st.integers(0, 10**6), st.integers(0, 10**6),
           st.integers(0, 10**6), st.integers(0, 10**6))
    @settings(max_examples=50, deadline=None)
    def test_addition_commutative(self, s1, t1, s2, t2):
        a, b = IOCost(s1, t1), IOCost(s2, t2)
        assert a + b == b + a

    @given(st.integers(0, 10**4), st.integers(0, 10**4), st.integers(0, 100))
    @settings(max_examples=50, deadline=None)
    def test_scaling_is_repeated_addition(self, s, t, n):
        cost = IOCost(s, t)
        total = IOCost()
        for _ in range(n):
            total = total + cost
        assert total == cost.scaled(n)


class TestDiskParameters:
    def test_defaults_match_paper(self):
        disk = DiskParameters()
        assert disk.t_seek == 0.010
        assert disk.t_xfer == 0.0004
        assert disk.page_bytes == 8192

    def test_points_per_page_60d(self):
        assert DiskParameters().points_per_page(60) == 34

    def test_points_per_page_floor(self):
        assert DiskParameters().points_per_page(10_000) == 1

    def test_with_page_bytes_rescales_transfer(self):
        disk = DiskParameters().with_page_bytes(65536)
        assert disk.page_bytes == 65536
        assert disk.t_xfer == pytest.approx(0.0004 * 8)
        assert disk.t_seek == 0.010

    def test_invalid(self):
        with pytest.raises(ValueError):
            DiskParameters(t_seek=-1)
        with pytest.raises(ValueError):
            DiskParameters(page_bytes=0)
        with pytest.raises(ValueError):
            DiskParameters().points_per_page(0)


class TestSimulatedDisk:
    def test_sequential_access_single_seek(self):
        disk = SimulatedDisk()
        disk.access(0, 10)
        disk.access(10, 10)  # adjacent: continues the streak
        assert disk.cost == IOCost(seeks=1, transfers=20)

    def test_non_adjacent_access_seeks(self):
        disk = SimulatedDisk()
        disk.access(0, 10)
        disk.access(100, 5)
        disk.access(50, 1)
        assert disk.cost.seeks == 3
        assert disk.cost.transfers == 16

    def test_backward_access_seeks(self):
        disk = SimulatedDisk()
        disk.access(10, 5)
        disk.access(0, 5)  # behind the head: seek
        assert disk.cost.seeks == 2

    def test_zero_pages_free(self):
        disk = SimulatedDisk()
        assert disk.access(5, 0) == IOCost()
        assert disk.cost.is_zero

    def test_allocation_is_consecutive(self):
        disk = SimulatedDisk()
        a = disk.allocate(10)
        b = disk.allocate(5)
        assert b == a + 10
        assert disk.allocated_pages == 15

    def test_reset_preserves_head(self):
        disk = SimulatedDisk()
        disk.access(0, 10)
        before = disk.reset_counters()
        assert before == IOCost(1, 10)
        disk.access(10, 1)  # still adjacent: no phantom seek
        assert disk.cost == IOCost(seeks=0, transfers=1)

    def test_drop_head_forces_seek(self):
        disk = SimulatedDisk()
        disk.access(0, 10)
        disk.drop_head()
        disk.access(10, 1)
        assert disk.cost.seeks == 2

    def test_invalid_access(self):
        disk = SimulatedDisk()
        with pytest.raises(ValueError):
            disk.access(-1, 1)
        with pytest.raises(ValueError):
            disk.access(0, -1)

    def test_seconds_pricing(self):
        disk = SimulatedDisk(DiskParameters(t_seek=1.0, t_xfer=0.5))
        disk.access(0, 4)
        assert disk.seconds() == pytest.approx(1.0 + 4 * 0.5)


class TestPointFile:
    def test_roundtrip(self, rng):
        disk = SimulatedDisk()
        points = rng.random((100, 5))
        pf = PointFile.from_points(disk, points)
        assert np.allclose(pf.read_all(), points)

    def test_initial_load_free_by_default(self, rng):
        disk = SimulatedDisk()
        PointFile.from_points(disk, rng.random((100, 5)))
        assert disk.cost.is_zero

    def test_charged_initial_load(self, rng):
        disk = SimulatedDisk()
        pf = PointFile.from_points(disk, rng.random((100, 5)), charge_write=True)
        assert disk.cost.transfers == pf.n_pages

    def test_scan_costs_one_seek(self, rng):
        disk = SimulatedDisk()
        pf = PointFile.from_points(disk, rng.random((1000, 8)))
        blocks = [b for _, b in pf.scan()]
        assert np.allclose(np.concatenate(blocks), pf.read_all()[: 1000])
        # scan: 1 seek + ceil(N/B) transfers (read_all added 1 seek + pages)
        scan_cost = disk.cost - IOCost(seeks=1, transfers=pf.n_pages)
        assert scan_cost == IOCost(seeks=1, transfers=pf.n_pages)

    def test_scan_with_custom_chunk_still_one_seek(self, rng):
        disk = SimulatedDisk()
        pf = PointFile.from_points(disk, rng.random((999, 7)))
        list(pf.scan(chunk_points=130))  # not page-aligned: gets aligned
        assert disk.cost.seeks == 1
        assert disk.cost.transfers == pf.n_pages

    def test_read_point_random_seeks(self, rng):
        disk = SimulatedDisk()
        pf = PointFile.from_points(disk, rng.random((500, 4)))
        pf.read_point(0)
        pf.read_point(499)
        assert disk.cost == IOCost(seeks=2, transfers=2)

    def test_read_range_page_span(self, rng):
        disk = SimulatedDisk()
        pf = PointFile.from_points(disk, rng.random((100, 4)), points_per_page=10)
        pf.read_range(5, 15)  # straddles pages 0 and 1
        assert disk.cost == IOCost(seeks=1, transfers=2)

    def test_append_retouches_partial_page(self, rng):
        disk = SimulatedDisk()
        pf = PointFile(disk, dim=4, capacity=100, points_per_page=10)
        pf.append(rng.random((5, 4)))
        pf.append(rng.random((5, 4)))  # same trailing page
        assert disk.cost.transfers == 2
        assert pf.n_points == 10

    def test_write_past_capacity_rejected(self, rng):
        disk = SimulatedDisk()
        pf = PointFile(disk, dim=2, capacity=10)
        with pytest.raises(IndexError):
            pf.write_range(5, rng.random((6, 2)))

    def test_read_past_end_rejected(self, rng):
        disk = SimulatedDisk()
        pf = PointFile.from_points(disk, rng.random((10, 2)))
        with pytest.raises(IndexError):
            pf.read_range(5, 11)

    def test_page_of(self, rng):
        disk = SimulatedDisk()
        pf = PointFile.from_points(disk, rng.random((25, 2)), points_per_page=10)
        assert pf.page_of(0) == pf.start_page
        assert pf.page_of(10) == pf.start_page + 1
        assert pf.page_of(24) == pf.start_page + 2
        with pytest.raises(IndexError):
            pf.page_of(25)

    def test_two_files_disjoint_pages(self, rng):
        disk = SimulatedDisk()
        a = PointFile.from_points(disk, rng.random((50, 2)), points_per_page=10)
        b = PointFile.from_points(disk, rng.random((50, 2)), points_per_page=10)
        assert b.start_page >= a.start_page + 5

    def test_peek_and_place_uncharged(self, rng):
        disk = SimulatedDisk()
        pf = PointFile.from_points(disk, rng.random((20, 3)))
        data = pf.peek(0, 20).copy()
        pf.place(0, data[::-1])
        assert disk.cost.is_zero
        assert np.allclose(pf.peek(0, 20), data[::-1])

    def test_n_pages(self, rng):
        disk = SimulatedDisk()
        pf = PointFile.from_points(disk, rng.random((21, 2)), points_per_page=10)
        assert pf.n_pages == 3

    @given(st.integers(1, 300), st.integers(1, 20), st.integers(1, 50))
    @settings(max_examples=40, deadline=None)
    def test_scan_transfer_count_property(self, n, d, b):
        gen = np.random.default_rng(n * 31 + d)
        disk = SimulatedDisk()
        pf = PointFile.from_points(disk, gen.random((n, d)), points_per_page=b)
        list(pf.scan())
        assert disk.cost == IOCost(seeks=1, transfers=math.ceil(n / b))
