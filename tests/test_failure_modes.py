"""Failure-injection and degenerate-input tests across the library.

A production system's behavior on hostile input matters as much as its
happy path: constant columns, duplicate-heavy data, NaN/inf
coordinates, single-point datasets, workloads larger than the data,
memory budgets at the edge of feasibility -- and, since the
fault-injection subsystem, disks that fail reads, tear writes, and
stall, with retries and graceful degradation across the prediction
methods.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cutoff import CutoffModel
from repro.core.minindex import MiniIndexModel
from repro.core.predictor import IndexCostPredictor
from repro.core.resampled import ResampledModel
from repro.disk.accounting import IOCost
from repro.disk.device import SimulatedDisk
from repro.disk.faults import FaultInjector
from repro.disk.pagefile import PointFile
from repro.disk.retry import RetryPolicy
from repro.errors import (
    DegradedResultWarning,
    DiskError,
    InputValidationError,
    PredictionError,
    ReproError,
    TornWriteError,
    TransientReadError,
)
from repro.ondisk.builder import OnDiskBuilder
from repro.rtree.rstar import RStarTree
from repro.rtree.tree import RTree
from repro.workload.queries import KNNWorkload, density_biased_knn_workload


def fresh_file(points):
    return PointFile.from_points(SimulatedDisk(), points)


class TestDegenerateData:
    def test_constant_column(self, rng):
        points = rng.random((500, 4))
        points[:, 2] = 0.5
        tree = RTree.bulk_load(points, 16, 8)
        tree.validate()
        result = tree.knn(points[0], 5)
        assert result.distances[0] == 0.0

    def test_all_identical_points(self):
        points = np.tile([1.0, 2.0], (300, 1))
        tree = RTree.bulk_load(points, 16, 8)
        tree.validate()
        result = tree.knn(np.array([1.0, 2.0]), 3)
        assert np.allclose(result.distances, 0.0)

    def test_all_identical_ondisk_build(self):
        points = np.tile([1.0, 2.0, 3.0], (500, 1))
        index = OnDiskBuilder(16, 8, memory=64).build(fresh_file(points))
        index.tree.validate()

    def test_one_dimensional_data(self, rng):
        points = np.sort(rng.random(300))[:, None]
        tree = RTree.bulk_load(points, 8, 4)
        tree.validate()
        workload = density_biased_knn_workload(
            points, 10, 5, np.random.default_rng(0)
        )
        estimate = MiniIndexModel(8, 4).predict(
            points, workload, 0.5, np.random.default_rng(1)
        )
        measured = tree.leaf_accesses_for_radius(
            workload.queries, workload.radii
        ).mean()
        assert abs(estimate.mean_accesses - measured) / measured < 0.5

    def test_two_points(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        tree = RTree.bulk_load(points, 8, 4)
        tree.validate()
        assert tree.knn(np.zeros(2), 2).point_ids.shape[0] == 2

    def test_duplicate_heavy_mixture(self, rng):
        base = rng.random((10, 3))
        points = base[rng.integers(0, 10, size=1000)]
        tree = RTree.bulk_load(points, 16, 8)
        tree.validate()
        rstar = RStarTree.build(points, 16, 8, shuffle_seed=0)
        rstar.validate()


class TestHostileInputs:
    def test_nan_rejected_by_workload(self):
        points = np.full((50, 2), np.nan)
        with pytest.raises(ValueError, match="finite"):
            density_biased_knn_workload(points, 5, 2,
                                        np.random.default_rng(0))

    def test_inf_rejected_by_workload(self):
        points = np.ones((50, 2))
        points[0, 0] = np.inf
        with pytest.raises(ValueError, match="finite"):
            density_biased_knn_workload(points, 50, 2,
                                        np.random.default_rng(0))

    def test_inf_coordinates_rejected_by_bulk_load(self):
        points = np.ones((100, 2))
        points[0, 0] = np.inf
        # An infinity would silently poison every MBR above the point;
        # since the validation pass, bulk_load rejects it up front.
        with pytest.raises(InputValidationError, match="non-finite"):
            RTree.bulk_load(points, 8, 4)

    def test_nan_coordinates_rejected_by_bulk_load(self):
        points = np.ones((100, 2))
        points[5, 1] = np.nan
        with pytest.raises(InputValidationError, match="non-finite"):
            RTree.bulk_load(points, 8, 4)

    def test_empty_and_ragged_rejected_by_bulk_load(self):
        with pytest.raises(InputValidationError, match="non-empty"):
            RTree.bulk_load(np.empty((0, 4)), 8, 4)
        with pytest.raises(InputValidationError):
            RTree.bulk_load([[1.0, 2.0], [3.0]], 8, 4)

    def test_facade_rejects_nan_points(self, clustered_points):
        predictor = IndexCostPredictor(dim=16, memory=400, c_data=32,
                                       c_dir=16)
        workload = density_biased_knn_workload(
            clustered_points, 3, 2, np.random.default_rng(0)
        )
        bad = clustered_points.copy()
        bad[0, 0] = np.nan
        with pytest.raises(InputValidationError, match="non-finite"):
            predictor.predict(bad, workload)
        with pytest.raises(InputValidationError, match="non-finite"):
            predictor.measure(bad, workload)

    def test_facade_rejects_empty_and_wrong_rank(self):
        predictor = IndexCostPredictor(dim=4, memory=100, c_data=16, c_dir=8)
        workload = KNNWorkload(
            k=1,
            query_ids=np.zeros(1, np.int64),
            queries=np.zeros((1, 4)),
            radii=np.ones(1),
        )
        with pytest.raises(InputValidationError, match="non-empty"):
            predictor.predict(np.empty((0, 4)), workload)
        with pytest.raises(InputValidationError, match="matrix"):
            predictor.predict(np.zeros(10), workload)
        # InputValidationError is also a ValueError for old callers.
        assert issubclass(InputValidationError, ValueError)
        assert issubclass(InputValidationError, ReproError)

    def test_mismatched_workload_dimension(self, clustered_points):
        workload = KNNWorkload(
            k=1,
            query_ids=np.zeros(1, np.int64),
            queries=np.zeros((1, 3)),
            radii=np.ones(1),
        )
        predictor = IndexCostPredictor(dim=16, memory=400, c_data=32, c_dir=16)
        with pytest.raises((ValueError, IndexError)):
            predictor.predict(clustered_points, workload, method="mini",
                              sampling_fraction=0.5)


class TestEdgeBudgets:
    def test_workload_larger_than_dataset(self, rng):
        points = rng.random((30, 3))
        workload = density_biased_knn_workload(points, 100, 2, rng)
        estimate = MiniIndexModel(8, 4).predict(
            points, workload, 1.0, np.random.default_rng(0)
        )
        assert estimate.per_query.shape == (100,)

    def test_memory_of_one_point_phased(self, clustered_points, rng):
        workload = density_biased_knn_workload(
            clustered_points, 5, 2, np.random.default_rng(0)
        )
        model = CutoffModel(32, 16, memory=1)
        result = model.predict(fresh_file(clustered_points), workload,
                               np.random.default_rng(1))
        assert result.per_query.shape == (5,)

    def test_resampled_tiny_memory_survives(self, clustered_points):
        workload = density_biased_knn_workload(
            clustered_points, 5, 2, np.random.default_rng(0)
        )
        model = ResampledModel(32, 16, memory=8)
        result = model.predict(fresh_file(clustered_points), workload,
                               np.random.default_rng(1))
        # Heavily degraded but well-defined.
        assert np.all(result.per_query >= 0)

    def test_k_equals_n(self, rng):
        points = rng.random((40, 2))
        workload = density_biased_knn_workload(points, 3, 40, rng)
        tree = RTree.bulk_load(points, 8, 4)
        counts = tree.leaf_accesses_for_radius(workload.queries,
                                               workload.radii)
        assert np.all(counts == tree.n_leaves)

    def test_single_query(self, clustered_points):
        workload = density_biased_knn_workload(
            clustered_points, 1, 21, np.random.default_rng(0)
        )
        predictor = IndexCostPredictor(dim=16, memory=400, c_data=32,
                                       c_dir=16)
        result = predictor.predict(clustered_points, workload,
                                   method="resampled")
        assert result.per_query.shape == (1,)


class TestFaultInjection:
    """The fault-injection disk layer and its retry/degradation story."""

    @pytest.fixture
    def workload(self, clustered_points):
        return density_biased_knn_workload(
            clustered_points, 10, 5, np.random.default_rng(0)
        )

    def test_zero_rate_is_zero_overhead(self, clustered_points, workload):
        """Rate 0 + retries enabled == bare disk, bit for bit."""
        model = ResampledModel(32, 16, memory=400)
        bare = model.predict(
            PointFile.from_points(SimulatedDisk(), clustered_points),
            workload, np.random.default_rng(9),
        )
        injector = FaultInjector(SimulatedDisk())  # all rates zero
        wrapped = PointFile.from_points(
            injector, clustered_points, retry=RetryPolicy()
        )
        faulty = model.predict(wrapped, workload, np.random.default_rng(9))
        assert np.array_equal(bare.per_query, faulty.per_query)
        assert bare.io_cost == faulty.io_cost
        assert faulty.io_cost.retries == 0
        assert faulty.io_cost.faults_seen == 0

    def test_zero_rate_facade_matches_all_methods(
        self, clustered_points, workload
    ):
        plain = IndexCostPredictor(dim=16, memory=400, c_data=32, c_dir=16)
        injected = IndexCostPredictor(
            dim=16, memory=400, c_data=32, c_dir=16,
            fault_rate=0.0, fault_seed=123,  # injector config but inert
        )
        for method in ("mini", "cutoff", "resampled"):
            a = plain.predict(clustered_points, workload, method=method)
            b = injected.predict(clustered_points, workload, method=method)
            assert np.array_equal(a.per_query, b.per_query), method
            assert a.io_cost == b.io_cost, method

    def test_deterministic_replay(self, clustered_points, workload):
        """A fixed fault seed replays the exact same fault sequence."""
        runs = []
        for _ in range(2):
            predictor = IndexCostPredictor(
                dim=16, memory=400, c_data=32, c_dir=16,
                fault_rate=0.1, fault_seed=42,
            )
            runs.append(
                predictor.predict(clustered_points, workload,
                                  method="cutoff")
            )
        assert np.array_equal(runs[0].per_query, runs[1].per_query)
        assert runs[0].io_cost == runs[1].io_cost
        assert runs[0].io_cost.faults_seen > 0  # the scenario has teeth

    def test_retry_recovers_same_estimate(self, clustered_points, workload):
        """Retried transient reads cost I/O but never change the data."""
        clean = IndexCostPredictor(dim=16, memory=400, c_data=32, c_dir=16)
        faulty = IndexCostPredictor(
            dim=16, memory=400, c_data=32, c_dir=16,
            fault_rate=0.05, fault_seed=7,
        )
        a = clean.predict(clustered_points, workload, method="resampled")
        b = faulty.predict(clustered_points, workload, method="resampled")
        assert np.array_equal(a.per_query, b.per_query)
        assert b.io_cost.retries > 0
        assert b.io_cost.faults_seen > 0
        # Retries are priced: the survivor paid more than the clean run.
        assert b.io_cost.seconds() > a.io_cost.seconds()

    def test_retry_exhaustion_raises_transient_read_error(
        self, clustered_points
    ):
        injector = FaultInjector(SimulatedDisk(), read_fault_rate=1.0)
        file = PointFile.from_points(
            injector, clustered_points, retry=RetryPolicy(max_attempts=3)
        )
        with pytest.raises(TransientReadError) as excinfo:
            file.read_range(0, 64)
        assert excinfo.value.attempts == 3
        # Two retry rounds were charged before giving up.
        assert injector.cost.retries == 2
        assert injector.cost.faults_seen == 3

    def test_no_retry_policy_fails_fast(self, clustered_points):
        injector = FaultInjector(SimulatedDisk(), read_fault_rate=1.0)
        file = PointFile.from_points(injector, clustered_points)
        with pytest.raises(TransientReadError):
            file.read_range(0, 64)
        assert injector.cost.retries == 0

    def test_degradation_lands_on_cutoff_when_spill_killed(
        self, clustered_points, workload
    ):
        """Torn writes kill resampled's spill phase; cutoff never
        writes, so the chain stops there."""
        predictor = IndexCostPredictor(
            dim=16, memory=400, c_data=32, c_dir=16,
            torn_write_rate=1.0, fault_seed=3,
        )
        with pytest.warns(DegradedResultWarning):
            result = predictor.predict(clustered_points, workload,
                                       method="resampled")
        record = result.detail["degradation"]
        assert record["method_requested"] == "resampled"
        assert record["method_used"] == "cutoff"
        assert record["attempts"][0]["method"] == "resampled"
        assert "TornWriteError" in record["attempts"][0]["error"]
        assert record["faults_seen"] > 0
        # The estimate matches a direct cutoff run on a clean disk.
        clean = IndexCostPredictor(dim=16, memory=400, c_data=32, c_dir=16)
        direct = clean.predict(clustered_points, workload, method="cutoff")
        assert np.array_equal(result.per_query, direct.per_query)

    def test_degrade_false_propagates_the_fault(
        self, clustered_points, workload
    ):
        predictor = IndexCostPredictor(
            dim=16, memory=400, c_data=32, c_dir=16,
            torn_write_rate=1.0, fault_seed=3,
        )
        with pytest.raises(TornWriteError):
            predictor.predict(clustered_points, workload,
                              method="resampled", degrade=False)

    def test_two_percent_faults_all_methods_complete(self, uniform_points):
        """Acceptance scenario: 2% transient read faults on the uniform
        workload; every method completes via retry or documented
        degradation."""
        predictor = IndexCostPredictor(
            dim=6, memory=500, c_data=32, c_dir=16,
            fault_rate=0.02, fault_seed=11,
        )
        workload = predictor.make_workload(uniform_points, 10, 5, seed=2)
        for method in ("mini", "cutoff", "resampled"):
            result = predictor.predict(uniform_points, workload,
                                       method=method)
            assert np.all(result.per_query >= 0), method
            degradation = result.detail.get("degradation")
            if degradation is not None:
                assert degradation["method_used"] in (
                    "mini", "cutoff", "resampled", "baseline"
                )

    def test_baseline_is_last_resort(self, uniform_points):
        """With reads always failing, every disk-touching method dies
        and the closed-form baseline answers."""
        predictor = IndexCostPredictor(
            dim=6, memory=500, c_data=32, c_dir=16,
            fault_rate=1.0, fault_seed=0,
            retry=RetryPolicy(max_attempts=2),
        )
        workload = density_biased_knn_workload(
            uniform_points, 5, 3, np.random.default_rng(1)
        )
        with pytest.warns(DegradedResultWarning):
            result = predictor.predict(uniform_points, workload,
                                       method="resampled")
        record = result.detail["degradation"]
        # mini runs in memory on the raw array, so it succeeds before
        # the chain ever reaches the closed-form baseline.
        assert record["method_used"] == "mini"
        assert [a["method"] for a in record["attempts"]] == [
            "resampled", "cutoff"
        ]
        assert np.all(result.per_query >= 0)

    def test_injector_validates_rates(self):
        with pytest.raises(ValueError, match="read_fault_rate"):
            FaultInjector(SimulatedDisk(), read_fault_rate=1.5)

    def test_spill_resumes_recorded(self, clustered_points, workload):
        """A torn-write rate low enough for the bucket checkpoints to
        absorb shows up in the detail instead of degrading."""
        predictor = IndexCostPredictor(
            dim=16, memory=400, c_data=32, c_dir=16,
            torn_write_rate=0.05, fault_seed=5,
        )
        result = predictor.predict(clustered_points, workload,
                                   method="resampled")
        detail = result.detail
        if "n_spill_resumes" in detail:
            assert detail["n_spill_resumes"] >= 0


class TestDeviceCapacity:
    def test_allocate_beyond_capacity_raises(self):
        disk = SimulatedDisk(capacity_pages=10)
        disk.allocate(8)
        with pytest.raises(DiskError, match="capacity"):
            disk.allocate(3)
        # The failed allocation must not move the allocation pointer.
        assert disk.allocated_pages == 8
        assert disk.allocate(2) == 8

    def test_unbounded_by_default(self):
        disk = SimulatedDisk()
        assert disk.allocate(10**9) == 0

    def test_negative_allocation_still_valueerror(self):
        with pytest.raises(ValueError):
            SimulatedDisk().allocate(-1)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            SimulatedDisk(capacity_pages=-1)


class TestIOCostResilienceCounters:
    def test_add_and_sub_round_trip(self):
        a = IOCost(seeks=2, transfers=5, retries=1, faults_seen=3)
        b = IOCost(seeks=1, transfers=1, retries=2, faults_seen=1)
        total = a + b
        assert total == IOCost(3, 6, 3, 4)
        assert total - b == a

    def test_scaled_carries_counters(self):
        assert IOCost(1, 2, 3, 4).scaled(2) == IOCost(2, 4, 6, 8)

    def test_repr_round_trips(self):
        cost = IOCost(seeks=7, transfers=9, retries=2, faults_seen=1)
        assert eval(repr(cost)) == cost  # noqa: S307 - controlled input

    def test_seconds_ignores_event_counters(self):
        assert IOCost(1, 1, 5, 5).seconds() == IOCost(1, 1).seconds()

    def test_is_zero_includes_counters(self):
        assert IOCost().is_zero
        assert not IOCost(retries=1).is_zero

    def test_negative_counters_rejected(self):
        with pytest.raises(ValueError):
            IOCost(retries=-1)


class TestCLIErrorMapping:
    def test_validation_error_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        bad = np.ones((50, 4))
        bad[0, 0] = np.nan
        path = tmp_path / "bad.npy"
        np.save(path, bad)
        code = main(["predict", "--input", str(path), "--queries", "3",
                     "--memory", "100"])
        assert code == 3
        err = capsys.readouterr().err
        assert "InputValidationError" in err
        assert "Traceback" not in err

    def test_fault_flags_accepted(self, capsys):
        from repro.cli import main

        assert main([
            "predict", "--dataset", "TEXTURE48", "--scale", "0.05",
            "--queries", "5", "--memory", "500",
            "--fault-rate", "0.02", "--fault-seed", "9",
        ]) == 0
        assert "predicted leaf accesses" in capsys.readouterr().out


class TestBudgetFaultInterplay:
    """Budget-triggered and fault-triggered downgrades in one chain."""

    @pytest.fixture
    def workload(self, clustered_points):
        return density_biased_knn_workload(
            clustered_points, 10, 5, np.random.default_rng(0)
        )

    def test_degradation_records_appear_in_causal_order(
        self, clustered_points, workload
    ):
        """Resampled dies on a fault, cutoff is refused by the budget,
        mini answers: the attempt log tells that story in order, each
        entry tagged with its cause."""
        from repro.runtime import Budget

        # 140 ops admits resampled (10 query reads + 125 pages + 1) but
        # what its aborted attempt burns before the torn write leaves
        # too little for cutoff's admission bound.
        predictor = IndexCostPredictor(
            dim=16, memory=400, c_data=32, c_dir=16,
            torn_write_rate=1.0, fault_seed=3,
        )
        with pytest.warns(DegradedResultWarning):
            result = predictor.predict(
                clustered_points, workload, method="resampled",
                budget=Budget(max_io_ops=140),
            )
        record = result.detail["degradation"]
        assert record["method_used"] == "mini"

        attempts = record["attempts"]
        assert [a["method"] for a in attempts] == ["resampled", "cutoff"]
        # First downgrade: a disk fault, after real spend.
        assert attempts[0]["cause"] == "fault"
        assert "TornWriteError" in attempts[0]["error"]
        assert not attempts[0].get("skipped")
        # Second downgrade: the governor refused admission up front.
        assert attempts[1]["cause"] == "budget"
        assert attempts[1]["skipped"]
        assert "BudgetExceededError" in attempts[1]["error"]

        # The spend report accounts for the aborted attempt's I/O and
        # attributes it to resampled's phases.
        report = result.detail["budget"]
        assert report["spent_io_ops"] > 0
        assert any(phase.startswith("resampled")
                   for phase in report["phase_spend"])
        assert report["exhausted"]["resource"] == "io_ops"

    def test_pure_budget_chain_orders_skips(
        self, clustered_points, workload
    ):
        """With no faults and a budget below every disk method's
        admission bound, the skips appear in fallback order."""
        from repro.runtime import Budget

        predictor = IndexCostPredictor(dim=16, memory=400,
                                       c_data=32, c_dir=16)
        with pytest.warns(DegradedResultWarning):
            result = predictor.predict(
                clustered_points, workload, method="resampled",
                budget=Budget(max_io_ops=5),
            )
        record = result.detail["degradation"]
        assert record["method_used"] == "mini"
        assert [a["method"] for a in record["attempts"]] == [
            "resampled", "cutoff"
        ]
        assert all(a["cause"] == "budget" and a["skipped"]
                   for a in record["attempts"])
        # Nothing was spent: admission beat abortion.
        assert result.detail["budget"]["spent_io_ops"] == 0
        assert result.detail["budget"]["within_budget"]
