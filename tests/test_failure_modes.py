"""Failure-injection and degenerate-input tests across the library.

A production system's behavior on hostile input matters as much as its
happy path: constant columns, duplicate-heavy data, NaN/inf
coordinates, single-point datasets, workloads larger than the data,
and memory budgets at the edge of feasibility.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.cutoff import CutoffModel
from repro.core.minindex import MiniIndexModel
from repro.core.predictor import IndexCostPredictor
from repro.core.resampled import ResampledModel
from repro.disk.device import SimulatedDisk
from repro.disk.pagefile import PointFile
from repro.ondisk.builder import OnDiskBuilder
from repro.rtree.rstar import RStarTree
from repro.rtree.tree import RTree
from repro.workload.queries import KNNWorkload, density_biased_knn_workload


def fresh_file(points):
    return PointFile.from_points(SimulatedDisk(), points)


class TestDegenerateData:
    def test_constant_column(self, rng):
        points = rng.random((500, 4))
        points[:, 2] = 0.5
        tree = RTree.bulk_load(points, 16, 8)
        tree.validate()
        result = tree.knn(points[0], 5)
        assert result.distances[0] == 0.0

    def test_all_identical_points(self):
        points = np.tile([1.0, 2.0], (300, 1))
        tree = RTree.bulk_load(points, 16, 8)
        tree.validate()
        result = tree.knn(np.array([1.0, 2.0]), 3)
        assert np.allclose(result.distances, 0.0)

    def test_all_identical_ondisk_build(self):
        points = np.tile([1.0, 2.0, 3.0], (500, 1))
        index = OnDiskBuilder(16, 8, memory=64).build(fresh_file(points))
        index.tree.validate()

    def test_one_dimensional_data(self, rng):
        points = np.sort(rng.random(300))[:, None]
        tree = RTree.bulk_load(points, 8, 4)
        tree.validate()
        workload = density_biased_knn_workload(
            points, 10, 5, np.random.default_rng(0)
        )
        estimate = MiniIndexModel(8, 4).predict(
            points, workload, 0.5, np.random.default_rng(1)
        )
        measured = tree.leaf_accesses_for_radius(
            workload.queries, workload.radii
        ).mean()
        assert abs(estimate.mean_accesses - measured) / measured < 0.5

    def test_two_points(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        tree = RTree.bulk_load(points, 8, 4)
        tree.validate()
        assert tree.knn(np.zeros(2), 2).point_ids.shape[0] == 2

    def test_duplicate_heavy_mixture(self, rng):
        base = rng.random((10, 3))
        points = base[rng.integers(0, 10, size=1000)]
        tree = RTree.bulk_load(points, 16, 8)
        tree.validate()
        rstar = RStarTree.build(points, 16, 8, shuffle_seed=0)
        rstar.validate()


class TestHostileInputs:
    def test_nan_rejected_by_workload(self):
        points = np.full((50, 2), np.nan)
        with pytest.raises(ValueError, match="finite"):
            density_biased_knn_workload(points, 5, 2,
                                        np.random.default_rng(0))

    def test_inf_rejected_by_workload(self):
        points = np.ones((50, 2))
        points[0, 0] = np.inf
        with pytest.raises(ValueError, match="finite"):
            density_biased_knn_workload(points, 50, 2,
                                        np.random.default_rng(0))

    def test_inf_coordinates_build_but_flag_in_radius(self):
        points = np.ones((100, 2))
        points[0, 0] = np.inf
        tree = RTree.bulk_load(points, 8, 4)
        # The MBR swallows the infinity; volume is inf, not NaN.
        assert np.isinf(tree.root.mbr.upper[0])

    def test_mismatched_workload_dimension(self, clustered_points):
        workload = KNNWorkload(
            k=1,
            query_ids=np.zeros(1, np.int64),
            queries=np.zeros((1, 3)),
            radii=np.ones(1),
        )
        predictor = IndexCostPredictor(dim=16, memory=400, c_data=32, c_dir=16)
        with pytest.raises((ValueError, IndexError)):
            predictor.predict(clustered_points, workload, method="mini",
                              sampling_fraction=0.5)


class TestEdgeBudgets:
    def test_workload_larger_than_dataset(self, rng):
        points = rng.random((30, 3))
        workload = density_biased_knn_workload(points, 100, 2, rng)
        estimate = MiniIndexModel(8, 4).predict(
            points, workload, 1.0, np.random.default_rng(0)
        )
        assert estimate.per_query.shape == (100,)

    def test_memory_of_one_point_phased(self, clustered_points, rng):
        workload = density_biased_knn_workload(
            clustered_points, 5, 2, np.random.default_rng(0)
        )
        model = CutoffModel(32, 16, memory=1)
        result = model.predict(fresh_file(clustered_points), workload,
                               np.random.default_rng(1))
        assert result.per_query.shape == (5,)

    def test_resampled_tiny_memory_survives(self, clustered_points):
        workload = density_biased_knn_workload(
            clustered_points, 5, 2, np.random.default_rng(0)
        )
        model = ResampledModel(32, 16, memory=8)
        result = model.predict(fresh_file(clustered_points), workload,
                               np.random.default_rng(1))
        # Heavily degraded but well-defined.
        assert np.all(result.per_query >= 0)

    def test_k_equals_n(self, rng):
        points = rng.random((40, 2))
        workload = density_biased_knn_workload(points, 3, 40, rng)
        tree = RTree.bulk_load(points, 8, 4)
        counts = tree.leaf_accesses_for_radius(workload.queries,
                                               workload.radii)
        assert np.all(counts == tree.n_leaves)

    def test_single_query(self, clustered_points):
        workload = density_biased_knn_workload(
            clustered_points, 1, 21, np.random.default_rng(0)
        )
        predictor = IndexCostPredictor(dim=16, memory=400, c_data=32,
                                       c_dir=16)
        result = predictor.predict(clustered_points, workload,
                                   method="resampled")
        assert result.per_query.shape == (1,)
