"""Tests for the LRU buffer pool."""

from __future__ import annotations

import numpy as np
import pytest

from repro.disk.accounting import IOCost
from repro.disk.bufferpool import BufferedDisk
from repro.disk.device import SimulatedDisk
from repro.disk.faults import FaultInjector
from repro.disk.pagefile import PointFile
from repro.disk.redundancy import RedundancyPolicy
from repro.disk.retry import RetryPolicy


@pytest.fixture
def pool():
    return BufferedDisk(SimulatedDisk(), capacity_pages=4)


class TestCaching:
    def test_first_read_misses(self, pool):
        cost = pool.read(0, 2)
        assert cost == IOCost(seeks=1, transfers=2)
        assert pool.misses == 2 and pool.hits == 0

    def test_repeat_read_hits(self, pool):
        pool.read(0, 2)
        cost = pool.read(0, 2)
        assert cost.is_zero
        assert pool.hits == 2

    def test_lru_eviction(self, pool):
        pool.read(0, 4)   # fills the pool with pages 0-3
        pool.read(10, 1)  # evicts page 0
        cost = pool.read(0, 1)
        assert cost.transfers == 1  # page 0 was evicted
        cost = pool.read(3, 1)
        assert cost.is_zero  # page 3 survived

    def test_recency_refresh(self, pool):
        pool.read(0, 4)
        pool.read(0, 1)   # refresh page 0
        pool.read(10, 1)  # evicts page 1 (now the oldest), not 0
        assert pool.read(0, 1).is_zero
        assert pool.read(1, 1).transfers == 1

    def test_partial_run_coalescing(self, pool):
        pool.read(1, 1)  # cache page 1
        cost = pool.read(0, 3)  # miss 0, hit 1, miss 2 -> two runs
        assert cost.transfers == 2
        assert cost.seeks == 2

    def test_zero_capacity_never_caches(self):
        pool = BufferedDisk(SimulatedDisk(), capacity_pages=0)
        pool.read(0, 2)
        cost = pool.read(0, 2)
        assert cost.transfers == 2
        assert pool.hit_rate == 0.0

    def test_write_through_populates(self, pool):
        write_cost = pool.write(5, 2)
        assert write_cost.transfers == 2
        assert pool.read(5, 2).is_zero

    def test_hit_rate(self, pool):
        pool.read(0, 2)
        pool.read(0, 2)
        assert pool.hit_rate == pytest.approx(0.5)

    def test_clear(self, pool):
        pool.read(0, 2)
        pool.clear()
        assert pool.hits == 0 and pool.misses == 0
        assert pool.read(0, 1).transfers == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BufferedDisk(SimulatedDisk(), capacity_pages=-1)
        pool = BufferedDisk(SimulatedDisk(), capacity_pages=2)
        with pytest.raises(ValueError):
            pool.read(-1, 1)
        with pytest.raises(ValueError):
            pool.write(0, -1)

    def test_underlying_ledger_matches(self, pool):
        pool.read(0, 3)
        pool.read(0, 3)
        pool.read(8, 1)
        assert pool.disk.cost.transfers == pool.misses


class TestInvalidation:
    def test_invalidate_evicts_the_run(self, pool):
        pool.read(0, 3)
        assert pool.read(1, 1).is_zero
        pool.invalidate(1, 1)
        assert pool.read(1, 1).transfers == 1  # miss: page was evicted
        assert pool.read(0, 1).is_zero         # neighbors untouched

    def test_invalidate_is_uncharged(self, pool):
        pool.read(0, 2)
        before = pool.disk.cost
        pool.invalidate(0, 2)
        assert pool.disk.cost == before

    def test_invalidate_of_uncached_pages_is_a_noop(self, pool):
        pool.invalidate(40, 3)  # nothing cached there; must not raise
        with pytest.raises(ValueError):
            pool.invalidate(-1, 1)


class TestStackingUnderPointFile:
    """The pool between a PointFile and the (fault-injecting) device."""

    def test_pointfile_reads_hit_the_pool(self):
        points = np.random.default_rng(0).random((300, 8))
        pool = BufferedDisk(SimulatedDisk(), capacity_pages=64)
        file = PointFile.from_points(pool, points, verify_checksums=True)
        file.read_range(0, file.n_points)
        cold = pool.disk.cost
        file.read_range(0, file.n_points)
        assert pool.disk.cost == cold  # fully cached: no physical I/O
        assert pool.hits > 0

    def test_atomic_write_invalidates_cached_pages(self):
        points = np.random.default_rng(0).random((300, 8))
        pool = BufferedDisk(SimulatedDisk(), capacity_pages=64)
        file = PointFile.from_points(pool, points, verify_checksums=True)
        file.read_range(0, file.n_points)  # warm the cache
        file.write_range_atomic(0, points[:file.points_per_page] + 1.0)
        misses_before = pool.misses
        file.read_range(0, file.points_per_page)
        assert pool.misses > misses_before  # rewritten page re-fetched

    def test_truncate_invalidates_dropped_pages(self):
        points = np.random.default_rng(0).random((300, 8))
        pool = BufferedDisk(SimulatedDisk(), capacity_pages=64)
        file = PointFile.from_points(pool, points, verify_checksums=True)
        file.read_range(0, file.n_points)
        dropped = file.start_page + 1
        assert dropped in pool._pages  # warmed by the full read
        file.truncate(file.points_per_page)  # drops page 1's contents
        assert dropped not in pool._pages
        assert file.start_page in pool._pages  # surviving page stays

    def test_repaired_page_is_never_served_stale(self):
        """The satellite regression: repair rewrites through the pool's
        invalidation hook, so the next read fetches the healed page."""
        points = np.random.default_rng(0).random((300, 8))
        injector = FaultInjector(SimulatedDisk(), seed=1)
        pool = BufferedDisk(injector, capacity_pages=64)
        file = PointFile.from_points(
            pool, points, retry=RetryPolicy(), verify_checksums=True,
            redundancy=RedundancyPolicy(replication_factor=2),
        )
        # Rot the primary page before anything is cached.
        injector.at_rest_corruption_rate = 1.0
        injector.read(file.start_page, 1)
        injector.at_rest_corruption_rate = 0.0
        assert injector.is_rotten(file.start_page)

        data = file.read_range(0, file.n_points)
        assert np.array_equal(data, points)
        assert file.redundancy.repairs == 1
        assert not injector.is_rotten(file.start_page)
        # The healed page was re-admitted on the repair write and is
        # clean on reread -- same bits, no second repair.
        again = file.read_range(0, file.n_points)
        assert np.array_equal(again, points)
        assert file.redundancy.repairs == 1

    def test_device_api_passthrough(self):
        injector = FaultInjector(SimulatedDisk(), seed=0)
        pool = BufferedDisk(injector, capacity_pages=4)
        assert pool.parameters is injector.parameters
        start = pool.allocate(3)
        assert pool.allocated_pages == injector.allocated_pages
        pool.read(start, 2)
        assert pool.cost == injector.cost
        assert pool.seconds() == injector.seconds()
        assert pool.is_rotten(start) is False
        assert pool.at_rest_flips(start, 2) == []
        assert pool.consume_corruption(start, 2) == []
        bare = BufferedDisk(SimulatedDisk(), capacity_pages=4)
        assert bare.consume_corruption(0, 1) == []  # bare disks: no-op
        assert bare.at_rest_flips(0, 1) == []
        assert bare.is_rotten(0) is False
