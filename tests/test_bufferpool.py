"""Tests for the LRU buffer pool."""

from __future__ import annotations

import pytest

from repro.disk.accounting import IOCost
from repro.disk.bufferpool import BufferedDisk
from repro.disk.device import SimulatedDisk


@pytest.fixture
def pool():
    return BufferedDisk(SimulatedDisk(), capacity_pages=4)


class TestCaching:
    def test_first_read_misses(self, pool):
        cost = pool.read(0, 2)
        assert cost == IOCost(seeks=1, transfers=2)
        assert pool.misses == 2 and pool.hits == 0

    def test_repeat_read_hits(self, pool):
        pool.read(0, 2)
        cost = pool.read(0, 2)
        assert cost.is_zero
        assert pool.hits == 2

    def test_lru_eviction(self, pool):
        pool.read(0, 4)   # fills the pool with pages 0-3
        pool.read(10, 1)  # evicts page 0
        cost = pool.read(0, 1)
        assert cost.transfers == 1  # page 0 was evicted
        cost = pool.read(3, 1)
        assert cost.is_zero  # page 3 survived

    def test_recency_refresh(self, pool):
        pool.read(0, 4)
        pool.read(0, 1)   # refresh page 0
        pool.read(10, 1)  # evicts page 1 (now the oldest), not 0
        assert pool.read(0, 1).is_zero
        assert pool.read(1, 1).transfers == 1

    def test_partial_run_coalescing(self, pool):
        pool.read(1, 1)  # cache page 1
        cost = pool.read(0, 3)  # miss 0, hit 1, miss 2 -> two runs
        assert cost.transfers == 2
        assert cost.seeks == 2

    def test_zero_capacity_never_caches(self):
        pool = BufferedDisk(SimulatedDisk(), capacity_pages=0)
        pool.read(0, 2)
        cost = pool.read(0, 2)
        assert cost.transfers == 2
        assert pool.hit_rate == 0.0

    def test_write_through_populates(self, pool):
        write_cost = pool.write(5, 2)
        assert write_cost.transfers == 2
        assert pool.read(5, 2).is_zero

    def test_hit_rate(self, pool):
        pool.read(0, 2)
        pool.read(0, 2)
        assert pool.hit_rate == pytest.approx(0.5)

    def test_clear(self, pool):
        pool.read(0, 2)
        pool.clear()
        assert pool.hits == 0 and pool.misses == 0
        assert pool.read(0, 1).transfers == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            BufferedDisk(SimulatedDisk(), capacity_pages=-1)
        pool = BufferedDisk(SimulatedDisk(), capacity_pages=2)
        with pytest.raises(ValueError):
            pool.read(-1, 1)
        with pytest.raises(ValueError):
            pool.write(0, -1)

    def test_underlying_ledger_matches(self, pool):
        pool.read(0, 3)
        pool.read(0, 3)
        pool.read(8, 1)
        assert pool.disk.cost.transfers == pool.misses
