"""Tests for the sharded prediction cluster.

Covers each layer in isolation and composed: the seeded similarity
partition, per-shard page-size tuning, the restartable replica wrapper
and its retired-op accounting, the failure-aware router (failover with
a causal record, stale-table tolerance, typed unavailability, degraded
closed-form fallback), anti-entropy artifact healing (peer adoption and
the every-copy-bad rebuild path), and the acceptance guarantees: a
single replica kill never fails a request for a shard with a healthy
peer, and a corrupt artifact heals bit-identically without refitting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    PredictionCluster,
    partition_workload,
    shard_tenant,
    tune_shard,
)
from repro.cluster.tuning import DEFAULT_TUNING_PAGE_SIZES
from repro.errors import InputValidationError
from repro.workload.queries import KNNWorkload, density_biased_knn_workload

N_PER_BLOB, DIM, MEMORY = 120, 4, 100


@pytest.fixture(scope="module")
def blob_data():
    """Two well-separated gaussian blobs: the partition has structure."""
    rng = np.random.default_rng(0)
    return np.vstack([
        rng.normal(0.0, 1.0, (N_PER_BLOB, DIM)),
        rng.normal(6.0, 0.5, (N_PER_BLOB, DIM)),
    ])


@pytest.fixture(scope="module")
def tuning_workload(blob_data):
    return density_biased_knn_workload(
        blob_data, 16, 4, np.random.default_rng(1)
    )


@pytest.fixture
def cluster(blob_data, tuning_workload, tmp_path):
    built = PredictionCluster(
        blob_data, tuning_workload, artifact_root=tmp_path,
        memory=MEMORY,
    )
    yield built
    built.stop()


class TestPartition:
    def test_deterministic_for_seed(self, tuning_workload):
        first = partition_workload(tuning_workload, 3, seed=7)
        again = partition_workload(tuning_workload, 3, seed=7)
        assert np.array_equal(first.centroids, again.centroids)
        assert np.array_equal(first.assignments, again.assignments)

    def test_every_shard_nonempty_on_fit(self, tuning_workload):
        for n_shards in (1, 2, 3, 5):
            part = partition_workload(tuning_workload, n_shards, seed=0)
            assert part.n_shards == n_shards
            assert set(np.unique(part.assignments)) == set(range(n_shards))

    def test_split_restores_original_order(self, tuning_workload):
        part = partition_workload(tuning_workload, 3, seed=0)
        pieces = part.split(tuning_workload)
        covered = np.concatenate([idx for _, idx, _ in pieces])
        assert sorted(covered.tolist()) == list(
            range(tuning_workload.n_queries)
        )
        for shard, idx, sub in pieces:
            assert np.array_equal(
                sub.queries, tuning_workload.queries[idx]
            )
            assert np.all(part.shard_of(sub.queries) == shard)

    def test_separated_blobs_split_cleanly(self, blob_data, tuning_workload):
        part = partition_workload(tuning_workload, 2, seed=0)
        shards = part.shard_of(blob_data)
        # each blob lands (almost) entirely in one shard
        first, second = shards[:N_PER_BLOB], shards[N_PER_BLOB:]
        assert np.mean(first == np.bincount(first).argmax()) > 0.95
        assert np.mean(second == np.bincount(second).argmax()) > 0.95

    def test_rejects_bad_shard_counts(self, tuning_workload):
        with pytest.raises(InputValidationError):
            partition_workload(tuning_workload, 0)
        with pytest.raises(InputValidationError):
            partition_workload(tuning_workload,
                               tuning_workload.n_queries + 1)

    def test_dimension_mismatch_is_typed(self, tuning_workload):
        part = partition_workload(tuning_workload, 2, seed=0)
        with pytest.raises(InputValidationError):
            part.shard_of(np.zeros((3, DIM + 1)))


class TestTuneShard:
    def test_config_comes_from_the_sweep(self, blob_data, tuning_workload):
        part = partition_workload(tuning_workload, 2, seed=0)
        config = tune_shard(
            0, blob_data, part.slice(tuning_workload, 0), memory=MEMORY
        )
        assert config.page_bytes in DEFAULT_TUNING_PAGE_SIZES
        assert config.disk.page_bytes == config.page_bytes
        assert config.predicted_seconds > 0
        assert config.n_tuning_queries > 0
        payload = config.as_dict()
        for key in ("shard", "page_bytes", "c_data", "c_dir",
                    "predicted_seconds"):
            assert key in payload


class TestReplica:
    def test_restart_serves_bit_identical_from_artifact(self, cluster):
        workload = cluster.make_workload(6, 4, seed=2)
        shard0 = cluster.partition.split(workload)[0][2]
        name = cluster.router.table.owners_of(0)[0]
        replica = cluster.replicas[name]
        before = replica.submit(0, shard0).result(10.0)
        replica.kill()
        assert replica.down and not replica.healthy()
        replica.restart()
        # the restarted generation warm-started from its own artifact
        # store: no refit, and answers are bit-identical
        assert replica.service.store.rebuilds() == 0
        after = replica.submit(0, shard0).result(10.0)
        assert np.array_equal(
            before.result.per_query, after.result.per_query
        )

    def test_kill_folds_charged_ops(self, cluster):
        workload = cluster._remap(
            0, cluster.partition.split(cluster.make_workload(6, 4))[0][2]
        )
        name = cluster.router.table.owners_of(0)[0]
        replica = cluster.replicas[name]
        charged = replica.submit(
            0, workload, method="cutoff"
        ).result(30.0)
        assert charged.io_ops > 0
        replica.kill()
        assert replica.charged_ops(0) == charged.io_ops
        replica.restart()
        assert replica.charged_ops(0) == charged.io_ops  # survives restart

    def test_kill_and_restart_are_idempotent(self, cluster):
        name = cluster.router.table.owners_of(0)[0]
        replica = cluster.replicas[name]
        replica.kill()
        replica.kill()
        assert replica.kills == 1
        replica.restart()
        replica.restart()
        assert replica.restarts == 1

    def test_submit_unowned_shard_is_typed(self, cluster):
        workload = cluster.make_workload(4, 4)
        for replica in cluster.replicas.values():
            missing = next(
                s for s in range(99) if s not in replica.shards()
            )
            with pytest.raises(InputValidationError):
                replica.submit(missing, workload)


class TestRouting:
    def test_primary_serves_when_healthy(self, cluster):
        workload = cluster.partition.split(cluster.make_workload(6, 4))[0][2]
        response = cluster.request(0, workload)
        assert response.status == "ok"
        assert response.served_by == cluster.router.table.owners_of(0)[0]
        assert response.failover_from is None

    def test_failover_carries_causal_record(self, cluster):
        workload = cluster.partition.split(cluster.make_workload(6, 4))[0][2]
        reference = cluster.request(0, workload)
        primary = cluster.router.table.owners_of(0)[0]
        cluster.kill_replica(primary)
        response = cluster.request(0, workload)
        assert response.status == "ok"
        assert response.served_by != primary
        assert response.failover_from == primary
        assert (primary, "down") in response.tried
        assert np.array_equal(
            response.result.per_query, reference.result.per_query
        )

    def test_stale_table_entry_is_skipped_not_fatal(self, cluster):
        table = cluster.router.table
        owners = {s: ("ghost",) + o for s, o in table.owners.items()}
        costs = {
            s: {"ghost": 0.0, **c} for s, c in table.costs.items()
        }
        cluster.router.install_table(
            type(table)(version=2, owners=owners, costs=costs)
        )
        workload = cluster.partition.split(cluster.make_workload(6, 4))[0][2]
        response = cluster.request(0, workload)
        assert response.status == "ok"
        assert ("ghost", "unknown") in response.tried
        assert response.routing_version == 2

    def test_all_owners_down_degrades_to_closed_form(self, cluster):
        workload = cluster.partition.split(cluster.make_workload(6, 4))[0][2]
        for name in cluster.router.table.owners_of(0):
            cluster.kill_replica(name)
        response = cluster.request(0, workload)
        assert response.status == "degraded"
        assert response.method_used == "closed_form"
        assert response.cause == "unavailable"
        assert response.result is not None
        assert np.all(np.isfinite(response.result.per_query))

    def test_all_owners_down_without_degrade_is_typed(self, cluster):
        workload = cluster.partition.split(cluster.make_workload(6, 4))[0][2]
        for name in cluster.router.table.owners_of(0):
            cluster.kill_replica(name)
        response = cluster.request(0, workload, degrade=False)
        assert response.status == "error"
        assert response.error_type == "ReplicaUnavailableError"
        assert len(response.tried) >= 2  # every owner accounted for

    def test_drain_reconciles_with_responses(self, cluster):
        workload = cluster._remap(
            0, cluster.partition.split(cluster.make_workload(6, 4))[0][2]
        )
        responses = [
            cluster.request(0, workload, method="cutoff", seed=i)
            for i in range(3)
        ]
        drained = cluster.router.drain()
        assert drained[0] == sum(r.charged_ops() for r in responses)
        assert drained[0] == cluster.charged_ops(0)


class TestAntiEntropy:
    def test_corrupt_copy_healed_from_peer_bit_identically(self, cluster):
        owners = cluster.router.table.owners_of(0)
        victim = owners[0]
        pristine = cluster.replicas[victim].artifact_path(0).read_bytes()
        cluster.corrupt_artifact(victim, 0)
        report = cluster.anti_entropy()
        assert report[0]["rebuilt"] is None
        assert report[0]["healed"] == [{
            "replica": victim, "via": f"peer:{owners[1]}",
            "reason": "checksum",
        }]
        healed = cluster.replicas[victim].artifact_path(0).read_bytes()
        assert healed == pristine
        assert all(
            r.service.store.rebuilds() == 0
            for r in cluster.replicas.values()
        )

    def test_missing_copy_healed_from_peer(self, cluster):
        owners = cluster.router.table.owners_of(0)
        victim = owners[0]
        pristine = cluster.replicas[victim].artifact_path(0).read_bytes()
        cluster.replicas[victim].artifact_path(0).unlink()
        report = cluster.anti_entropy()
        assert report[0]["healed"][0]["reason"] == "header"
        assert cluster.replicas[victim].artifact_path(0).read_bytes() \
            == pristine

    def test_every_copy_bad_rebuilds_once_then_propagates(self, cluster):
        owners = cluster.router.table.owners_of(0)
        pristine = cluster.replicas[owners[0]].artifact_path(0).read_bytes()
        for name in owners:
            cluster.corrupt_artifact(name, 0)
        report = cluster.anti_entropy()
        assert report[0]["rebuilt"] == owners[0]
        assert {e["replica"] for e in report[0]["healed"]} == set(owners)
        assert [e["via"] for e in report[0]["healed"]] == (
            ["rebuild"] + [f"peer:{owners[0]}"] * (len(owners) - 1)
        )
        rebuilds = sum(
            r.service.store.rebuilds() for r in cluster.replicas.values()
        )
        assert rebuilds == 1  # one fit-from-data, everyone else adopted
        # deterministic refit: the rebuilt artifact is the original one
        for name in owners:
            assert cluster.replicas[name].artifact_path(0).read_bytes() \
                == pristine

    def test_second_pass_on_healed_cluster_is_idempotent(self, cluster):
        """Anti-entropy must converge: a pass over a just-healed
        cluster verifies every copy and moves no bytes -- zero heals,
        zero adoptions, zero rebuilds."""
        victim = cluster.router.table.owners_of(0)[0]
        cluster.corrupt_artifact(victim, 0)
        first = cluster.anti_entropy()
        assert first[0]["healed"]

        def store_events():
            return {
                name: len(replica.service.store.events)
                for name, replica in cluster.replicas.items()
            }

        events_before = store_events()
        second = cluster.anti_entropy()
        for shard, entry in second.items():
            assert entry["healed"] == [], f"shard {shard} re-healed"
            assert entry["rebuilt"] is None
            assert set(entry["verified"]) == \
                set(cluster.router.table.owners_of(shard))
        # no store activity at all: verification reads, no copies
        assert store_events() == events_before
        assert all(
            r.service.store.rebuilds() == 0
            for r in cluster.replicas.values()
        )

    def test_serving_is_bit_identical_after_heal(self, cluster):
        workload = cluster.partition.split(cluster.make_workload(6, 4))[0][2]
        reference = cluster.request(0, workload)
        victim = cluster.router.table.owners_of(0)[0]
        cluster.corrupt_artifact(victim, 0)
        cluster.anti_entropy()
        healed = cluster.request(0, workload)
        assert healed.served_by == victim
        assert np.array_equal(
            reference.result.per_query, healed.result.per_query
        )


class TestPredictionCluster:
    def test_predict_merges_in_original_order(self, cluster):
        workload = cluster.make_workload(10, 4, seed=3)
        prediction = cluster.predict(workload)
        assert prediction.complete
        assert prediction.per_query.shape == (10,)
        # merged values agree with per-shard direct requests
        for shard, idx, sub in cluster.partition.split(workload):
            direct = cluster.request(shard, sub)
            assert np.array_equal(
                prediction.per_query[idx], direct.result.per_query
            )

    def test_full_method_predict_charges_io(self, cluster):
        workload = cluster.make_workload(8, 4, seed=4)
        prediction = cluster.predict(workload, method="cutoff")
        assert prediction.complete
        assert sum(r.charged_ops() for r in prediction.responses) > 0

    def test_foreign_query_ids_are_typed(self, cluster):
        foreign = KNNWorkload(
            k=4,
            query_ids=np.array([10 ** 6]),
            queries=cluster.data[:1],
            radii=np.array([0.5]),
        )
        with pytest.raises(InputValidationError):
            cluster.predict(foreign, method="cutoff")

    def test_any_single_kill_never_fails_a_request(self, cluster):
        """The acceptance criterion: replication 2 on 3 replicas means
        every shard keeps a healthy owner under any single kill."""
        workload = cluster.make_workload(10, 4, seed=5)
        reference = cluster.predict(workload)
        for name in sorted(cluster.replicas):
            cluster.kill_replica(name)
            prediction = cluster.predict(workload)
            assert prediction.complete
            assert all(r.status == "ok" for r in prediction.responses)
            assert np.array_equal(
                prediction.per_query, reference.per_query
            )
            cluster.restart_replica(name)

    def test_replication_one_leaves_no_failover(self, blob_data,
                                                tuning_workload, tmp_path):
        solo = PredictionCluster(
            blob_data, tuning_workload, artifact_root=tmp_path / "solo",
            replication=1, memory=MEMORY,
        )
        try:
            workload = solo.partition.split(solo.make_workload(6, 4))[0][2]
            solo.kill_replica(solo.router.table.owners_of(0)[0])
            response = solo.request(0, workload, degrade=False)
            assert response.status == "error"
            assert response.error_type == "ReplicaUnavailableError"
        finally:
            solo.stop()

    def test_rejects_bad_replication(self, blob_data, tuning_workload,
                                     tmp_path):
        with pytest.raises(InputValidationError):
            PredictionCluster(
                blob_data, tuning_workload, artifact_root=tmp_path,
                n_replicas=2, replication=3, memory=MEMORY,
            )

    def test_owners_are_bit_identical_peers(self, cluster):
        """Every owner of a shard holds byte-identical artifacts -- the
        precondition for both failover bit-identity and peer healing."""
        for shard in range(cluster.n_shards):
            owners = cluster.router.table.owners_of(shard)
            blobs = {
                cluster.replicas[name].artifact_path(shard).read_bytes()
                for name in owners
            }
            assert len(blobs) == 1

    def test_metrics_shape(self, cluster):
        metrics = cluster.metrics()
        assert metrics["n_shards"] == cluster.n_shards
        assert set(metrics["replicas"]) == set(cluster.replicas)
        assert metrics["table"]["version"] == 1
        for shard in range(cluster.n_shards):
            assert shard in metrics["shards"]

    def test_tenant_key_naming(self):
        assert shard_tenant(3) == "shard-3"
