"""Tests for the IndexCostPredictor facade and the experiments runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.predictor import IndexCostPredictor
from repro.disk.accounting import DiskParameters
from repro.experiments.runner import get_setup, pearson_correlation
from repro.experiments.tables import (
    format_seconds,
    format_signed_percent,
    format_table,
)


class TestFacade:
    @pytest.fixture(scope="class")
    def predictor(self):
        return IndexCostPredictor(dim=16, memory=400, c_data=32, c_dir=16)

    @pytest.fixture(scope="class")
    def workload(self, predictor, clustered_points):
        return predictor.make_workload(clustered_points, 20, 21, seed=4)

    def test_capacities_default_from_geometry(self):
        predictor = IndexCostPredictor(dim=60)
        assert (predictor.c_data, predictor.c_dir) == (34, 16)

    def test_capacity_override(self, predictor):
        assert predictor.c_data == 32 and predictor.c_dir == 16

    def test_all_methods_run(self, predictor, clustered_points, workload):
        for method in ("mini", "cutoff", "resampled"):
            result = predictor.predict(clustered_points, workload, method=method)
            assert result.mean_accesses > 0

    def test_unknown_method(self, predictor, clustered_points, workload):
        with pytest.raises(ValueError):
            predictor.predict(clustered_points, workload, method="psychic")

    def test_reproducible(self, predictor, clustered_points, workload):
        a = predictor.predict(clustered_points, workload, method="resampled",
                              seed=7)
        b = predictor.predict(clustered_points, workload, method="resampled",
                              seed=7)
        assert a.mean_accesses == b.mean_accesses

    def test_measure_ground_truth(self, predictor, clustered_points, workload):
        measurement = predictor.measure(clustered_points, workload)
        assert measurement.mean_accesses > 0
        assert measurement.io_cost.transfers > 0

    def test_predict_close_to_measure(self, predictor, clustered_points,
                                      workload):
        measurement = predictor.measure(clustered_points, workload)
        estimate = predictor.predict(clustered_points, workload,
                                     method="resampled")
        assert abs(estimate.relative_error(measurement.mean_accesses)) < 0.3

    def test_reuse_prebuilt_index(self, predictor, clustered_points, workload):
        index = predictor.build_ondisk(clustered_points)
        a = predictor.measure(clustered_points, workload, index=index)
        b = predictor.measure(clustered_points, workload, index=index)
        assert np.array_equal(a.per_query, b.per_query)

    def test_mini_with_fraction(self, predictor, clustered_points, workload):
        result = predictor.predict(
            clustered_points, workload, method="mini", sampling_fraction=0.5
        )
        assert result.detail["zeta"] == pytest.approx(0.5, abs=0.01)

    def test_predict_radius_grid_rows_match_per_row_predict(
        self, predictor, clustered_points, workload
    ):
        grid = np.stack([workload.radii * s for s in (0.5, 1.0, 1.5)])
        fused = predictor.predict_radius_grid(
            clustered_points, workload, grid, seed=3
        )
        assert len(fused) == 3
        for r, result in enumerate(fused):
            solo = predictor.predict(
                clustered_points, workload.with_radii(grid[r]),
                method="mini", seed=3,
            )
            np.testing.assert_array_equal(result.per_query, solo.per_query)
            assert result.detail["grid_row"] == r
            assert result.detail["grid_rows"] == 3

    def test_predict_radius_grid_broadcasts_scalars(
        self, predictor, clustered_points, workload
    ):
        fused = predictor.predict_radius_grid(
            clustered_points, workload, np.array([0.0, 0.4]), seed=3
        )
        # a (g,) grid broadcasts one radius per row; row 0 (radius 0)
        # only counts leaves containing the query point, so counts grow
        # monotonically with the row radius
        assert np.all(fused[1].per_query >= fused[0].per_query)
        solo = predictor.predict(
            clustered_points,
            workload.with_radii(np.full(workload.n_queries, 0.4)),
            method="mini", seed=3,
        )
        np.testing.assert_array_equal(fused[1].per_query, solo.per_query)

    def test_topology_accessor(self, predictor, clustered_points):
        topo = predictor.topology(clustered_points.shape[0])
        assert topo.n_points == clustered_points.shape[0]

    def test_custom_disk_parameters(self, clustered_points):
        predictor = IndexCostPredictor(
            dim=16, memory=400,
            disk_parameters=DiskParameters(page_bytes=4096),
        )
        assert predictor.c_data == 4096 // (16 * 4)


class TestExperimentsRunner:
    def test_setup_builds_consistent_context(self):
        setup = get_setup("TEXTURE48", scale=0.05, n_queries=10)
        assert setup.points.shape[1] == 48
        assert setup.workload.n_queries == 10
        assert setup.measured_mean > 0
        assert setup.build_cost.transfers > 0
        assert setup.ondisk_total_cost.transfers > setup.build_cost.transfers

    def test_setup_cached(self):
        a = get_setup("TEXTURE48", scale=0.05, n_queries=10)
        b = get_setup("TEXTURE48", scale=0.05, n_queries=10)
        assert a is b

    def test_pearson_perfect(self):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        assert pearson_correlation(x, 2 * x + 1) == pytest.approx(1.0)

    def test_pearson_inverse(self):
        x = np.array([1.0, 2.0, 3.0])
        assert pearson_correlation(x, -x) == pytest.approx(-1.0)

    def test_pearson_constant_series(self):
        assert pearson_correlation(np.ones(5), np.arange(5.0)) == 0.0

    def test_pearson_validation(self):
        with pytest.raises(ValueError):
            pearson_correlation(np.ones(2), np.ones(3))


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table_title(self):
        text = format_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_format_seconds(self):
        assert format_seconds(4460.1934) == "4,460.193 s"

    def test_format_signed_percent(self):
        assert format_signed_percent(-0.32) == "-32%"
        assert format_signed_percent(0.03) == "+3%"
