"""Tests for Theorem 1's compensation factor, including a Monte-Carlo
validation of the theorem itself."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compensation import (
    compensation_side_factor,
    compensation_volume_factor,
    grow_corners,
    volume_shrinkage,
)


class TestFormula:
    def test_matches_printed_theorem(self):
        # delta^-1 = (((C z - 1)(C + 1)) / ((C z + 1)(C - 1)))^d
        c, z, d = 40.0, 0.25, 6
        expected_inverse = (((c * z - 1) * (c + 1)) / ((c * z + 1) * (c - 1))) ** d
        assert volume_shrinkage(c, z, d) == pytest.approx(expected_inverse)
        assert compensation_volume_factor(c, z, d) == pytest.approx(
            1.0 / expected_inverse
        )

    def test_no_sampling_is_identity(self):
        assert compensation_side_factor(32, 1.0) == pytest.approx(1.0)
        assert compensation_volume_factor(32, 1.0, 10) == pytest.approx(1.0)

    def test_side_factor_always_grows(self):
        for zeta in (0.1, 0.3, 0.7, 0.99):
            assert compensation_side_factor(32, zeta) > 1.0

    def test_monotone_in_zeta(self):
        factors = [compensation_side_factor(32, z) for z in (0.1, 0.2, 0.5, 0.9)]
        assert all(a > b for a, b in zip(factors, factors[1:]))

    def test_volume_is_side_to_the_d(self):
        side = compensation_side_factor(50, 0.2)
        assert compensation_volume_factor(50, 0.2, 7) == pytest.approx(side**7)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            compensation_side_factor(1.0, 0.5)  # capacity must exceed 1
        with pytest.raises(ValueError):
            compensation_side_factor(32, 0.0)
        with pytest.raises(ValueError):
            compensation_side_factor(32, 1.5)
        with pytest.raises(ValueError):
            compensation_side_factor(32, 1 / 32)  # C * zeta <= 1
        with pytest.raises(ValueError):
            compensation_volume_factor(32, 0.5, 0)

    @given(st.floats(2.5, 500.0), st.floats(0.01, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_side_factor_at_least_one(self, capacity, zeta):
        if capacity * zeta <= 1.5:
            return
        assert compensation_side_factor(capacity, zeta) >= 1.0 - 1e-12


class TestTheoremMonteCarlo:
    """Empirically verify Theorem 1: sample C uniform points, keep a
    zeta fraction, compare the measured extent ratio with the formula's
    per-side prediction."""

    @pytest.mark.parametrize("capacity,zeta", [(64, 0.5), (100, 0.25), (200, 0.1)])
    def test_expected_extent_ratio(self, capacity, zeta):
        gen = np.random.default_rng(42)
        trials = 3000
        full = gen.random((trials, capacity))
        kept = full[:, : max(2, round(capacity * zeta))]
        full_extent = np.mean(full.max(axis=1) - full.min(axis=1))
        kept_extent = np.mean(kept.max(axis=1) - kept.min(axis=1))
        measured_growth = full_extent / kept_extent
        predicted_growth = compensation_side_factor(capacity, zeta)
        assert measured_growth == pytest.approx(predicted_growth, rel=0.02)

    def test_expected_extent_formula(self):
        # E[extent of n uniform points in [0,1]] = (n-1)/(n+1), the
        # identity Theorem 1 is built on.
        gen = np.random.default_rng(7)
        for n in (3, 10, 50):
            samples = gen.random((5000, n))
            measured = np.mean(samples.max(axis=1) - samples.min(axis=1))
            assert measured == pytest.approx((n - 1) / (n + 1), rel=0.02)


class TestGrowCorners:
    def test_centers_preserved(self, rng):
        lower = rng.random((10, 4))
        upper = lower + rng.random((10, 4))
        grown_lower, grown_upper = grow_corners(lower, upper, 32, 0.25)
        assert np.allclose((grown_lower + grown_upper) / 2, (lower + upper) / 2)

    def test_extents_scaled_by_side_factor(self, rng):
        lower = rng.random((5, 3))
        upper = lower + rng.random((5, 3))
        grown_lower, grown_upper = grow_corners(lower, upper, 32, 0.25)
        factor = compensation_side_factor(32, 0.25)
        assert np.allclose(grown_upper - grown_lower, (upper - lower) * factor)

    def test_degenerate_boxes_stay_degenerate(self):
        point = np.array([[1.0, 2.0]])
        grown_lower, grown_upper = grow_corners(point, point, 32, 0.5)
        assert np.allclose(grown_lower, point)
        assert np.allclose(grown_upper, point)

    def test_volume_scaled_by_delta(self, rng):
        lower = np.zeros((1, 5))
        upper = np.ones((1, 5))
        grown_lower, grown_upper = grow_corners(lower, upper, 40, 0.3)
        volume = np.prod(grown_upper - grown_lower)
        assert volume == pytest.approx(compensation_volume_factor(40, 0.3, 5))
