"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main

FAST = ["--dataset", "TEXTURE48", "--scale", "0.05", "--queries", "10",
        "--memory", "500"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_dataset_and_input_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["predict", "--dataset", "A", "--input", "b.npy"]
            )


class TestPredict:
    def test_default_method(self, capsys):
        assert main(["predict", *FAST]) == 0
        out = capsys.readouterr().out
        assert "predicted leaf accesses per query" in out
        assert "resampled" in out or "sigma_lower" in out

    @pytest.mark.parametrize("method", ["mini", "cutoff", "resampled"])
    def test_all_methods(self, method, capsys):
        assert main(["predict", *FAST, "--method", method]) == 0
        assert "predicted leaf accesses" in capsys.readouterr().out

    def test_mini_with_fraction(self, capsys):
        assert main(
            ["predict", *FAST, "--method", "mini", "--fraction", "0.5"]
        ) == 0
        assert "'zeta': 0.5" in capsys.readouterr().out

    def test_npy_input(self, tmp_path, capsys):
        points = np.random.default_rng(0).random((500, 8))
        path = tmp_path / "pts.npy"
        np.save(path, points)
        assert main(
            ["predict", "--input", str(path), "--queries", "5",
             "--memory", "200"]
        ) == 0
        assert "500 x 8-d" in capsys.readouterr().out

    def test_bad_npy_shape(self, tmp_path):
        path = tmp_path / "bad.npy"
        np.save(path, np.zeros(10))
        with pytest.raises(SystemExit):
            main(["predict", "--input", str(path)])


class TestOtherCommands:
    def test_measure(self, capsys):
        assert main(["measure", *FAST]) == 0
        out = capsys.readouterr().out
        assert "measured leaf accesses per query" in out
        assert "build I/O" in out

    def test_compare(self, capsys):
        assert main(["compare", *FAST]) == 0
        out = capsys.readouterr().out
        assert "uniform" in out and "resampled" in out and "measured" in out

    def test_tune_pagesize(self, capsys):
        assert main(["tune-pagesize", *FAST]) == 0
        assert "predicted optimum" in capsys.readouterr().out

    def test_costs(self, capsys):
        assert main(
            ["costs", "--n", "100000", "--dim", "32", "--memory", "5000"]
        ) == 0
        out = capsys.readouterr().out
        assert "on-disk build" in out and "cutoff" in out


class TestDurabilityFlags:
    def test_parser_accepts_durability_flags(self):
        args = build_parser().parse_args(
            ["predict", "--corruption-rate", "0.1", "--verify-checksums",
             "--crash-at", "7"]
        )
        assert args.corruption_rate == 0.1
        assert args.verify_checksums is True
        assert args.crash_at == 7

    def test_verify_checksums_clean_run(self, capsys):
        assert main(["predict", *FAST, "--verify-checksums"]) == 0
        assert "predicted leaf accesses" in capsys.readouterr().out

    def test_corruption_survived_with_checksums(self, capsys):
        # Moderate corruption is absorbed by checksum-verify + retry.
        assert main(
            ["predict", *FAST, "--corruption-rate", "0.05",
             "--verify-checksums"]
        ) == 0
        assert "predicted leaf accesses" in capsys.readouterr().out


class TestExitCodeTable:
    """The centralized table in ``errors.EXIT_CODES`` is the single
    source of truth: complete over the exported hierarchy, unambiguous,
    and what both the CLI resolver and the --help epilog consume."""

    def test_every_exported_error_has_exactly_one_code(self):
        import repro.errors as errors_mod

        exported = [
            getattr(errors_mod, name) for name in errors_mod.__all__
        ]
        classes = [
            cls for cls in exported
            if isinstance(cls, type)
            and issubclass(cls, errors_mod.ReproError)
        ]
        assert len(classes) >= 17
        registered = [cls for cls, _, _ in errors_mod.EXIT_CODES]
        # no class appears twice, no code is shared between entries
        assert len(registered) == len(set(registered))
        codes = [code for _, code, _ in errors_mod.EXIT_CODES]
        assert len(codes) == len(set(codes))
        # every registered class is part of the exported hierarchy
        assert set(registered) <= set(classes)
        for cls in classes:
            code = errors_mod.exit_code_for(cls)
            assert isinstance(code, int) and 3 <= code <= 19, (
                f"{cls.__name__} resolves to no usable exit code"
            )
            # most-specific-first actually holds: the resolved code is
            # the first subclass match, and a class with its own row
            # resolves to that row (never shadowed by a parent above it)
            expected = next(
                c for k, c, _ in errors_mod.EXIT_CODES
                if issubclass(cls, k)
            )
            assert code == expected

    def test_cli_resolver_delegates_to_the_table(self):
        from repro.cli import _exit_code
        from repro.errors import (
            EXIT_CODES,
            CircuitOpenError,
            exit_code_for,
        )

        for cls, code, _description in EXIT_CODES:
            error = cls.__new__(cls)
            assert _exit_code(error) == exit_code_for(error) == code
        # the breaker has no row of its own: it resolves via DiskError
        breaker = CircuitOpenError.__new__(CircuitOpenError)
        assert _exit_code(breaker) == 6

    def test_help_epilog_is_generated_from_the_table(self):
        from repro.cli import _EXIT_CODE_HELP
        from repro.errors import EXIT_CODES

        for _cls, code, description in EXIT_CODES:
            assert f"\n  {code:<3}" in _EXIT_CODE_HELP
            assert description.split(":")[0].split("(")[0].strip() \
                in _EXIT_CODE_HELP
        for code in (0, 2, 130):
            assert f"\n  {code:<3}" in _EXIT_CODE_HELP


class TestFailureExitCodes:
    def test_crash_point_exits_10(self, capsys):
        code = main(["predict", *FAST, "--crash-at", "1"])
        assert code == 10
        err = capsys.readouterr().err
        assert "CrashPoint" in err

    def test_crash_point_exits_10_on_measure(self, capsys):
        assert main(["measure", *FAST, "--crash-at", "1"]) == 10
        assert "CrashPoint" in capsys.readouterr().err

    def test_checksum_error_exits_9(self, capsys):
        # measure has no degradation chain, so an unrecoverable
        # checksum failure (every read corrupted) surfaces directly
        code = main(
            ["measure", *FAST, "--corruption-rate", "1.0",
             "--verify-checksums"]
        )
        assert code == 9
        assert "ChecksumError" in capsys.readouterr().err

    def test_invalid_rate_exits_3(self, capsys):
        assert main(["predict", *FAST, "--corruption-rate", "1.5"]) == 3
        assert "InputValidationError" in capsys.readouterr().err

    def test_invalid_crash_at_exits_3(self, capsys):
        assert main(["predict", *FAST, "--crash-at", "0"]) == 3
        assert "InputValidationError" in capsys.readouterr().err


class TestBudgetFlags:
    def test_budget_exhaustion_exits_11_in_strict_mode(self, capsys):
        code = main(["predict", *FAST, "--max-io-ops", "10",
                     "--strict-budget"])
        assert code == 11
        assert "BudgetExceededError" in capsys.readouterr().err

    def test_deadline_exits_12_in_strict_mode(self, capsys):
        code = main(["predict", *FAST, "--deadline-s", "0.000001",
                     "--strict-budget"])
        assert code == 12
        assert "DeadlineExceededError" in capsys.readouterr().err

    def test_tight_budget_degrades_to_zero_by_default(self, capsys):
        # Without --strict-budget a blown budget is an anytime answer,
        # not an error: exit 0 and a spend report on stdout.
        with pytest.warns(Warning):
            assert main(["predict", *FAST, "--max-io-ops", "10"]) == 0
        out = capsys.readouterr().out
        assert "within budget" in out

    def test_ample_budget_reports_spend(self, capsys):
        assert main(["predict", *FAST, "--max-io-ops", "1000000"]) == 0
        out = capsys.readouterr().out
        assert "budget:" in out
        assert "within budget: True" in out

    def test_hedge_requires_deadline(self, capsys):
        assert main(["predict", *FAST, "--hedge"]) == 3
        assert "InputValidationError" in capsys.readouterr().err

    def test_hedge_reports_winner(self, capsys):
        code = main(["predict", *FAST, "--deadline-s", "60", "--hedge"])
        assert code == 0
        assert "path answered" in capsys.readouterr().out

    def test_invalid_budget_values_exit_3(self, capsys):
        assert main(["predict", *FAST, "--max-io-ops", "-5"]) == 3
        assert "InputValidationError" in capsys.readouterr().err


class TestSelfHealingFlags:
    def test_parser_accepts_redundancy_flags(self):
        args = build_parser().parse_args(
            ["predict", "--at-rest-rate", "0.1",
             "--replication-factor", "3", "--parity", "--scrub"]
        )
        assert args.at_rest_rate == 0.1
        assert args.replication_factor == 3
        assert args.parity is True
        assert args.scrub is True

    def test_rot_healed_by_replication(self, capsys):
        assert main(
            ["predict", *FAST, "--at-rest-rate", "0.05",
             "--replication-factor", "2", "--parity"]
        ) == 0
        assert "redundancy: 2-way + parity" in capsys.readouterr().out

    def test_scrub_report_printed_after_predict(self, capsys):
        assert main(
            ["predict", *FAST, "--at-rest-rate", "0.05",
             "--replication-factor", "2", "--parity", "--scrub"]
        ) == 0
        assert "scrub:" in capsys.readouterr().out

    def test_unreplicated_rot_exits_13_without_degradation(self, capsys):
        # --strict-budget disables the degradation chain, so the
        # non-retryable media error surfaces with its own exit code.
        code = main(
            ["predict", *FAST, "--at-rest-rate", "0.9",
             "--verify-checksums", "--strict-budget"]
        )
        assert code == 13
        assert "UnrecoverableCorruptionError" in capsys.readouterr().err

    def test_unreplicated_rot_degrades_to_zero_by_default(self, capsys):
        with pytest.warns(Warning):
            assert main(
                ["predict", *FAST, "--at-rest-rate", "0.9",
                 "--verify-checksums"]
            ) == 0
        assert "resilience:" in capsys.readouterr().out

    def test_invalid_replication_factor_exits_3(self, capsys):
        assert main(["predict", *FAST, "--replication-factor", "0"]) == 3
        assert "InputValidationError" in capsys.readouterr().err


class TestScrubCommand:
    def test_clean_scrub(self, capsys):
        assert main(["scrub", *FAST]) == 0
        out = capsys.readouterr().out
        assert "pages scanned" in out
        assert "scrub I/O" in out

    def test_scrub_repairs_with_redundancy(self, capsys):
        assert main(
            ["scrub", *FAST, "--at-rest-rate", "0.1",
             "--replication-factor", "2", "--parity",
             "--fault-seed", "1", "--strict"]
        ) == 0
        assert "repaired" in capsys.readouterr().out

    def test_strict_scrub_exits_13_on_unrecoverable_rot(self, capsys):
        code = main(["scrub", *FAST, "--at-rest-rate", "0.9", "--strict"])
        assert code == 13
        captured = capsys.readouterr()
        assert "UNRECOVERABLE" in captured.out
        assert "unrecoverable under --strict" in captured.err

    def test_unstrict_scrub_inventories_without_failing(self, capsys):
        assert main(["scrub", *FAST, "--at-rest-rate", "0.9"]) == 0
        assert "UNRECOVERABLE" in capsys.readouterr().out


class TestClusterCommand:
    def test_parser_accepts_cluster_flags(self):
        args = build_parser().parse_args(
            ["cluster", "--shards", "3", "--replicas", "4",
             "--replication", "2", "--chaos", "--double-kill"]
        )
        assert args.shards == 3
        assert args.replicas == 4
        assert args.replication == 2
        assert args.chaos is True
        assert args.double_kill is True

    def test_parser_accepts_loadtest_replicas(self):
        args = build_parser().parse_args(
            ["loadtest", "--replicas", "3", "--shards", "2",
             "--duration", "0.5"]
        )
        assert args.replicas == 3
        assert args.shards == 2

    def test_cluster_demo_walkthrough(self, capsys):
        assert main(
            ["cluster", "--scale", "0.005", "--queries", "8",
             "--memory", "200"]
        ) == 0
        out = capsys.readouterr().out
        assert "owners (cheapest first)" in out
        assert "answers bit-identical: True" in out
        assert "anti-entropy healed" in out
        assert "data rebuild: None" in out

    def test_replica_unavailable_maps_to_18(self):
        from repro.cli import _exit_code
        from repro.errors import ReplicaUnavailableError

        error = ReplicaUnavailableError(0, [("replica-0", "down")])
        assert _exit_code(error) == 18

    def test_parser_accepts_elasticity_flags(self):
        args = build_parser().parse_args(
            ["cluster", "--scale-out", "2", "--scale-in",
             "--split-when", "2.5", "--chaos", "--scale-events"]
        )
        assert args.scale_out == 2
        assert args.scale_in is True
        assert args.split_when == 2.5
        assert args.scale_events is True

    def test_stale_routing_epoch_maps_to_19(self):
        from repro.cli import _exit_code
        from repro.errors import StaleRoutingEpochError

        error = StaleRoutingEpochError(0, 1, 2)
        assert _exit_code(error) == 19

    def test_parser_accepts_controller_flags(self):
        args = build_parser().parse_args(
            ["cluster", "--controller", "--merge-when", "2.5",
             "--dwell-epochs", "2"]
        )
        assert args.controller is True
        assert args.merge_when == 2.5
        assert args.dwell_epochs == 2
        # and the defaults keep the hysteresis band open
        defaults = build_parser().parse_args(["cluster"])
        assert defaults.merge_when < defaults.split_when

    def test_cluster_walkthrough_covers_controller(self, capsys):
        assert main(
            ["cluster", "--scale", "0.005", "--queries", "8",
             "--memory", "200", "--shards", "3",
             "--controller", "--merge-when", "2.5",
             "--dwell-epochs", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "controller tick 1:" in out
        assert "flaps 0" in out

    def test_cluster_walkthrough_covers_elasticity(self, capsys):
        assert main(
            ["cluster", "--scale", "0.005", "--queries", "8",
             "--memory", "200", "--scale-out", "1", "--scale-in"]
        ) == 0
        out = capsys.readouterr().out
        assert "scaled out replica-" in out
        assert "0 refits" in out
        assert "stale router refused with exit-19 class" in out
        assert "scaled in replica-" in out


class TestServeInterrupt:
    def test_sigterm_drains_and_exits_130(self, capsys, monkeypatch):
        """A signal mid-session takes the graceful path: stop() drains
        the queue with typed shutdown responses, the books are printed,
        and the exit code is 130 -- never a raw traceback."""
        import os
        import signal
        import threading

        from repro.service import server as server_module

        original_start = server_module.PredictionService.start

        def start_then_interrupt(self):
            original_start(self)
            threading.Timer(
                0.05, lambda: os.kill(os.getpid(), signal.SIGTERM)
            ).start()

        monkeypatch.setattr(
            server_module.PredictionService, "start", start_then_interrupt
        )
        code = main(
            ["serve", *FAST, "--tenants", "2", "--requests", "200",
             "--max-inflight", "256", "--max-queue", "256",
             "--method", "resampled"]
        )
        captured = capsys.readouterr()
        assert code == 130
        assert "interrupted: graceful stop drained" in captured.err
        assert "serving session" in captured.out  # books still printed


class TestVersionAndHelp:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_help_lists_exit_codes(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for code in ("3 ", "10 ", "11 ", "12 ", "13 ", "19 "):
            assert code in out
        assert "resource budget exhausted" in out
        assert "deadline exceeded" in out
        assert "unrecoverable at-rest corruption" in out
        assert "stale routing epoch" in out
