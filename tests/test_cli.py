"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main

FAST = ["--dataset", "TEXTURE48", "--scale", "0.05", "--queries", "10",
        "--memory", "500"]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_dataset_and_input_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["predict", "--dataset", "A", "--input", "b.npy"]
            )


class TestPredict:
    def test_default_method(self, capsys):
        assert main(["predict", *FAST]) == 0
        out = capsys.readouterr().out
        assert "predicted leaf accesses per query" in out
        assert "resampled" in out or "sigma_lower" in out

    @pytest.mark.parametrize("method", ["mini", "cutoff", "resampled"])
    def test_all_methods(self, method, capsys):
        assert main(["predict", *FAST, "--method", method]) == 0
        assert "predicted leaf accesses" in capsys.readouterr().out

    def test_mini_with_fraction(self, capsys):
        assert main(
            ["predict", *FAST, "--method", "mini", "--fraction", "0.5"]
        ) == 0
        assert "'zeta': 0.5" in capsys.readouterr().out

    def test_npy_input(self, tmp_path, capsys):
        points = np.random.default_rng(0).random((500, 8))
        path = tmp_path / "pts.npy"
        np.save(path, points)
        assert main(
            ["predict", "--input", str(path), "--queries", "5",
             "--memory", "200"]
        ) == 0
        assert "500 x 8-d" in capsys.readouterr().out

    def test_bad_npy_shape(self, tmp_path):
        path = tmp_path / "bad.npy"
        np.save(path, np.zeros(10))
        with pytest.raises(SystemExit):
            main(["predict", "--input", str(path)])


class TestOtherCommands:
    def test_measure(self, capsys):
        assert main(["measure", *FAST]) == 0
        out = capsys.readouterr().out
        assert "measured leaf accesses per query" in out
        assert "build I/O" in out

    def test_compare(self, capsys):
        assert main(["compare", *FAST]) == 0
        out = capsys.readouterr().out
        assert "uniform" in out and "resampled" in out and "measured" in out

    def test_tune_pagesize(self, capsys):
        assert main(["tune-pagesize", *FAST]) == 0
        assert "predicted optimum" in capsys.readouterr().out

    def test_costs(self, capsys):
        assert main(
            ["costs", "--n", "100000", "--dim", "32", "--memory", "5000"]
        ) == 0
        out = capsys.readouterr().out
        assert "on-disk build" in out and "cutoff" in out
