"""Cross-module property-based tests (hypothesis).

The suite's other files test modules in isolation; these properties tie
the system together over randomized configurations: the structural
identity between full index and mini-index, the optimal-search /
intersection-count equivalence across page geometries, compensation
round-trips, and conservation laws of the resampling pipeline.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compensation import (
    compensation_side_factor,
    grow_corners,
)
from repro.core.counting import knn_accesses_per_query
from repro.core.topology import Topology
from repro.disk.accounting import IOCost
from repro.disk.bufferpool import BufferedDisk
from repro.disk.device import SimulatedDisk
from repro.disk.faults import FaultInjector
from repro.disk.journal import WriteAheadJournal
from repro.disk.pagefile import PointFile
from repro.disk.retry import RetryPolicy
from repro.errors import CrashPoint
from repro.rtree.geometry import grow_centered
from repro.rtree.kdb import KDBTree
from repro.rtree.sstree import SSTree
from repro.rtree.tree import RTree
from repro.workload.queries import KNNWorkload, exact_knn_radii


class TestStructuralIdentity:
    @given(
        st.integers(100, 2000),
        st.floats(0.08, 1.0),
        st.integers(4, 32),
        st.integers(3, 12),
        st.integers(0, 10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_mini_index_node_counts(self, n, zeta, c_data, c_dir, seed):
        """Any sample, any capacities: the mini-index reproduces the
        full topology's node counts at every level."""
        gen = np.random.default_rng(seed)
        points = gen.random((n, 3))
        m = max(1, round(n * zeta))
        sample = points[gen.choice(n, m, replace=False)]
        mini = RTree.bulk_load(sample, c_data, c_dir, virtual_n=n)
        topology = Topology(n, c_data, c_dir)
        for level in range(1, topology.height + 1):
            assert (
                len(mini.nodes_at_level(level))
                == topology.nodes_at_level(level)
            )

    @given(st.integers(50, 800), st.integers(0, 5000))
    @settings(max_examples=20, deadline=None)
    def test_kdb_mini_page_count(self, n, seed):
        gen = np.random.default_rng(seed)
        points = gen.random((n, 3))
        full = KDBTree.bulk_load(points, c_data=9)
        m = max(1, n // 4)
        sample = points[gen.choice(n, m, replace=False)]
        mini = KDBTree.bulk_load(
            sample, c_data=9, virtual_n=n,
            region=(points.min(axis=0), points.max(axis=0)),
        )
        assert mini.n_leaves == full.n_leaves


class TestOptimalSearchEquivalence:
    @given(st.integers(1, 30), st.integers(2, 6), st.integers(0, 5000))
    @settings(max_examples=25, deadline=None)
    def test_box_tree(self, k, d, seed):
        gen = np.random.default_rng(seed)
        points = gen.random((300, d))
        tree = RTree.bulk_load(points, 12, 4)
        query = points[int(gen.integers(300))]
        result = tree.knn(query, k)
        assert result.leaf_accesses == tree.count_leaves_intersecting_sphere(
            query, result.radius
        )

    @given(st.integers(1, 20), st.integers(0, 5000))
    @settings(max_examples=15, deadline=None)
    def test_sphere_tree(self, k, seed):
        gen = np.random.default_rng(seed)
        points = gen.random((300, 4))
        tree = SSTree.bulk_load(points, 12, 4)
        query = points[int(gen.integers(300))]
        result = tree.knn(query, k)
        counted = tree.leaf_accesses_for_radius(
            query[None, :], np.array([result.radius])
        )
        assert result.leaf_accesses == counted[0]

    @given(st.integers(1, 20), st.integers(0, 5000))
    @settings(max_examples=15, deadline=None)
    def test_kdb_tree(self, k, seed):
        gen = np.random.default_rng(seed)
        points = gen.random((300, 4))
        tree = KDBTree.bulk_load(points, 12)
        query = points[int(gen.integers(300))]
        result = tree.knn(query, k)
        counted = tree.leaf_accesses_for_radius(
            query[None, :], np.array([result.radius])
        )
        assert result.leaf_accesses == counted[0]


class TestCompensationProperties:
    @given(
        st.floats(2.5, 300.0),
        st.floats(0.05, 0.99),
        st.integers(1, 32),
        st.integers(0, 1000),
    )
    @settings(max_examples=50, deadline=None)
    def test_grow_shrink_roundtrip(self, capacity, zeta, d, seed):
        if capacity * zeta <= 1.2:
            return
        gen = np.random.default_rng(seed)
        lower = gen.random((5, d))
        upper = lower + gen.random((5, d))
        grown_lower, grown_upper = grow_corners(lower, upper, capacity, zeta)
        factor = compensation_side_factor(capacity, zeta)
        back_lower, back_upper = grow_centered(
            grown_lower, grown_upper, 1.0 / factor
        )
        assert np.allclose(back_lower, lower, atol=1e-9)
        assert np.allclose(back_upper, upper, atol=1e-9)

    @given(st.floats(3.0, 200.0), st.floats(0.05, 0.95))
    @settings(max_examples=50, deadline=None)
    def test_growth_never_reduces_counts(self, capacity, zeta):
        if capacity * zeta <= 1.2:
            return
        gen = np.random.default_rng(7)
        lower = gen.random((40, 4))
        upper = lower + gen.random((40, 4)) * 0.2
        queries = gen.random((10, 4))
        radii = np.full(10, 0.3)
        workload = KNNWorkload(
            k=1,
            query_ids=np.zeros(10, np.int64),
            queries=queries,
            radii=radii,
        )
        raw = knn_accesses_per_query(lower, upper, workload)
        grown = knn_accesses_per_query(
            *grow_corners(lower, upper, capacity, zeta), workload
        )
        assert np.all(grown >= raw)


class TestWorkloadProperties:
    @given(st.integers(2, 200), st.integers(1, 6), st.integers(0, 5000))
    @settings(max_examples=25, deadline=None)
    def test_radii_monotone_in_k(self, n, d, seed):
        gen = np.random.default_rng(seed)
        points = gen.random((n, d))
        queries = points[:3]
        ks = [1, max(1, n // 2), n]
        radii = [exact_knn_radii(points, queries, k) for k in ks]
        for a, b in zip(radii, radii[1:]):
            assert np.all(a <= b + 1e-12)

    @given(st.integers(5, 100), st.integers(0, 2000))
    @settings(max_examples=25, deadline=None)
    def test_counting_bounded_by_leaves(self, n_queries, seed):
        gen = np.random.default_rng(seed)
        points = gen.random((400, 3))
        tree = RTree.bulk_load(points, 16, 4)
        queries = points[gen.choice(400, n_queries)]
        radii = exact_knn_radii(points, queries, 5)
        counts = tree.leaf_accesses_for_radius(queries, radii)
        assert np.all(counts >= 1)
        assert np.all(counts <= tree.n_leaves)


class TestDiskProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 50), st.integers(0, 8)),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_seeks_bounded_by_accesses(self, accesses):
        disk = SimulatedDisk()
        for start, count in accesses:
            disk.access(start, count)
        nonempty = sum(1 for _, count in accesses if count > 0)
        assert disk.cost.seeks <= nonempty
        assert disk.cost.transfers == sum(c for _, c in accesses)

    @given(
        st.integers(0, 16),
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(1, 5)),
            min_size=1,
            max_size=30,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_buffer_pool_never_increases_io(self, capacity, accesses):
        plain = SimulatedDisk()
        for start, count in accesses:
            plain.drop_head()
            plain.read(start, count)
        pooled = BufferedDisk(SimulatedDisk(), capacity)
        for start, count in accesses:
            pooled.drop_head()
            pooled.read(start, count)
        assert pooled.disk.cost.transfers <= plain.cost.transfers

    @given(st.integers(0, 100), st.integers(0, 100), st.integers(0, 20))
    @settings(max_examples=50, deadline=None)
    def test_iocost_scaled_distributes(self, seeks, transfers, factor):
        cost = IOCost(seeks, transfers)
        assert cost.scaled(factor) + cost.scaled(factor) == cost.scaled(
            2 * factor
        )


class TestJournalRecoveryIdempotence:
    """``recover()`` must be idempotent: running it twice -- or
    crashing in the middle of it and running it again -- leaves the
    same media state (points and checksum sidecar) as one clean pass.
    """

    @staticmethod
    def _crashed_commit(seed, crash_at):
        """An atomic write interrupted at a swept crash point."""
        gen = np.random.default_rng(seed)
        points = gen.random((40, 4))
        injector = FaultInjector(SimulatedDisk(), seed=seed, crash_at=crash_at)
        journal = WriteAheadJournal(injector)
        file = PointFile.from_points(
            injector, points, retry=RetryPolicy(), verify_checksums=True,
            journal=journal,
        )
        payload = gen.random((20, 4))
        crashed = False
        try:
            file.write_range_atomic(5, payload)
        except CrashPoint:
            crashed = True
        return injector, journal, file, points, payload, crashed

    @staticmethod
    def _media_state(file):
        return (
            file.peek(0, file.n_points).copy(),
            dict(file._crc),
        )

    @given(st.integers(1, 14), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_recover_twice_is_recover_once(self, crash_at, seed):
        injector, journal, file, points, payload, crashed = (
            self._crashed_commit(seed, crash_at)
        )
        if crashed:
            injector.reboot()
        first = journal.recover()
        state = self._media_state(file)
        second = journal.recover()
        assert second.clean
        assert second.io_cost.is_zero
        after_points, after_crc = self._media_state(file)
        assert np.array_equal(after_points, state[0])
        assert after_crc == state[1]
        # Whatever recovery decided, the file holds exactly the old or
        # exactly the new version of the range -- never a blend.
        old = points[5:25]
        new = payload
        window = file.peek(5, 25)
        assert (np.array_equal(window, old)
                or np.array_equal(window, new))

    @given(st.integers(1, 8), st.integers(1, 4), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_crash_mid_recover_then_recover_again(
        self, crash_at, recover_crash_at, seed
    ):
        injector, journal, file, points, payload, crashed = (
            self._crashed_commit(seed, crash_at)
        )
        if not crashed:
            return  # commit finished before the crash point; nothing to do
        injector.reboot(crash_at=recover_crash_at)
        try:
            journal.recover()
        except CrashPoint:
            pass
        # A rollback-only recovery charges nothing, so the armed crash
        # may never fire; disarm either way before verifying.
        injector.reboot()
        journal.recover()  # finishes whatever the crashed pass left
        again = journal.recover()
        assert again.clean
        assert journal.pending_entries == 0
        window = file.peek(5, 25)
        assert (np.array_equal(window, points[5:25])
                or np.array_equal(window, payload))
        # The sidecar matches the media: every page re-verifies.
        data = file.read_range(0, file.n_points)
        assert np.array_equal(data, file.peek(0, file.n_points))


class TestResampledConservation:
    @given(st.integers(200, 1200), st.integers(30, 200), st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_predictions_nonnegative_and_bounded(self, n, memory, seed):
        from repro.core.resampled import ResampledModel
        from repro.disk.pagefile import PointFile
        from repro.workload.queries import density_biased_knn_workload

        gen = np.random.default_rng(seed)
        points = gen.random((n, 4))
        workload = density_biased_knn_workload(
            points, 5, 3, np.random.default_rng(seed + 1)
        )
        model = ResampledModel(8, 4, memory=memory)
        file = PointFile.from_points(SimulatedDisk(), points)
        result = model.predict(file, workload, np.random.default_rng(seed))
        topology = Topology(n, 8, 4)
        assert np.all(result.per_query >= 0)
        assert np.all(result.per_query <= topology.n_leaves)
        assert result.detail["n_predicted_leaves"] <= topology.n_leaves
