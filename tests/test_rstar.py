"""Tests for the dynamic R*-tree and its sampling predictor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dynamic import DynamicMiniIndexModel, measure_dynamic_index
from repro.rtree.rstar import RStarTree
from repro.rtree.tree import RTree
from repro.workload.queries import (
    density_biased_knn_workload,
    density_biased_range_workload,
)


@pytest.fixture(scope="module")
def rstar(clustered_points):
    return RStarTree.build(clustered_points, c_data=32, c_dir=16,
                           shuffle_seed=1)


class TestConstruction:
    def test_validates(self, rstar):
        rstar.validate()

    def test_all_points_present(self, rstar, clustered_points):
        assert rstar.n_points == clustered_points.shape[0]
        frozen = rstar.freeze()
        ids = np.sort(np.concatenate([l.point_ids for l in frozen.leaves]))
        assert np.array_equal(ids, np.arange(clustered_points.shape[0]))

    def test_occupancy_bounds(self, rstar):
        frozen = rstar.freeze()
        sizes = [l.n_points for l in frozen.leaves]
        assert max(sizes) <= 32
        # R*-tree guarantees min-fill on every non-root leaf.
        if len(sizes) > 1:
            assert min(sizes) >= int(0.4 * 32)

    def test_reasonable_utilization(self, rstar, clustered_points):
        frozen = rstar.freeze()
        fill = clustered_points.shape[0] / (frozen.n_leaves * 32)
        assert 0.55 <= fill <= 1.0  # R*-trees typically fill ~70%

    def test_incremental_insert(self, rng):
        tree = RStarTree(dim=3, c_data=8, c_dir=4)
        points = rng.random((200, 3))
        for p in points:
            tree.insert(p)
        tree.validate()
        assert tree.n_points == 200

    def test_single_point(self):
        tree = RStarTree(dim=2, c_data=4, c_dir=4)
        tree.insert(np.array([0.5, 0.5]))
        tree.validate()
        assert tree.height == 1

    def test_duplicate_points(self):
        tree = RStarTree(dim=2, c_data=4, c_dir=4)
        for _ in range(50):
            tree.insert(np.zeros(2))
        tree.validate()
        assert tree.n_points == 50

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RStarTree(dim=0, c_data=8, c_dir=4)
        with pytest.raises(ValueError):
            RStarTree(dim=2, c_data=1, c_dir=4)
        with pytest.raises(ValueError):
            RStarTree(dim=2, c_data=8, c_dir=4, min_fill=0.9)
        with pytest.raises(ValueError):
            RStarTree(dim=2, c_data=8, c_dir=4, reinsert_fraction=0.6)

    def test_wrong_dim_rejected(self):
        tree = RStarTree(dim=3, c_data=8, c_dir=4)
        with pytest.raises(ValueError):
            tree.insert(np.zeros(2))

    def test_no_reinsertion_variant(self, rng):
        tree = RStarTree(dim=4, c_data=8, c_dir=4, reinsert_fraction=0.0)
        for p in rng.random((300, 4)):
            tree.insert(p)
        tree.validate()

    @given(st.integers(5, 300), st.integers(1, 4), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_random_orders_validate(self, n, d, seed):
        gen = np.random.default_rng(seed)
        tree = RStarTree.build(gen.random((n, d)), c_data=6, c_dir=4,
                               shuffle_seed=seed)
        tree.validate()


class TestQueries:
    def test_knn_matches_brute_force(self, rstar, clustered_points, rng):
        frozen = rstar.freeze()
        for _ in range(5):
            query = clustered_points[rng.integers(len(clustered_points))]
            result = frozen.knn(query, 7)
            expected = np.sort(
                np.linalg.norm(clustered_points - query, axis=1)
            )[:7]
            assert np.allclose(np.sort(result.distances), expected)

    def test_range_matches_brute_force(self, rstar, clustered_points, rng):
        frozen = rstar.freeze()
        center = clustered_points[3]
        found = frozen.range_query(center - 0.2, center + 0.2)
        inside = np.all(
            (clustered_points >= center - 0.2)
            & (clustered_points <= center + 0.2),
            axis=1,
        )
        assert np.array_equal(found, np.flatnonzero(inside))

    def test_optimality_invariant(self, rstar, clustered_points):
        frozen = rstar.freeze()
        result = frozen.knn(clustered_points[0], 21)
        assert result.leaf_accesses == frozen.count_leaves_intersecting_sphere(
            clustered_points[0], result.radius
        )

    def test_dynamic_needs_more_accesses_than_bulk(
        self, rstar, clustered_points
    ):
        """The classic result: tuple-at-a-time R*-trees overlap more
        than a packed bulk-loaded layout."""
        frozen = rstar.freeze()
        bulk = RTree.bulk_load(clustered_points, 32, 16)
        workload = density_biased_knn_workload(
            clustered_points, 30, 21, np.random.default_rng(2)
        )
        dyn = frozen.leaf_accesses_for_radius(
            workload.queries, workload.radii
        ).mean()
        blk = bulk.leaf_accesses_for_radius(
            workload.queries, workload.radii
        ).mean()
        assert dyn > blk


class TestDynamicPrediction:
    @pytest.fixture(scope="class")
    def context(self, clustered_points):
        workload = density_biased_knn_workload(
            clustered_points, 30, 21, np.random.default_rng(2)
        )
        frozen = measure_dynamic_index(clustered_points, 32, 16)
        measured = float(
            frozen.leaf_accesses_for_radius(
                workload.queries, workload.radii
            ).mean()
        )
        return workload, measured

    def test_accurate_at_half_sample(self, clustered_points, context):
        workload, measured = context
        model = DynamicMiniIndexModel(32, 16)
        result = model.predict(clustered_points, workload, 0.5,
                               np.random.default_rng(0))
        assert abs((result.mean_accesses - measured) / measured) < 0.2

    def test_mini_leaf_count_tracks_full(self, clustered_points, context):
        workload, measured = context
        model = DynamicMiniIndexModel(32, 16)
        result = model.predict(clustered_points, workload, 0.5,
                               np.random.default_rng(0))
        frozen = measure_dynamic_index(clustered_points, 32, 16)
        ratio = result.detail["n_mini_leaves"] / frozen.n_leaves
        assert 0.7 < ratio < 1.3

    def test_full_sample_near_exact(self, clustered_points, context):
        workload, measured = context
        model = DynamicMiniIndexModel(32, 16)
        result = model.predict(clustered_points, workload, 1.0,
                               np.random.default_rng(0))
        assert result.mean_accesses == pytest.approx(measured, rel=0.02)

    def test_compensation_flag(self, clustered_points, context):
        workload, _ = context
        result = DynamicMiniIndexModel(32, 16).predict(
            clustered_points, workload, 0.4, np.random.default_rng(0)
        )
        assert result.detail["compensated"]
        off = DynamicMiniIndexModel(32, 16, compensate=False).predict(
            clustered_points, workload, 0.4, np.random.default_rng(0)
        )
        assert not off.detail["compensated"]
        assert result.mean_accesses >= off.mean_accesses

    def test_range_workload(self, clustered_points, rng):
        workload = density_biased_range_workload(clustered_points, 10, 0.3, rng)
        result = DynamicMiniIndexModel(32, 16).predict(
            clustered_points, workload, 0.5, np.random.default_rng(0)
        )
        assert result.per_query.shape == (10,)

    def test_invalid_fraction(self, clustered_points, context):
        workload, _ = context
        with pytest.raises(ValueError):
            DynamicMiniIndexModel(32, 16).predict(
                clustered_points, workload, 0.0, np.random.default_rng(0)
            )


class TestDeletion:
    @pytest.fixture()
    def small_tree(self, rng):
        points = rng.random((400, 4))
        return points, RStarTree.build(points, c_data=16, c_dir=8,
                                       shuffle_seed=2)

    def test_delete_then_validate(self, small_tree, rng):
        points, tree = small_tree
        for pid in rng.permutation(400)[:150]:
            tree.delete(int(pid))
        tree.validate()
        assert len(tree.active_ids) == 250

    def test_delete_unknown_raises(self, small_tree):
        _, tree = small_tree
        with pytest.raises(KeyError):
            tree.delete(9999)

    def test_double_delete_raises(self, small_tree):
        _, tree = small_tree
        tree.delete(5)
        with pytest.raises(KeyError):
            tree.delete(5)

    def test_knn_after_deletes(self, small_tree, rng):
        points, tree = small_tree
        removed = set(int(i) for i in rng.permutation(400)[:100])
        for pid in removed:
            tree.delete(pid)
        frozen = tree.freeze()
        active = np.array(tree.active_ids)
        query = points[active[7]]
        result = frozen.knn(query, 5)
        assert not (set(result.point_ids.tolist()) & removed)
        expected = np.sort(np.linalg.norm(points[active] - query, axis=1))[:5]
        assert np.allclose(np.sort(result.distances), expected)

    def test_delete_everything(self, small_tree):
        _, tree = small_tree
        for pid in list(tree.active_ids):
            tree.delete(pid)
        tree.validate()
        assert tree.active_ids == []
        assert tree.height == 1

    def test_interleaved_insert_delete(self, rng):
        tree = RStarTree(dim=3, c_data=8, c_dir=4)
        alive = []
        for step in range(600):
            if alive and step % 3 == 2:
                victim = alive.pop(int(rng.integers(len(alive))))
                tree.delete(victim)
            else:
                alive.append(tree.insert(rng.random(3)))
        tree.validate()
        assert sorted(tree.active_ids) == sorted(alive)


class TestIncrementalNN:
    def test_streams_in_order(self, clustered_points, rstar):
        from repro.rtree.search import incremental_nn

        frozen = rstar.freeze()
        stream = incremental_nn(frozen.points, frozen.root,
                                clustered_points[0])
        got = [next(stream) for _ in range(25)]
        distances = [d for _, d in got]
        assert distances == sorted(distances)
        expected = np.sort(
            np.linalg.norm(clustered_points - clustered_points[0], axis=1)
        )[:25]
        assert np.allclose(distances, expected)

    def test_exhausts_completely(self, rng):
        from repro.rtree.search import incremental_nn
        from repro.rtree.tree import RTree

        points = rng.random((100, 2))
        tree = RTree.bulk_load(points, 8, 4)
        results = list(incremental_nn(tree.points, tree.root, points[0]))
        assert len(results) == 100
        assert {pid for pid, _ in results} == set(range(100))

    def test_empty_tree(self):
        from repro.rtree.search import incremental_nn

        assert list(incremental_nn(np.empty((0, 2)), None, np.zeros(2))) == []
