"""Tests for the three prediction models: mini-index, cutoff, resampled."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.counting import (
    PredictionResult,
    knn_accesses_per_query,
    range_accesses_per_query,
)
from repro.core.cutoff import CutoffModel, synthesize_uniform_leaves
from repro.core.minindex import MiniIndexModel
from repro.core.resampled import ResampledModel
from repro.core.topology import Topology
from repro.disk.accounting import IOCost
from repro.disk.device import SimulatedDisk
from repro.disk.pagefile import PointFile
from repro.rtree.geometry import volume
from repro.rtree.tree import RTree
from repro.workload.queries import (
    density_biased_knn_workload,
    density_biased_range_workload,
)

C_DATA, C_DIR = 32, 16


@pytest.fixture(scope="module")
def workload(clustered_points):
    return density_biased_knn_workload(
        clustered_points, 40, 21, np.random.default_rng(3)
    )


@pytest.fixture(scope="module")
def measured_mean(clustered_points, workload):
    tree = RTree.bulk_load(clustered_points, C_DATA, C_DIR)
    counts = tree.leaf_accesses_for_radius(workload.queries, workload.radii)
    return float(np.mean(counts))


def fresh_file(points):
    return PointFile.from_points(SimulatedDisk(), points)


class TestPredictionResult:
    def test_mean_and_error(self):
        result = PredictionResult(per_query=np.array([10, 20, 30]))
        assert result.mean_accesses == 20.0
        assert result.relative_error(25.0) == pytest.approx(-0.2)

    def test_error_validation(self):
        result = PredictionResult(per_query=np.array([1.0]))
        with pytest.raises(ValueError):
            result.relative_error(0.0)


class TestCounting:
    def test_knn_counts_match_tree(self, clustered_points, workload):
        tree = RTree.bulk_load(clustered_points, C_DATA, C_DIR)
        lower, upper = tree.leaf_corners
        counts = knn_accesses_per_query(lower, upper, workload)
        expected = tree.leaf_accesses_for_radius(workload.queries, workload.radii)
        assert np.array_equal(counts, expected)

    def test_range_counts(self, clustered_points, rng):
        tree = RTree.bulk_load(clustered_points, C_DATA, C_DIR)
        lower, upper = tree.leaf_corners
        workload = density_biased_range_workload(clustered_points, 10, 0.3, rng)
        counts = range_accesses_per_query(lower, upper, workload)
        assert counts.shape == (10,)
        assert np.all(counts >= 1)  # the center's own leaf always hits

    def test_empty_boxes(self, workload):
        empty = np.empty((0, 16))
        assert knn_accesses_per_query(empty, empty, workload).sum() == 0


class TestMiniIndexModel:
    def test_accurate_at_half_sample(self, clustered_points, workload, measured_mean):
        model = MiniIndexModel(C_DATA, C_DIR)
        result = model.predict(clustered_points, workload, 0.5,
                               np.random.default_rng(0))
        assert abs(result.relative_error(measured_mean)) < 0.15

    def test_full_sample_is_exact(self, clustered_points, workload, measured_mean):
        model = MiniIndexModel(C_DATA, C_DIR)
        result = model.predict(clustered_points, workload, 1.0,
                               np.random.default_rng(0))
        assert result.mean_accesses == pytest.approx(measured_mean)
        assert result.detail["zeta"] == 1.0

    def test_compensation_never_decreases_counts(self, clustered_points, workload):
        on = MiniIndexModel(C_DATA, C_DIR, compensate=True).predict(
            clustered_points, workload, 0.2, np.random.default_rng(5)
        )
        off = MiniIndexModel(C_DATA, C_DIR, compensate=False).predict(
            clustered_points, workload, 0.2, np.random.default_rng(5)
        )
        assert on.mean_accesses >= off.mean_accesses
        assert on.detail["compensated"]

    def test_below_one_over_c_degrades(self, clustered_points, workload):
        model = MiniIndexModel(C_DATA, C_DIR)
        result = model.predict(clustered_points, workload, 1 / 40,
                               np.random.default_rng(5))
        assert not result.detail["compensated"]

    def test_range_workload(self, clustered_points, rng):
        range_wl = density_biased_range_workload(clustered_points, 10, 0.3, rng)
        result = MiniIndexModel(C_DATA, C_DIR).predict(
            clustered_points, range_wl, 0.5, np.random.default_rng(1)
        )
        assert result.per_query.shape == (10,)

    def test_invalid_fraction(self, clustered_points, workload):
        model = MiniIndexModel(C_DATA, C_DIR)
        with pytest.raises(ValueError):
            model.predict(clustered_points, workload, 0.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            model.predict(clustered_points, workload, 1.1, np.random.default_rng(0))

    def test_no_io_cost(self, clustered_points, workload):
        result = MiniIndexModel(C_DATA, C_DIR).predict(
            clustered_points, workload, 0.3, np.random.default_rng(0)
        )
        assert result.io_cost.is_zero


class TestSynthesizeUniformLeaves:
    def test_tiles_the_box_exactly(self, clustered_points):
        topo = Topology(clustered_points.shape[0], C_DATA, C_DIR)
        box_lower = np.zeros(3)
        box_upper = np.array([2.0, 1.0, 1.0])
        level = 2
        n_virtual = 400
        lower, upper = synthesize_uniform_leaves(
            box_lower, box_upper, level, n_virtual, topo
        )
        # Volumes sum to the box volume (the synthesized pages tile it).
        assert volume(lower, upper).sum() == pytest.approx(2.0)
        # All inside the box.
        assert np.all(lower >= box_lower - 1e-12)
        assert np.all(upper <= box_upper + 1e-12)

    def test_leaf_count_matches_fanout_schedule(self):
        topo = Topology(10_000, C_DATA, C_DIR)
        lower, _ = synthesize_uniform_leaves(
            np.zeros(2), np.ones(2), 2, 400, topo
        )
        # a level-2 node with 400 virtual points has ceil(400/32) leaves
        assert lower.shape[0] == 13

    def test_level_one_returns_box(self):
        topo = Topology(10_000, C_DATA, C_DIR)
        lower, upper = synthesize_uniform_leaves(
            np.zeros(2), np.ones(2), 1, 30, topo
        )
        assert lower.shape == (1, 2)
        assert np.allclose(upper[0], 1.0)

    def test_splits_longest_dimension_first(self):
        topo = Topology(10_000, C_DATA, C_DIR)
        lower, upper = synthesize_uniform_leaves(
            np.zeros(2), np.array([10.0, 1.0]), 2, 64, topo
        )
        # two leaves, split along dim 0 at the proportional midpoint
        assert lower.shape[0] == 2
        assert np.all(upper[:, 1] == 1.0)


class TestCutoffModel:
    def test_underestimates_on_clustered_data(
        self, clustered_points, workload, measured_mean
    ):
        model = CutoffModel(C_DATA, C_DIR, memory=400, h_upper=2)
        result = model.predict(fresh_file(clustered_points), workload,
                               np.random.default_rng(0))
        # Section 5.2: the cutoff method underestimates on real data.
        assert result.relative_error(measured_mean) < 0.05

    def test_io_cost_is_equation_three(self, clustered_points, workload):
        file = fresh_file(clustered_points)
        model = CutoffModel(C_DATA, C_DIR, memory=400, h_upper=2)
        result = model.predict(file, workload, np.random.default_rng(0))
        q = workload.n_queries
        expected = IOCost(seeks=q, transfers=q) + IOCost(
            seeks=1, transfers=file.n_pages
        )
        assert result.io_cost == expected

    def test_io_independent_of_h_upper(self, clustered_points, workload):
        # Use small capacities for a taller tree with several valid h.
        costs = []
        for h in (2, 3):
            model = CutoffModel(8, 4, memory=400, h_upper=h)
            result = model.predict(fresh_file(clustered_points), workload,
                                   np.random.default_rng(0))
            costs.append(result.io_cost)
        assert costs[0] == costs[1]

    def test_predicted_leaf_count_matches_topology(
        self, clustered_points, workload
    ):
        topo = Topology(clustered_points.shape[0], C_DATA, C_DIR)
        model = CutoffModel(C_DATA, C_DIR, memory=400, h_upper=2)
        result = model.predict(fresh_file(clustered_points), workload,
                               np.random.default_rng(0))
        assert result.detail["n_predicted_leaves"] == topo.n_leaves

    def test_invalid_h_upper(self, clustered_points, workload):
        model = CutoffModel(C_DATA, C_DIR, memory=400, h_upper=99)
        with pytest.raises(ValueError):
            model.predict(fresh_file(clustered_points), workload,
                          np.random.default_rng(0))


class TestResampledModel:
    def test_accurate_at_sigma_lower_one(
        self, clustered_points, workload, measured_mean
    ):
        topo = Topology(clustered_points.shape[0], C_DATA, C_DIR)
        h = topo.best_h_upper(400)
        model = ResampledModel(C_DATA, C_DIR, memory=400, h_upper=h)
        result = model.predict(fresh_file(clustered_points), workload,
                               np.random.default_rng(0))
        assert abs(result.relative_error(measured_mean)) < 0.25

    def test_more_accurate_than_cutoff(
        self, clustered_points, workload, measured_mean
    ):
        resampled = ResampledModel(C_DATA, C_DIR, memory=400).predict(
            fresh_file(clustered_points), workload, np.random.default_rng(0)
        )
        cutoff = CutoffModel(C_DATA, C_DIR, memory=400).predict(
            fresh_file(clustered_points), workload, np.random.default_rng(0)
        )
        assert abs(resampled.relative_error(measured_mean)) <= abs(
            cutoff.relative_error(measured_mean)
        ) + 0.02

    def test_io_cost_higher_than_cutoff(self, clustered_points, workload):
        resampled = ResampledModel(C_DATA, C_DIR, memory=400).predict(
            fresh_file(clustered_points), workload, np.random.default_rng(0)
        )
        cutoff = CutoffModel(C_DATA, C_DIR, memory=400).predict(
            fresh_file(clustered_points), workload, np.random.default_rng(0)
        )
        assert resampled.io_cost.transfers > cutoff.io_cost.transfers

    def test_sigma_lower_caps_at_one(self, clustered_points, workload):
        topo = Topology(clustered_points.shape[0], C_DATA, C_DIR)
        h = topo.height - 1
        model = ResampledModel(C_DATA, C_DIR, memory=1000, h_upper=h)
        result = model.predict(fresh_file(clustered_points), workload,
                               np.random.default_rng(0))
        assert result.detail["sigma_lower"] == 1.0

    def test_detail_fields_present(self, clustered_points, workload):
        result = ResampledModel(C_DATA, C_DIR, memory=400).predict(
            fresh_file(clustered_points), workload, np.random.default_rng(0)
        )
        for key in ("h_upper", "sigma_upper", "sigma_lower", "k_upper_leaves",
                    "n_predicted_leaves", "n_discarded_overflow"):
            assert key in result.detail

    def test_memory_covering_dataset_is_near_exact(
        self, clustered_points, workload, measured_mean
    ):
        model = ResampledModel(C_DATA, C_DIR, memory=len(clustered_points))
        result = model.predict(fresh_file(clustered_points), workload,
                               np.random.default_rng(0))
        assert result.mean_accesses == pytest.approx(measured_mean, rel=0.01)

    def test_range_workload_supported(self, clustered_points, rng):
        range_wl = density_biased_range_workload(clustered_points, 8, 0.3, rng)
        result = ResampledModel(C_DATA, C_DIR, memory=400).predict(
            fresh_file(clustered_points), range_wl, np.random.default_rng(0)
        )
        assert result.per_query.shape == (8,)

    def test_reproducible_with_same_seed(self, clustered_points, workload):
        runs = [
            ResampledModel(C_DATA, C_DIR, memory=400).predict(
                fresh_file(clustered_points), workload, np.random.default_rng(9)
            ).mean_accesses
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
