"""Smoke tests for the example scripts.

Each example must import cleanly and expose a ``main`` entry point; the
cheapest example (quickstart at a reduced scale) is executed end to end
so a broken public API surfaces here, not in a user's terminal.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_NAMES = [
    "quickstart",
    "tune_page_size",
    "compare_models",
    "restricted_memory_prediction",
    "choose_index_dimensions",
    "predict_dynamic_index",
    "index_anatomy",
    "resilient_prediction",
    "budgeted_prediction",
    "self_healing",
    "multi_tenant_service",
    "sharded_cluster",
    "elastic_cluster",
]


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"examples_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    @pytest.mark.parametrize("name", EXAMPLE_NAMES)
    def test_importable_with_main(self, name):
        module = _load(name)
        assert callable(module.main)
        assert module.__doc__  # every example documents itself

    def test_quickstart_runs(self, capsys, monkeypatch):
        # Shrink the dataset so the end-to-end run stays fast.
        from repro.data import datasets

        module = _load("quickstart")
        original = datasets.texture60
        monkeypatch.setattr(
            datasets, "texture60",
            lambda scale=0.05, seed=7: original(scale=0.01, seed=seed),
        )
        module.main()
        out = capsys.readouterr().out
        assert "resampled prediction error" in out

    def test_tune_page_size_runs(self, capsys, monkeypatch):
        module = _load("tune_page_size")
        monkeypatch.setattr(sys, "argv", ["tune_page_size.py",
                                          "--scale", "0.01"])
        module.main()
        assert "predicted optimal page size" in capsys.readouterr().out
