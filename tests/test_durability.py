"""Durability layer: checksums, journaled atomic writes, crash resume.

Covers the crash-consistency contract end to end -- silent corruption
caught (or demonstrably NOT caught with verification off), torn writes
repaired rather than merely detected, crash points honored and resumed,
and the whole apparatus charging zero extra I/O when disabled.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.predictor import IndexCostPredictor
from repro.core.resampled import ResampledModel
from repro.disk.accounting import IOCost
from repro.disk.device import SimulatedDisk
from repro.disk.faults import FaultInjector
from repro.disk.journal import WriteAheadJournal
from repro.disk.pagefile import PointFile
from repro.disk.retry import RetryPolicy
from repro.errors import (
    ChecksumError,
    CrashPoint,
    DiskError,
    InputValidationError,
    TransientReadError,
)
from repro.ondisk.builder import BuildLog, OnDiskBuilder
from repro.workload.queries import density_biased_knn_workload


def small_points(n=600, dim=4, seed=3):
    return np.random.default_rng(seed).random((n, dim))


# ----------------------------------------------------------------------
# Checksums and silent corruption
# ----------------------------------------------------------------------


class TestChecksums:
    def test_corruption_without_verification_is_silent(self):
        points = small_points()
        injector = FaultInjector(
            SimulatedDisk(), silent_corruption_rate=1.0, seed=1
        )
        file = PointFile.from_points(injector, points)
        data = file.read_range(0, file.points_per_page)
        clean = points[: file.points_per_page]
        assert not np.array_equal(data, clean)  # the motivating failure
        assert injector.cost.faults_seen > 0

    def test_corruption_with_verification_is_caught_and_retried(self):
        points = small_points()
        injector = FaultInjector(
            SimulatedDisk(), silent_corruption_rate=0.3, seed=1
        )
        file = PointFile.from_points(
            injector, points, retry=RetryPolicy(max_attempts=8),
            verify_checksums=True,
        )
        # Repeated reads eventually draw corruption; every returned
        # block must nonetheless be bit-identical to the source.
        for _ in range(20):
            assert np.array_equal(file.read_all(), points)
            if injector.cost.retries > 0:
                break
        assert injector.cost.retries > 0

    def test_exhausted_retries_raise_checksum_error(self):
        points = small_points()
        injector = FaultInjector(
            SimulatedDisk(), silent_corruption_rate=1.0, seed=1
        )
        file = PointFile.from_points(
            injector, points, retry=RetryPolicy(max_attempts=3),
            verify_checksums=True,
        )
        with pytest.raises(ChecksumError) as exc:
            file.read_range(0, 8)
        assert exc.value.attempts == 3
        assert exc.value.retryable

    def test_read_point_corruption_caught(self):
        points = small_points()
        injector = FaultInjector(
            SimulatedDisk(), silent_corruption_rate=1.0, seed=4
        )
        file = PointFile.from_points(
            injector, points, retry=None, verify_checksums=True
        )
        with pytest.raises(ChecksumError):
            file.read_point(17)

    def test_checksums_free_on_clean_disk(self):
        points = small_points()
        plain = PointFile.from_points(SimulatedDisk(), points)
        checked = PointFile.from_points(
            SimulatedDisk(), points, verify_checksums=True
        )
        a = plain.read_range(0, plain.n_points)
        b = checked.read_range(0, checked.n_points)
        assert np.array_equal(a, b)
        assert plain.disk.cost == checked.disk.cost  # sidecar charges nothing

    def test_writes_refresh_checksums(self):
        points = small_points(n=64)
        file = PointFile.from_points(
            SimulatedDisk(), points, verify_checksums=True
        )
        fresh = np.ones((8, points.shape[1]))
        file.write_range(4, fresh)
        assert np.array_equal(file.read_range(4, 12), fresh)


# ----------------------------------------------------------------------
# Write-ahead journal
# ----------------------------------------------------------------------


class TestJournal:
    def make(self, points, **injector_kw):
        injector = FaultInjector(SimulatedDisk(), **injector_kw)
        journal = WriteAheadJournal(injector)
        file = PointFile.from_points(
            injector, points, retry=RetryPolicy(), journal=journal
        )
        return injector, journal, file

    def test_commit_installs_and_charges_journal(self):
        points = small_points(n=120)
        injector, journal, file = self.make(points)
        payload = np.full((40, points.shape[1]), 7.0)
        before = injector.cost
        file.write_range_atomic(10, payload)
        assert np.array_equal(file.peek(10, 50), payload)
        spent = injector.cost - before
        jcost = journal.journal_cost
        # payload run + commit marker + retire marker in the journal
        # region, plus the in-place install
        assert jcost.seeks == 3
        pages = file.page_span(10, 50)[1]
        assert jcost.transfers == pages + 2
        assert spent.transfers == jcost.transfers + pages
        assert journal.pending_entries == 0

    def test_without_journal_atomic_degrades_to_plain(self):
        points = small_points(n=60)
        file = PointFile.from_points(SimulatedDisk(), points)
        payload = np.zeros((10, points.shape[1]))
        file.write_range_atomic(5, payload)
        assert np.array_equal(file.peek(5, 15), payload)

    def test_crash_before_commit_marker_rolls_back(self):
        points = small_points(n=120)
        # from_points charges nothing; op 1 is the journal payload write
        injector, journal, file = self.make(points, crash_at=1)
        payload = np.full((40, points.shape[1]), 7.0)
        original = file.peek(0, file.n_points).copy()
        with pytest.raises(CrashPoint):
            file.write_range_atomic(10, payload)
        injector.reboot()
        report = journal.recover()
        assert report.rolled_back == 1
        assert report.replayed == 0
        assert np.array_equal(file.peek(0, file.n_points), original)

    def test_crash_mid_install_is_replayed(self):
        points = small_points(n=120)
        # ops: 1 journal payload, 2 commit marker, 3 install <- crash
        injector, journal, file = self.make(points, crash_at=3)
        payload = np.full((40, points.shape[1]), 7.0)
        with pytest.raises(CrashPoint):
            file.write_range_atomic(10, payload)
        injector.reboot()
        report = journal.recover()
        assert report.replayed == 1
        assert report.rolled_back == 0
        assert np.array_equal(file.peek(10, 50), payload)
        assert journal.pending_entries == 0

    def test_recover_on_clean_journal_is_free(self):
        points = small_points(n=60)
        injector, journal, file = self.make(points)
        file.write_range_atomic(0, np.ones((10, points.shape[1])))
        before = injector.cost
        report = journal.recover()
        assert report.clean
        assert injector.cost == before

    def test_oversized_commit_rejected(self):
        points = small_points(n=1200)
        disk = SimulatedDisk()
        journal = WriteAheadJournal(disk, capacity_pages=2)
        file = PointFile.from_points(disk, points, journal=journal)
        # two payload pages plus the marker cannot fit a 2-page region
        too_big = points[: 2 * file.points_per_page]
        with pytest.raises(DiskError, match="exceeds the journal"):
            file.write_range_atomic(0, too_big)

    def test_journal_region_wraps(self):
        points = small_points(n=200)
        disk = SimulatedDisk()
        journal = WriteAheadJournal(disk, capacity_pages=8)
        file = PointFile.from_points(disk, points, journal=journal)
        payload = np.ones((30, points.shape[1]))
        for _ in range(6):  # several commits through a tiny region
            file.write_range_atomic(0, payload)
        assert np.array_equal(file.peek(0, 30), payload)
        assert journal.pending_entries == 0


# ----------------------------------------------------------------------
# Crash-point semantics (the fault layer itself)
# ----------------------------------------------------------------------


class TestCrashPoint:
    def test_crash_fires_before_nth_op_and_sticks(self):
        points = small_points(n=100)
        injector = FaultInjector(SimulatedDisk(), crash_at=3)
        file = PointFile.from_points(injector, points)
        file.read_range(0, 8)
        file.read_range(0, 8)
        before = injector.cost
        with pytest.raises(CrashPoint):
            file.read_range(0, 8)
        assert injector.cost == before  # the crashed op never lands
        assert injector.crashed
        with pytest.raises(CrashPoint):  # dead until rebooted
            file.read_range(0, 8)
        injector.reboot()
        assert not injector.crashed
        assert np.array_equal(file.read_range(0, 8), points[:8])

    def test_crash_is_not_retried(self):
        points = small_points(n=100)
        injector = FaultInjector(SimulatedDisk(), crash_at=1)
        file = PointFile.from_points(
            injector, points, retry=RetryPolicy(max_attempts=4)
        )
        with pytest.raises(CrashPoint):
            file.read_range(0, 8)
        assert injector.cost.retries == 0

    def test_reboot_can_rearm(self):
        injector = FaultInjector(SimulatedDisk(), crash_at=1)
        file = PointFile.from_points(injector, small_points(n=50))
        with pytest.raises(CrashPoint):
            file.read_range(0, 4)
        injector.reboot(crash_at=2)
        file.read_range(0, 4)
        with pytest.raises(CrashPoint):
            file.read_range(0, 4)

    def test_crash_at_validation(self):
        with pytest.raises(InputValidationError):
            FaultInjector(SimulatedDisk(), crash_at=0)

    def test_facade_never_degrades_around_a_crash(self):
        points = small_points(n=800, dim=6)
        predictor = IndexCostPredictor(dim=6, memory=300, crash_at=1)
        workload = predictor.make_workload(points, 5, 3)
        with pytest.raises(CrashPoint):
            predictor.predict(points, workload, method="resampled")


# ----------------------------------------------------------------------
# Build and prediction resume
# ----------------------------------------------------------------------


class TestResume:
    def test_build_resume_skips_logged_units(self):
        points = small_points(n=1200, dim=4, seed=9)
        full = OnDiskBuilder(16, 8, 200).build(
            PointFile.from_points(SimulatedDisk(), points)
        )
        injector = FaultInjector(SimulatedDisk(), crash_at=30)
        file = PointFile.from_points(injector, points)
        log = BuildLog(injector)
        with pytest.raises(CrashPoint):
            OnDiskBuilder(16, 8, 200).build(file, log=log)
        assert len(log) > 0  # durable progress before the crash
        injector.reboot()
        resumed = OnDiskBuilder(16, 8, 200).build(file, log=log)
        assert resumed.build_cost.transfers < full.build_cost.transfers
        ref = sorted((tuple(l.mbr.lower), tuple(l.mbr.upper))
                     for l in full.tree.leaves if l.mbr is not None)
        got = sorted((tuple(l.mbr.lower), tuple(l.mbr.upper))
                     for l in resumed.tree.leaves if l.mbr is not None)
        assert got == ref

    def test_predict_checkpoint_without_crash_is_bit_identical(self):
        points = small_points(n=900, dim=5, seed=2)
        workload = density_biased_knn_workload(
            points, 10, 5, np.random.default_rng(1)
        )
        model = ResampledModel(16, 8, memory=150)
        ref = model.predict(PointFile.from_points(SimulatedDisk(), points),
                            workload, np.random.default_rng(0))
        got = model.predict(PointFile.from_points(SimulatedDisk(), points),
                            workload, np.random.default_rng(0),
                            checkpoint={})
        assert np.array_equal(got.per_query, ref.per_query)

    def test_predict_resume_after_crash_is_bit_identical(self):
        points = small_points(n=900, dim=5, seed=2)
        workload = density_biased_knn_workload(
            points, 10, 5, np.random.default_rng(1)
        )
        model = ResampledModel(16, 8, memory=150)
        ref = model.predict(PointFile.from_points(SimulatedDisk(), points),
                            workload, np.random.default_rng(0))
        injector = FaultInjector(SimulatedDisk(), crash_at=12)
        file = PointFile.from_points(injector, points)
        ck: dict = {}
        with pytest.raises(CrashPoint):
            model.predict(file, workload, np.random.default_rng(0),
                          checkpoint=ck)
        assert ck  # durable progress recorded before the crash
        injector.reboot()
        got = model.predict(file, workload, np.random.default_rng(0),
                            checkpoint=ck)
        assert np.array_equal(got.per_query, ref.per_query)

    def test_checkpoint_writes_are_charged(self):
        points = small_points(n=900, dim=5, seed=2)
        workload = density_biased_knn_workload(
            points, 10, 5, np.random.default_rng(1)
        )
        model = ResampledModel(16, 8, memory=150)
        plain = model.predict(
            PointFile.from_points(SimulatedDisk(), points), workload,
            np.random.default_rng(0),
        )
        ckpt = model.predict(
            PointFile.from_points(SimulatedDisk(), points), workload,
            np.random.default_rng(0), checkpoint={},
        )
        assert ckpt.io_cost.transfers > plain.io_cost.transfers


class TestTruncate:
    def test_rolls_back_length(self):
        points = small_points(n=50)
        file = PointFile.from_points(SimulatedDisk(), points)
        file.truncate(20)
        assert file.n_points == 20
        assert np.array_equal(file.peek(0, 20), points[:20])

    def test_truncate_refreshes_trailing_checksum(self):
        points = small_points(n=1200)
        file = PointFile.from_points(
            SimulatedDisk(), points, verify_checksums=True
        )
        file.truncate(file.points_per_page + 1)  # mid-page cut
        data = file.read_range(0, file.n_points)  # verifies every page
        assert np.array_equal(data, points[: file.n_points])

    def test_rejects_growth(self):
        file = PointFile.from_points(SimulatedDisk(), small_points(n=10))
        with pytest.raises(ValueError):
            file.truncate(11)


# ----------------------------------------------------------------------
# Satellite: counter/ledger reset interplay
# ----------------------------------------------------------------------


class TestResetInterplay:
    def test_reset_clears_ledger_and_pending_corruption_together(self):
        points = small_points(n=100)
        injector = FaultInjector(
            SimulatedDisk(), silent_corruption_rate=1.0, seed=0
        )
        # Read WITHOUT consuming the flip (no checksum layer attached):
        # a raw device read records pending corruption.
        file = PointFile.from_points(injector, points)
        file.read_range(0, 8)
        assert injector.cost.faults_seen > 0
        phase_a = injector.reset_counters()
        assert phase_a.faults_seen > 0
        assert injector.cost == IOCost()
        # Phase B on a checksummed file of the SAME injector: a flip
        # recorded in phase A must not materialize here.
        injector.silent_corruption_rate = 0.0
        checked = PointFile.from_points(
            injector, points, verify_checksums=True
        )
        data = checked.read_range(0, 8)  # would raise on a stale flip
        assert np.array_equal(data, points[:8])
        assert injector.cost.faults_seen == 0

    def test_reset_preserves_crash_schedule(self):
        injector = FaultInjector(SimulatedDisk(), crash_at=2)
        file = PointFile.from_points(injector, small_points(n=40))
        file.read_range(0, 4)
        injector.reset_counters()
        with pytest.raises(CrashPoint):  # op count is NOT ledger state
            file.read_range(0, 4)


# ----------------------------------------------------------------------
# Satellite: retry-policy edge cases
# ----------------------------------------------------------------------


class TestRetryPolicyEdges:
    def test_backoff_rounds_are_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().backoff_cost(0)

    def test_backoff_growth(self):
        policy = RetryPolicy(backoff_seeks=2, backoff_factor=2.0)
        assert policy.backoff_cost(1).seeks == 2
        assert policy.backoff_cost(2).seeks == 4
        assert policy.backoff_cost(3).seeks == 8

    def test_single_attempt_policy_never_retries(self):
        injector = FaultInjector(
            SimulatedDisk(), read_fault_rate=1.0, seed=0
        )
        file = PointFile.from_points(
            injector, small_points(n=40), retry=RetryPolicy(max_attempts=1)
        )
        with pytest.raises(TransientReadError) as exc:
            file.read_range(0, 4)
        assert exc.value.attempts == 1
        assert injector.cost.retries == 0

    def test_exhaustion_reraises_last_error_with_attempts(self):
        calls = []

        def always_fails():
            calls.append(1)
            raise TransientReadError(0, 1)

        disk = SimulatedDisk()
        policy = RetryPolicy(max_attempts=3)
        with pytest.raises(TransientReadError) as exc:
            policy.run(disk, always_fails)
        assert len(calls) == 3
        assert exc.value.attempts == 3
        assert disk.cost.retries == 2  # two backoff rounds were charged

    def test_backoff_lands_on_inner_device_through_injector(self):
        inner = SimulatedDisk()
        injector = FaultInjector(inner, read_fault_rate=1.0, seed=0)
        file = PointFile.from_points(
            injector, small_points(n=40),
            retry=RetryPolicy(max_attempts=2, backoff_seeks=5,
                              backoff_factor=1.0),
        )
        with pytest.raises(TransientReadError):
            file.read_range(0, 4)
        # note_retry delegates through the injector to the real ledger
        assert inner.cost.retries == 1
        assert inner.cost.seeks >= 5

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_seeks=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_factor=0.5)


# ----------------------------------------------------------------------
# Zero overhead when disabled
# ----------------------------------------------------------------------


class TestZeroOverhead:
    def test_inert_injector_ledger_matches_bare_disk(self):
        points = small_points(n=900, dim=5, seed=2)
        workload = density_biased_knn_workload(
            points, 10, 5, np.random.default_rng(1)
        )
        model = ResampledModel(16, 8, memory=150)
        bare = model.predict(
            PointFile.from_points(SimulatedDisk(), points), workload,
            np.random.default_rng(0),
        )
        inert = model.predict(
            PointFile.from_points(FaultInjector(SimulatedDisk()), points),
            workload, np.random.default_rng(0),
        )
        assert np.array_equal(bare.per_query, inert.per_query)
        assert bare.io_cost == inert.io_cost

    def test_facade_defaults_use_bare_disk(self):
        predictor = IndexCostPredictor(dim=4, memory=200)
        file = predictor.new_file(small_points(n=100))
        assert isinstance(file.disk, SimulatedDisk)
        assert not file.verify_checksums
        assert file.journal is None
