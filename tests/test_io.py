"""Tests for index/workload serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rtree.io import load_tree, load_workload, save_tree, save_workload
from repro.rtree.tree import RTree
from repro.workload.queries import density_biased_knn_workload


class TestTreeRoundtrip:
    def test_structure_preserved(self, clustered_points, tmp_path):
        tree = RTree.bulk_load(clustered_points, 32, 16)
        path = tmp_path / "index.npz"
        save_tree(tree, path)
        loaded = load_tree(path)
        loaded.validate()
        assert loaded.height == tree.height
        assert loaded.n_leaves == tree.n_leaves
        assert loaded.topology.c_data == 32

    def test_queries_identical(self, clustered_points, tmp_path, rng):
        tree = RTree.bulk_load(clustered_points, 32, 16)
        path = tmp_path / "index.npz"
        save_tree(tree, path)
        loaded = load_tree(path)
        for _ in range(3):
            query = clustered_points[rng.integers(len(clustered_points))]
            a = tree.knn(query, 9)
            b = loaded.knn(query, 9)
            assert np.array_equal(np.sort(a.point_ids), np.sort(b.point_ids))
            assert a.leaf_accesses == b.leaf_accesses

    def test_leaf_corners_identical(self, clustered_points, tmp_path):
        tree = RTree.bulk_load(clustered_points, 32, 16)
        path = tmp_path / "index.npz"
        save_tree(tree, path)
        loaded = load_tree(path)
        assert np.allclose(tree.leaf_corners[0], loaded.leaf_corners[0])
        assert np.allclose(tree.leaf_corners[1], loaded.leaf_corners[1])

    def test_mini_index_roundtrip(self, clustered_points, tmp_path, rng):
        n = clustered_points.shape[0]
        sample = clustered_points[rng.choice(n, n // 5, replace=False)]
        mini = RTree.bulk_load(sample, 32, 16, virtual_n=n)
        path = tmp_path / "mini.npz"
        save_tree(mini, path)
        loaded = load_tree(path)
        loaded.validate()
        assert loaded.topology.n_points == n  # virtual count survives

    def test_version_check(self, clustered_points, tmp_path):
        tree = RTree.bulk_load(clustered_points[:100], 32, 16)
        path = tmp_path / "index.npz"
        save_tree(tree, path)
        with np.load(path) as archive:
            data = dict(archive)
        data["format_version"] = np.int64(99)
        np.savez(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_tree(path)


class TestWorkloadRoundtrip:
    def test_roundtrip(self, clustered_points, tmp_path):
        workload = density_biased_knn_workload(
            clustered_points, 15, 7, np.random.default_rng(2)
        )
        path = tmp_path / "workload.npz"
        save_workload(workload, path)
        loaded = load_workload(path)
        assert loaded.k == 7
        assert np.array_equal(loaded.query_ids, workload.query_ids)
        assert np.allclose(loaded.queries, workload.queries)
        assert np.allclose(loaded.radii, workload.radii)

    def test_loaded_workload_usable(self, clustered_points, tmp_path):
        workload = density_biased_knn_workload(
            clustered_points, 10, 5, np.random.default_rng(2)
        )
        path = tmp_path / "workload.npz"
        save_workload(workload, path)
        loaded = load_workload(path)
        tree = RTree.bulk_load(clustered_points, 32, 16)
        a = tree.leaf_accesses_for_radius(workload.queries, workload.radii)
        b = tree.leaf_accesses_for_radius(loaded.queries, loaded.radii)
        assert np.array_equal(a, b)
