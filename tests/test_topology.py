"""Tests for the shared tree topology."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.topology import (
    Topology,
    page_capacities,
    split_child_counts,
    subtree_capacity,
    tree_height,
)


class TestTreeHeight:
    def test_single_leaf(self):
        assert tree_height(10, c_data=32, c_dir=16) == 1
        assert tree_height(32, c_data=32, c_dir=16) == 1

    def test_two_levels(self):
        assert tree_height(33, c_data=32, c_dir=16) == 2
        assert tree_height(32 * 16, c_data=32, c_dir=16) == 2

    def test_three_levels(self):
        assert tree_height(32 * 16 + 1, c_data=32, c_dir=16) == 3

    def test_empty(self):
        assert tree_height(0, c_data=32, c_dir=16) == 0

    def test_paper_texture60_height(self):
        # N=275,465 with the 8 KB / 60-d capacities gives height 5 as in
        # Section 5 of the paper.
        c_data, c_dir = page_capacities(8192, 60)
        assert (c_data, c_dir) == (34, 16)
        assert tree_height(275_465, c_data, c_dir) == 5

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            tree_height(-1, 32, 16)
        with pytest.raises(ValueError):
            tree_height(10, 0, 16)
        with pytest.raises(ValueError):
            tree_height(10, 32, 1)


class TestSubtreeCapacity:
    def test_levels(self):
        assert subtree_capacity(1, 32, 16) == 32
        assert subtree_capacity(2, 32, 16) == 512
        assert subtree_capacity(3, 32, 16) == 8192

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            subtree_capacity(0, 32, 16)


class TestSplitChildCounts:
    def test_even_split(self):
        left, right = split_child_counts(100, 2, 64)
        assert left + right == 100
        assert left == 50

    def test_odd_fanout_proportional(self):
        left, right = split_child_counts(90, 3, 64)
        assert left + right == 90
        assert left == pytest.approx(30, abs=1)

    def test_capacity_respected(self):
        left, right = split_child_counts(100, 2, 60)
        assert left <= 60 and right <= 60

    def test_overfull_rejected(self):
        with pytest.raises(ValueError):
            split_child_counts(129, 2, 64)

    def test_single_child_rejected(self):
        with pytest.raises(ValueError):
            split_child_counts(10, 1, 64)

    @given(
        st.integers(2, 32),          # fanout
        st.integers(1, 500),         # child capacity
        st.integers(0, 10_000),      # extra points beyond the minimum
    )
    @settings(max_examples=200, deadline=None)
    def test_invariants(self, fanout, cap, extra):
        n = min(fanout + extra, fanout * cap)
        f_left = fanout // 2
        f_right = fanout - f_left
        left, right = split_child_counts(n, fanout, cap)
        assert left + right == n
        assert left <= f_left * cap
        assert right <= f_right * cap
        assert left >= f_left    # at least one point per child
        assert right >= f_right


class TestTopologyStructure:
    def test_node_counts_root_and_leaves(self):
        topo = Topology(500, c_data=32, c_dir=16)
        assert topo.height == 2
        assert topo.nodes_at_level(topo.height) == 1
        assert topo.n_leaves == topo.nodes_at_level(1)

    def test_node_counts_monotone(self):
        topo = Topology(100_000, c_data=32, c_dir=16)
        counts = topo.nodes_per_level
        assert all(counts[i] > counts[i + 1] for i in range(len(counts) - 1))

    def test_leaf_count_bounds(self):
        topo = Topology(100_000, c_data=32, c_dir=16)
        assert topo.n_leaves >= math.ceil(100_000 / 32)
        # VAMSplit balances, so leaves stay reasonably full.
        assert topo.c_eff_data > 32 / 2

    def test_pts_identities(self):
        topo = Topology(50_000, c_data=34, c_dir=16)
        assert topo.pts(topo.height) == 50_000
        assert topo.pts(1) == pytest.approx(topo.c_eff_data)

    def test_fanout_bounds(self):
        topo = Topology(50_000, c_data=34, c_dir=16)
        for level in range(2, topo.height + 1):
            assert 1 <= topo.fanout(level) <= 16

    def test_fanout_level_validation(self):
        topo = Topology(1000, c_data=32, c_dir=16)
        with pytest.raises(ValueError):
            topo.fanout(1)

    def test_level_validation(self):
        topo = Topology(1000, c_data=32, c_dir=16)
        with pytest.raises(ValueError):
            topo.nodes_at_level(0)
        with pytest.raises(ValueError):
            topo.nodes_at_level(topo.height + 1)

    def test_partition_sizes_conserve_points(self):
        topo = Topology(50_000, c_data=34, c_dir=16)
        parts = topo.partition_sizes(topo.height, 50_000)
        assert sum(parts) == 50_000
        cap = subtree_capacity(topo.height - 1, 34, 16)
        assert all(1 <= p <= cap for p in parts)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Topology(0, 32, 16)
        with pytest.raises(ValueError):
            Topology(100, 0, 16)

    @given(st.integers(1, 200_000), st.integers(2, 64), st.integers(2, 32))
    @settings(max_examples=50, deadline=None)
    def test_counts_consistent_with_capacity(self, n, c_data, c_dir):
        topo = Topology(n, c_data, c_dir)
        for level in range(1, topo.height + 1):
            nodes = topo.nodes_at_level(level)
            # Enough nodes to hold all points at this level's capacity.
            assert nodes * subtree_capacity(level, c_data, c_dir) >= n
        assert topo.nodes_at_level(topo.height) == 1


class TestUpperTreeParameters:
    def test_sigma_upper(self):
        topo = Topology(10_000, 32, 16)
        assert topo.sigma_upper(1_000) == pytest.approx(0.1)
        assert topo.sigma_upper(20_000) == 1.0

    def test_sigma_lower_caps_at_one(self):
        topo = Topology(100_000, 34, 16)
        h_min, h_max = topo.h_upper_bounds(10_000)
        assert topo.sigma_lower(h_max, 10**9) == 1.0

    def test_paper_texture60_sigmas(self):
        # Table 3: N=275,465, M=10,000 -> sigma_upper = 0.0363 and
        # sigma_lower = 1 at h_upper = 3.
        topo = Topology(275_465, 34, 16)
        assert topo.sigma_upper(10_000) == pytest.approx(0.0363, abs=1e-4)
        assert topo.sigma_lower(3, 10_000) == 1.0
        assert topo.sigma_lower(2, 10_000) < 1.0

    def test_h_bounds_ordering(self):
        topo = Topology(275_465, 34, 16)
        h_min, h_max = topo.h_upper_bounds(10_000)
        assert 2 <= h_min <= h_max <= topo.height - 1

    def test_best_h_targets_memory(self):
        topo = Topology(275_465, 34, 16)
        best = topo.best_h_upper(10_000)
        h_min, h_max = topo.h_upper_bounds(10_000)
        assert h_min <= best <= h_max
        # The heuristic: lower trees' unsampled size closest to M.
        level = topo.upper_leaf_level(best)
        others = [
            abs(math.log(topo.pts(topo.upper_leaf_level(h)) / 10_000))
            for h in range(h_min, h_max + 1)
        ]
        assert abs(math.log(topo.pts(level) / 10_000)) == min(others)

    def test_short_tree_rejected(self):
        topo = Topology(100, 32, 16)  # height 2
        with pytest.raises(ValueError):
            topo.h_upper_bounds(50)

    def test_upper_leaf_level(self):
        topo = Topology(275_465, 34, 16)
        assert topo.upper_leaf_level(1) == topo.height
        assert topo.upper_leaf_level(topo.height) == 1

    def test_n_upper_leaves_grows_with_h(self):
        topo = Topology(275_465, 34, 16)
        ks = [topo.n_upper_leaves(h) for h in range(2, topo.height)]
        assert all(a < b for a, b in zip(ks, ks[1:]))


class TestPageCapacities:
    def test_paper_values_60d(self):
        assert page_capacities(8192, 60) == (34, 16)

    def test_small_page_floor(self):
        c_data, c_dir = page_capacities(1024, 617)
        assert c_data == 2 and c_dir == 2  # floored at the minimum

    def test_scaling_with_page_size(self):
        small = page_capacities(8192, 32)
        large = page_capacities(65536, 32)
        assert large[0] >= 8 * small[0] - 8
        assert large[1] > small[1]

    def test_invalid(self):
        with pytest.raises(ValueError):
            page_capacities(0, 60)
        with pytest.raises(ValueError):
            page_capacities(8192, 0)
