"""Tests for the tuning applications (Sections 6.1 and 6.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.dimensions import sweep_index_dimensions
from repro.apps.pagesize import sweep_page_sizes
from repro.disk.accounting import DiskParameters
from repro.workload.queries import density_biased_knn_workload


@pytest.fixture(scope="module")
def small_data():
    from repro.data import datasets

    return datasets.texture48(scale=0.15, seed=2)  # ~4k x 48


@pytest.fixture(scope="module")
def workload(small_data):
    return density_biased_knn_workload(small_data, 30, 21,
                                       np.random.default_rng(5))


class TestPageSizeSweep:
    @pytest.fixture(scope="class")
    def sweep(self, small_data, workload):
        return sweep_page_sizes(
            small_data, workload, memory=500,
            page_sizes=(4096, 8192, 32768, 131072),
            measure=True,
        )

    def test_accesses_decrease_with_page_size(self, sweep):
        predicted = [p.predicted_accesses for p in sweep.points]
        assert all(a >= b for a, b in zip(predicted, predicted[1:]))

    def test_prediction_tracks_measurement(self, sweep):
        """Figure 13: the model resembles the measured cost closely."""
        for point in sweep.points:
            assert point.measured_accesses is not None
            if point.measured_accesses >= 2:
                error = abs(point.predicted_accesses - point.measured_accesses)
                assert error / point.measured_accesses < 0.35

    def test_optima_agree(self, sweep):
        """The predicted optimal page size matches the measured one
        (the application's headline claim)."""
        assert sweep.measured_optimum is not None
        assert sweep.predicted_optimum.page_bytes == sweep.measured_optimum.page_bytes

    def test_capacities_scale_with_page(self, sweep):
        c_datas = [p.c_data for p in sweep.points]
        assert all(a < b for a, b in zip(c_datas, c_datas[1:]))

    def test_seconds_pricing_uses_scaled_transfer(self, small_data, workload):
        sweep = sweep_page_sizes(
            small_data, workload, memory=500, page_sizes=(8192,),
            base_disk=DiskParameters(t_seek=0.0, t_xfer=0.001),
        )
        point = sweep.points[0]
        assert point.predicted_seconds == pytest.approx(
            point.predicted_accesses * 0.001
        )

    def test_no_measurement_by_default(self, small_data, workload):
        sweep = sweep_page_sizes(small_data, workload, memory=500,
                                 page_sizes=(8192,))
        assert sweep.points[0].measured_accesses is None
        assert sweep.measured_optimum is None


class TestDimensionSweep:
    @pytest.fixture(scope="class")
    def sweep(self, small_data, workload):
        return sweep_index_dimensions(
            small_data, workload, (4, 12, 24, 48),
            memory=500, measure=True, candidates=True,
        )

    def test_accesses_increase_with_dimensions(self, sweep):
        """Figure 14: more indexed dimensions -> smaller pages -> more
        index page accesses."""
        predicted = [p.predicted_accesses for p in sweep.points]
        assert predicted[-1] > predicted[0]

    def test_prediction_tracks_measurement(self, sweep):
        for point in sweep.points:
            assert point.measured_accesses is not None
            if point.measured_accesses >= 2:
                error = abs(point.predicted_accesses - point.measured_accesses)
                assert error / point.measured_accesses < 0.35

    def test_candidates_decrease_with_dimensions(self, sweep):
        """More indexed dimensions filter better: fewer object-server
        candidates."""
        candidates = [p.measured_candidates for p in sweep.points]
        assert candidates[-1] < candidates[0]

    def test_candidate_prediction_tracks_measurement(self, sweep):
        for point in sweep.points:
            assert point.predicted_candidates == pytest.approx(
                point.measured_candidates, rel=0.3
            )

    def test_full_dim_filter_is_knn(self, sweep, workload):
        # Indexing all dimensions: candidates == points within the k-NN
        # radius, i.e. about k (floating-point ties at the radius can
        # drop a candidate).
        assert sweep.points[-1].measured_candidates >= workload.k - 1

    def test_invalid_dimension(self, small_data, workload):
        with pytest.raises(ValueError):
            sweep_index_dimensions(small_data, workload, (0,), memory=500)
        with pytest.raises(ValueError):
            sweep_index_dimensions(small_data, workload, (999,), memory=500)


class TestCoalescedSweeps:
    """``coalesce=True`` routes the measured curves through the fused
    ``count_grid`` dispatch; the sweeps must come back bit-identical."""

    def test_page_size_sweep_identical(self, small_data, workload):
        kwargs = dict(
            memory=500, page_sizes=(4096, 8192, 32768), measure=True,
            method="mini",
        )
        base = sweep_page_sizes(small_data, workload, **kwargs)
        fused = sweep_page_sizes(small_data, workload, coalesce=True,
                                 **kwargs)
        assert base.points == fused.points

    def test_dimension_sweep_identical(self, small_data, workload):
        kwargs = dict(memory=500, measure=True, method="mini")
        base = sweep_index_dimensions(small_data, workload, (4, 24),
                                      **kwargs)
        fused = sweep_index_dimensions(small_data, workload, (4, 24),
                                       coalesce=True, **kwargs)
        assert base.points == fused.points

    def test_governed_sweep_reads_fused_rows(self, small_data, workload):
        fused = sweep_page_sizes(
            small_data, workload, memory=500,
            page_sizes=(4096, 8192), measure=True, method="mini",
            coalesce=True, cell_deadline_s=60.0,
        )
        assert all(p.status == "ok" for p in fused.points)
        assert all(p.measured_accesses is not None for p in fused.points)
