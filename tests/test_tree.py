"""Tests for the R-tree query engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtree.tree import RTree


def brute_knn(points, query, k):
    dists = np.linalg.norm(points - query, axis=1)
    order = np.argsort(dists)
    return order[:k], dists[order[:k]]


class TestKNN:
    @pytest.fixture(scope="class")
    def tree(self, clustered_points):
        return RTree.bulk_load(clustered_points, c_data=32, c_dir=16)

    def test_matches_brute_force(self, tree, clustered_points, rng):
        for _ in range(10):
            query = clustered_points[rng.integers(len(clustered_points))]
            result = tree.knn(query, 5)
            _, expected = brute_knn(clustered_points, query, 5)
            assert np.allclose(np.sort(result.distances), expected)

    def test_external_query_point(self, tree, clustered_points, rng):
        query = clustered_points.mean(axis=0) + 10.0
        result = tree.knn(query, 3)
        _, expected = brute_knn(clustered_points, query, 3)
        assert np.allclose(np.sort(result.distances), expected)

    def test_k_one(self, tree, clustered_points):
        result = tree.knn(clustered_points[17], 1)
        assert result.point_ids[0] == 17
        assert result.distances[0] == pytest.approx(0.0)

    def test_k_exceeds_leaf(self, tree, clustered_points):
        result = tree.knn(clustered_points[0], 100)
        assert result.point_ids.shape[0] == 100
        _, expected = brute_knn(clustered_points, clustered_points[0], 100)
        assert np.allclose(np.sort(result.distances), expected)

    def test_invalid_k(self, tree):
        with pytest.raises(ValueError):
            tree.knn(np.zeros(tree.dim), 0)

    def test_access_counters_positive(self, tree, clustered_points):
        result = tree.knn(clustered_points[5], 21)
        assert 1 <= result.leaf_accesses <= tree.n_leaves
        assert result.node_accesses >= result.leaf_accesses

    def test_radius_property(self, tree, clustered_points):
        result = tree.knn(clustered_points[9], 7)
        assert result.radius == pytest.approx(result.distances[-1])

    def test_collect_leaves(self, tree, clustered_points):
        result = tree.knn(clustered_points[3], 21, collect_leaves=True)
        assert result.accessed_leaves is not None
        assert len(result.accessed_leaves) == result.leaf_accesses
        # The found neighbors must live in the accessed leaves.
        leaf_ids = np.concatenate([l.point_ids for l in result.accessed_leaves])
        assert set(result.point_ids.tolist()) <= set(leaf_ids.tolist())

    def test_no_collect_by_default(self, tree, clustered_points):
        result = tree.knn(clustered_points[3], 2)
        assert result.accessed_leaves is None


class TestOptimalityInvariant:
    """Leaf accesses of the best-first search equal the number of leaf
    MBRs intersecting the final k-NN sphere -- the identity the paper's
    prediction model rests on."""

    @given(st.integers(1, 25), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_accesses_equal_sphere_intersections(self, k, seed):
        gen = np.random.default_rng(seed)
        points = gen.random((400, 4))
        tree = RTree.bulk_load(points, c_data=16, c_dir=4)
        query = points[int(gen.integers(400))]
        result = tree.knn(query, k)
        sphere_count = tree.count_leaves_intersecting_sphere(query, result.radius)
        assert result.leaf_accesses == sphere_count

    def test_on_clustered_data(self, clustered_points):
        tree = RTree.bulk_load(clustered_points, c_data=32, c_dir=16)
        for i in (0, 100, 999):
            result = tree.knn(clustered_points[i], 21)
            assert result.leaf_accesses == tree.count_leaves_intersecting_sphere(
                clustered_points[i], result.radius
            )


class TestRangeQuery:
    @pytest.fixture(scope="class")
    def tree(self, clustered_points):
        return RTree.bulk_load(clustered_points, c_data=32, c_dir=16)

    def test_matches_brute_force(self, tree, clustered_points, rng):
        for _ in range(5):
            center = clustered_points[rng.integers(len(clustered_points))]
            lower, upper = center - 0.2, center + 0.2
            found = tree.range_query(lower, upper)
            inside = np.all(
                (clustered_points >= lower) & (clustered_points <= upper), axis=1
            )
            assert np.array_equal(found, np.flatnonzero(inside))

    def test_whole_space(self, tree, clustered_points):
        lower = clustered_points.min(axis=0)
        upper = clustered_points.max(axis=0)
        found = tree.range_query(lower, upper)
        assert found.shape[0] == clustered_points.shape[0]

    def test_empty_region(self, tree, clustered_points):
        far = clustered_points.max(axis=0) + 10.0
        found = tree.range_query(far, far + 1.0)
        assert found.shape[0] == 0


class TestLeafEnumeration:
    def test_leaf_corners_cover_points(self, clustered_points):
        tree = RTree.bulk_load(clustered_points, c_data=32, c_dir=16)
        lower, upper = tree.leaf_corners
        assert lower.shape == (tree.n_leaves, tree.dim)
        # Every point is inside at least one leaf box.
        for i in (0, 7, 2000):
            point = clustered_points[i]
            inside = np.all((lower <= point) & (point <= upper), axis=1)
            assert inside.any()

    def test_leaf_accesses_for_radius_vectorized(self, clustered_points, rng):
        tree = RTree.bulk_load(clustered_points, c_data=32, c_dir=16)
        queries = clustered_points[:5]
        radii = np.full(5, 0.3)
        counts = tree.leaf_accesses_for_radius(queries, radii)
        for i in range(5):
            assert counts[i] == tree.count_leaves_intersecting_sphere(
                queries[i], radii[i]
            )
