"""Tests for the charged I/O helpers shared by the phased predictors."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.sampling_io import read_query_points, scan_and_sample
from repro.disk.accounting import IOCost
from repro.disk.device import SimulatedDisk
from repro.disk.pagefile import PointFile


@pytest.fixture
def file(rng):
    disk = SimulatedDisk()
    return PointFile.from_points(disk, rng.random((500, 6)),
                                 points_per_page=10)


class TestReadQueryPoints:
    def test_returns_requested_rows(self, file):
        ids = np.array([3, 100, 499])
        rows = read_query_points(file, ids)
        assert np.allclose(rows, file.peek(0, 500)[ids])

    def test_charges_one_seek_per_query(self, file):
        before = file.disk.cost
        read_query_points(file, np.array([1, 2, 3, 4, 5]))
        cost = file.disk.cost - before
        # Eq. 2: q seeks + q transfers, even for adjacent pages.
        assert cost == IOCost(seeks=5, transfers=5)

    def test_repeated_ids_each_charged(self, file):
        before = file.disk.cost
        read_query_points(file, np.array([7, 7, 7]))
        assert (file.disk.cost - before) == IOCost(seeks=3, transfers=3)

    def test_empty_ids(self, file):
        rows = read_query_points(file, np.array([], dtype=np.int64))
        assert rows.shape == (0, 6)


class TestScanAndSample:
    def test_sample_comes_from_file(self, file, rng):
        sample = scan_and_sample(file, 50, rng)
        assert sample.shape == (50, 6)
        data = file.peek(0, 500)
        for row in sample[:5]:
            assert np.any(np.all(np.isclose(data, row), axis=1))

    def test_sample_without_replacement(self, file, rng):
        sample = scan_and_sample(file, 500, rng)
        # Full sample: every row exactly once (in file order).
        assert np.allclose(sample, file.peek(0, 500))

    def test_scan_cost(self, file, rng):
        before = file.disk.cost
        scan_and_sample(file, 50, rng)
        cost = file.disk.cost - before
        assert cost == IOCost(seeks=1, transfers=math.ceil(500 / 10))

    def test_deterministic_given_rng(self, file):
        a = scan_and_sample(file, 30, np.random.default_rng(9))
        b = scan_and_sample(file, 30, np.random.default_rng(9))
        assert np.array_equal(a, b)

    def test_invalid_sizes(self, file, rng):
        with pytest.raises(ValueError):
            scan_and_sample(file, 0, rng)
        with pytest.raises(ValueError):
            scan_and_sample(file, 501, rng)
