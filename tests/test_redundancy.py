"""Self-healing storage: at-rest rot, mirrors, parity, scrub.

At-rest corruption is the failure class retry cannot fix: the flip is
on the platter, so every reread returns the same bad bits.  These tests
pin the whole detect-to-repair pipeline -- rot persistence, honest
retry classification (exactly one probe, never the backoff schedule),
repair-on-read from replicas and parity, the explicit
``UnrecoverableCorruptionError`` when every copy is bad, the background
scrubber, and the zero-overhead guarantee when redundancy is off.

The recipe for deterministic rot: raise ``at_rest_corruption_rate`` to
1.0, issue one raw read of exactly the pages that should rot (the
sticky per-page verdict is drawn on first read), then drop the rate to
0.0 so undecided pages stay clean forever.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.predictor import IndexCostPredictor
from repro.disk.accounting import IOCost
from repro.disk.device import SimulatedDisk
from repro.disk.faults import FaultInjector
from repro.disk.pagefile import PointFile
from repro.disk.redundancy import RedundancyPolicy
from repro.disk.retry import RetryPolicy
from repro.errors import (
    DegradedResultWarning,
    InputValidationError,
    UnrecoverableCorruptionError,
)
from repro.runtime.budget import Budget
from repro.runtime.governor import Governor


def make_points(n=300, d=8, seed=0):
    return np.random.default_rng(seed).random((n, d))


def rot_pages(injector, first, count=1):
    """Deterministically rot exactly ``[first, first + count)``."""
    saved = injector.at_rest_corruption_rate
    injector.at_rest_corruption_rate = 1.0
    injector.read(first, count)
    injector.at_rest_corruption_rate = saved
    for page in range(first, first + count):
        assert injector.is_rotten(page)


def healing_file(points, *, redundancy, seed=1):
    injector = FaultInjector(SimulatedDisk(), seed=seed)
    file = PointFile.from_points(
        injector, points, retry=RetryPolicy(), verify_checksums=True,
        redundancy=redundancy,
    )
    return injector, file


class TestAtRestRot:
    def test_rot_is_sticky_across_rereads_and_reboot(self):
        injector = FaultInjector(
            SimulatedDisk(), at_rest_corruption_rate=1.0, seed=3
        )
        injector.read(0, 1)
        assert injector.is_rotten(0)
        flip = injector.at_rest_flips(0, 1)
        assert len(flip) == 1
        # A reread returns the same damage, not a fresh draw.
        injector.read(0, 1)
        assert injector.at_rest_flips(0, 1) == flip
        # Rot is media state: it survives a process reboot.
        injector.reboot()
        assert injector.is_rotten(0)
        assert injector.at_rest_flips(0, 1) == flip
        assert injector.rotten_pages == 1

    def test_write_heals_and_settles_the_verdict(self):
        injector = FaultInjector(
            SimulatedDisk(), at_rest_corruption_rate=1.0, seed=3
        )
        injector.read(0, 2)
        assert injector.rotten_pages == 2
        injector.write(0, 2)
        assert injector.rotten_pages == 0
        # The rewritten pages are durably clean: even at rate 1.0 a
        # later read must not re-rot them (no heal/re-rot livelock).
        injector.read(0, 2)
        assert injector.rotten_pages == 0

    def test_queries_are_non_destructive(self):
        injector = FaultInjector(
            SimulatedDisk(), at_rest_corruption_rate=1.0, seed=3
        )
        injector.read(4, 1)
        before = injector.at_rest_flips(4, 1)
        assert injector.at_rest_flips(4, 1) == before  # not consume-once

    def test_zero_rate_never_rots(self):
        injector = FaultInjector(SimulatedDisk(), seed=3)
        injector.read(0, 8)
        assert injector.rotten_pages == 0
        assert injector.at_rest_flips(0, 8) == []

    def test_rate_validation(self):
        with pytest.raises(Exception):
            FaultInjector(SimulatedDisk(), at_rest_corruption_rate=1.5)


class TestRepairOnRead:
    def test_mirror_repair_returns_exact_bits(self):
        points = make_points()
        injector, file = healing_file(
            points, redundancy=RedundancyPolicy(replication_factor=2)
        )
        rot_pages(injector, file.start_page)
        data = file.read_range(0, file.n_points)
        assert np.array_equal(data, points)
        assert file.redundancy.repairs == 1
        assert not injector.is_rotten(file.start_page)

    def test_parity_repair_returns_exact_bits(self):
        points = make_points()
        injector, file = healing_file(
            points, redundancy=RedundancyPolicy(parity=True)
        )
        rot_pages(injector, file.start_page + 1)
        data = file.read_range(0, file.n_points)
        assert np.array_equal(data, points)
        assert file.redundancy.repairs == 1

    def test_repair_heals_durably(self):
        points = make_points()
        injector, file = healing_file(
            points, redundancy=RedundancyPolicy(replication_factor=2)
        )
        rot_pages(injector, file.start_page)
        file.read_range(0, file.n_points)
        assert file.redundancy.repairs == 1
        # The healed page was rewritten (and its verdict settled):
        # rereads need no further repair.
        again = file.read_range(0, file.n_points)
        assert np.array_equal(again, points)
        assert file.redundancy.repairs == 1

    def test_unreplicated_rot_is_unrecoverable(self):
        points = make_points()
        injector, file = healing_file(points, redundancy=None)
        rot_pages(injector, file.start_page)
        with pytest.raises(UnrecoverableCorruptionError) as info:
            file.read_range(0, file.n_points)
        assert info.value.page == file.start_page
        assert info.value.retryable is False

    def test_all_copies_bad_is_unrecoverable(self):
        points = make_points()
        injector, file = healing_file(
            points, redundancy=RedundancyPolicy(replication_factor=2)
        )
        replica_base = file.redundancy.replica_bases[0]
        rot_pages(injector, file.start_page)
        rot_pages(injector, replica_base)
        with pytest.raises(UnrecoverableCorruptionError) as info:
            file.read_range(0, file.n_points)
        assert info.value.copies_tried == 2

    def test_redundancy_cost_is_a_separate_ledger(self):
        points = make_points()
        injector, file = healing_file(
            points, redundancy=RedundancyPolicy(replication_factor=3)
        )
        base = file.redundancy_cost
        assert base.is_zero
        file.write_range(0, points[: file.points_per_page])
        cost = file.redundancy_cost
        # Two replicas, one single-page write each.
        assert cost.transfers == 2
        assert cost.seeks == 2


class TestHonestRetryClassification:
    """At-rest failures charge exactly one probe, never the backoff."""

    def test_repairable_rot_charges_one_retry(self):
        points = make_points()
        injector, file = healing_file(
            points, redundancy=RedundancyPolicy(replication_factor=2)
        )
        rot_pages(injector, file.start_page)
        file.read_range(0, file.n_points)
        assert injector.cost.retries == 1

    def test_unrecoverable_rot_charges_one_retry(self):
        points = make_points()
        injector, file = healing_file(points, redundancy=None)
        rot_pages(injector, file.start_page)
        with pytest.raises(UnrecoverableCorruptionError):
            file.read_range(0, file.n_points)
        assert injector.cost.retries == 1

    def test_in_transit_corruption_still_retries_as_before(self):
        points = make_points()
        injector = FaultInjector(
            SimulatedDisk(), silent_corruption_rate=0.8, seed=0
        )
        file = PointFile.from_points(
            injector, points, retry=RetryPolicy(), verify_checksums=True
        )
        data = file.read_range(0, file.n_points)
        assert np.array_equal(data, points)
        # Transit flips were caught and re-read through the normal
        # retry path; none of them is platter damage.
        assert injector.cost.retries > 0
        assert injector.rotten_pages == 0


class TestZeroOverhead:
    def test_inactive_policy_matches_no_policy_exactly(self):
        points = make_points()
        plain_disk, rf1_disk = SimulatedDisk(), SimulatedDisk()
        plain = PointFile.from_points(
            plain_disk, points, verify_checksums=True
        )
        rf1 = PointFile.from_points(
            rf1_disk, points, verify_checksums=True,
            redundancy=RedundancyPolicy(replication_factor=1),
        )
        assert rf1.redundancy is None  # no manager, no allocations
        assert plain_disk.allocated_pages == rf1_disk.allocated_pages
        for file in (plain, rf1):
            file.read_range(0, file.n_points)
            file.write_range(0, points[:10])
            file.truncate(len(points) - 5)
        assert plain_disk.cost == rf1_disk.cost
        assert rf1.redundancy_cost.is_zero

    def test_facade_replication_factor_one_is_free(self):
        points = make_points(n=400, d=6, seed=2)
        plain = IndexCostPredictor(dim=6, memory=200)
        rf1 = IndexCostPredictor(dim=6, memory=200, replication_factor=1)
        workload = plain.make_workload(points, 10, 5, seed=3)
        a = plain.predict(points, workload, seed=0)
        b = rf1.predict(points, workload, seed=0)
        assert np.array_equal(a.per_query, b.per_query)
        assert a.io_cost == b.io_cost
        assert "redundancy" not in b.detail


class TestScrub:
    def test_scrub_repairs_everything_then_reports_clean(self):
        points = make_points(n=1200)
        injector, file = healing_file(
            points,
            redundancy=RedundancyPolicy(replication_factor=2, parity=True),
        )
        injector.at_rest_corruption_rate = 0.4
        report = file.scrub()
        assert report.pages_total == file.n_pages
        assert report.pages_scanned == file.n_pages
        assert report.completed
        assert not report.unrecoverable
        assert report.repaired >= 1
        assert not report.clean
        second = file.scrub()
        assert second.clean and second.completed

    def test_scrub_requires_checksums(self):
        file = PointFile.from_points(SimulatedDisk(), make_points())
        with pytest.raises(InputValidationError, match="verify_checksums"):
            file.scrub()

    def test_scrub_inventories_unrecoverable_without_raising(self):
        points = make_points()
        injector, file = healing_file(points, redundancy=None)
        rot_pages(injector, file.start_page, 2)
        report = file.scrub()
        assert report.completed
        assert report.unrecoverable == (file.start_page,
                                        file.start_page + 1)

    def test_governed_scrub_stops_explicitly(self):
        points = make_points(n=1200)
        injector, file = healing_file(
            points, redundancy=RedundancyPolicy(replication_factor=2)
        )
        governor = Governor(Budget(max_io_ops=4))
        report = file.scrub(governor=governor)
        assert not report.completed
        assert report.exhausted is not None
        assert report.exhausted["error"] == "BudgetExceededError"
        assert report.pages_scanned < report.pages_total

    def test_scrub_charges_the_ledger(self):
        points = make_points()
        injector, file = healing_file(
            points, redundancy=RedundancyPolicy(replication_factor=2)
        )
        before = injector.cost
        report = file.scrub()
        assert report.io_cost == injector.cost - before
        assert report.io_cost.transfers >= file.n_pages


class TestFacadeIntegration:
    def test_healed_prediction_is_bit_identical(self):
        points = make_points(n=800, d=6, seed=4)
        clean = IndexCostPredictor(dim=6, memory=200)
        workload = clean.make_workload(points, 10, 5, seed=3)
        reference = clean.predict(points, workload, seed=0)
        healed = IndexCostPredictor(
            dim=6, memory=200, at_rest_corruption_rate=0.05,
            replication_factor=2, parity=True, fault_seed=0,
        )
        result = healed.predict(points, workload, seed=0)
        assert np.array_equal(result.per_query, reference.per_query)
        detail = result.detail["redundancy"]
        assert detail["replication_factor"] == 2 and detail["parity"]
        assert detail["redundancy_transfers"] >= 0

    def test_unreplicated_rot_degrades_with_media_cause(self):
        points = make_points(n=800, d=6, seed=4)
        predictor = IndexCostPredictor(
            dim=6, memory=200, at_rest_corruption_rate=0.5,
            verify_checksums=True, fault_seed=0,
        )
        workload = predictor.make_workload(points, 10, 5, seed=3)
        with pytest.warns(DegradedResultWarning):
            result = predictor.predict(points, workload, seed=0)
        record = result.detail["degradation"]
        causes = {a["cause"] for a in record["attempts"]}
        assert "media" in causes
        assert record["method_used"] in ("mini", "baseline")

    def test_scrub_report_attached_to_prediction(self):
        points = make_points(n=800, d=6, seed=4)
        predictor = IndexCostPredictor(
            dim=6, memory=200, at_rest_corruption_rate=0.05,
            replication_factor=2, parity=True, scrub=True, fault_seed=0,
        )
        assert predictor.verify_checksums  # auto-enabled by scrub
        workload = predictor.make_workload(points, 10, 5, seed=3)
        result = predictor.predict(points, workload, seed=0)
        report = result.detail["scrub"]
        assert report["completed"]
        assert report["unrecoverable"] == []

    def test_replication_factor_validation(self):
        with pytest.raises(InputValidationError, match="replication_factor"):
            IndexCostPredictor(dim=4, replication_factor=0)
        with pytest.raises(InputValidationError, match="at_rest"):
            IndexCostPredictor(dim=4, at_rest_corruption_rate=2.0)
