"""Tests for elastic cluster topology: the epoch fence, runtime
scale-out/in, shard splitting, drift-triggered re-tuning, and the
governed reorganization budget.

The guarantees under test:

* the routing-table epoch only moves forward, a dispatch pinned to a
  fenced-off epoch is refused with a typed error, and the op books
  reconcile exactly across every epoch boundary;
* scale-out warms the new replica bit-identically from verified peer
  bytes (zero refits; a corrupt donor is skipped, never trusted);
* scale-in drains in-flight legs and folds the retiring replica's
  ledgers -- no charge vanishes -- and a dispatch racing the removal
  takes the router's ghost-skip path, never an ``AttributeError``;
* a split mints never-reused successor ids, re-tunes each half on its
  own workload slice, and answers straddling requests bit-identically
  to the pre-split cluster;
* drift proposals fire only past the threshold with enough
  observations behind them, and every reorganization is admitted
  against the reorg budget *before* surgery (refusal leaves the
  topology untouched).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as hyp_st

from repro.cluster import PredictionCluster, RoutingTable
from repro.cluster.elasticity import DriftDetector
from repro.errors import (
    BudgetExceededError,
    InputValidationError,
    PredictionError,
    StaleRoutingEpochError,
)
from repro.runtime.budget import Budget
from repro.workload.queries import (
    KNNWorkload,
    density_biased_knn_workload,
    exact_knn_radii,
)

N_PER_BLOB, DIM, MEMORY = 120, 4, 100


@pytest.fixture(scope="module")
def blob_data():
    rng = np.random.default_rng(0)
    return np.vstack([
        rng.normal(0.0, 1.0, (N_PER_BLOB, DIM)),
        rng.normal(6.0, 0.5, (N_PER_BLOB, DIM)),
    ])


@pytest.fixture(scope="module")
def tuning_workload(blob_data):
    return density_biased_knn_workload(
        blob_data, 16, 4, np.random.default_rng(1)
    )


@pytest.fixture
def cluster(blob_data, tuning_workload, tmp_path):
    built = PredictionCluster(
        blob_data, tuning_workload, artifact_root=tmp_path,
        memory=MEMORY,
    )
    yield built
    built.stop()


def shard_workload(cluster, shard, n=6, seed=2):
    return density_biased_knn_workload(
        cluster.shard_points[shard], n, 4, np.random.default_rng(seed)
    )


class TestEpochFence:
    def test_install_rejects_epoch_regression(self, cluster):
        current = cluster.router.table
        stale = RoutingTable(
            version=current.version + 1, epoch=current.epoch - 1,
            owners=current.owners, costs=current.costs,
        )
        with pytest.raises(InputValidationError, match="regression"):
            cluster.router.install_table(stale)

    def test_install_rejects_same_epoch_version_regression(self, cluster):
        current = cluster.router.table
        cluster.router.install_table(RoutingTable(
            version=current.version + 1, epoch=current.epoch,
            owners=current.owners, costs=current.costs,
        ))
        with pytest.raises(InputValidationError, match="regression"):
            cluster.router.install_table(current)

    def test_same_epoch_version_bump_is_not_a_topology_change(self, cluster):
        current = cluster.router.table
        cluster.router.install_table(RoutingTable(
            version=current.version + 1, epoch=current.epoch,
            owners=current.owners, costs=current.costs,
        ))
        assert cluster.router.table.epoch == current.epoch
        # unpinned and correctly-pinned dispatches both serve
        workload = shard_workload(cluster, 0)
        assert cluster.request(0, workload).ok
        assert cluster.request(0, workload, epoch=current.epoch).ok

    def test_pinned_stale_epoch_is_typed_and_retryable(self, cluster):
        workload = shard_workload(cluster, 0)
        pinned = cluster.router.table.epoch
        cluster.add_replica()
        with pytest.raises(StaleRoutingEpochError) as caught:
            cluster.request(0, workload, epoch=pinned)
        assert caught.value.presented == pinned
        assert caught.value.current == pinned + 1
        assert caught.value.shard == 0
        assert cluster.router.metrics()["stale_rejections"] == 1
        # the refusal happened before any leg was submitted
        assert cluster.router.metrics()["dispatches"] == 0
        # refresh-and-retry: the fresh epoch serves
        retry = cluster.request(
            0, workload, epoch=cluster.router.table.epoch
        )
        assert retry.ok
        assert retry.routing_epoch == pinned + 1

    def test_books_reconcile_across_epochs(self, cluster):
        """Satellite: charged traffic on both sides of a fence must
        land in per-epoch books that sum to the drained totals."""
        workloads = {s: shard_workload(cluster, s) for s in (0, 1)}
        for shard, workload in workloads.items():
            assert cluster.request(
                shard, workload, method="cutoff", seed=3
            ).ok
        pinned = cluster.router.table.epoch
        cluster.add_replica()
        with pytest.raises(StaleRoutingEpochError):
            cluster.request(0, workloads[0], epoch=pinned)
        for shard, workload in workloads.items():
            assert cluster.request(
                shard, workload, method="cutoff", seed=4
            ).ok
        cluster.wait_idle()
        drained = cluster.router.drain()
        books = cluster.router.epoch_ops()
        assert sorted(books) == [pinned, pinned + 1]
        for shard in (0, 1):
            across = sum(
                book.get(shard, 0) for book in books.values()
            )
            assert across == drained[shard] > 0
            assert cluster.charged_ops(shard) == drained[shard]


class TestScaleOut:
    def test_warm_start_from_peers_zero_refits(self, cluster):
        report = cluster.add_replica()
        assert report["refits"] == 0
        assert {w["shard"] for w in report["warmed"]} == {0, 1}
        assert all(
            w["via"].startswith("peer:") for w in report["warmed"]
        )
        for shard in (0, 1):
            assert report["replica"] in \
                cluster.router.table.owners_of(shard)

    def test_scaled_replica_serves_bit_identically(self, cluster):
        workload = shard_workload(cluster, 0)
        reference = cluster.request(0, workload)
        assert reference.ok
        report = cluster.add_replica(latency_factor=0.25)
        response = cluster.request(0, workload)
        assert response.ok
        # cheapest owner: the new replica is now the primary
        assert response.served_by == report["replica"]
        assert np.array_equal(
            response.result.per_query, reference.result.per_query
        )

    def test_corrupt_donor_is_skipped(self, cluster):
        donor = cluster.router.table.owners_of(0)[0]
        peer = cluster.router.table.owners_of(0)[1]
        cluster.corrupt_artifact(donor, 0)
        report = cluster.add_replica()
        warmed = {w["shard"]: w["via"] for w in report["warmed"]}
        assert warmed[0] == f"peer:{peer}"
        assert report["refits"] == 0

    def test_duplicate_name_refused(self, cluster):
        with pytest.raises(InputValidationError, match="already"):
            cluster.add_replica("replica-0")

    def test_unknown_shard_placement_refused(self, cluster):
        with pytest.raises(InputValidationError, match="unknown shard"):
            cluster.add_replica(shards=[99])


class TestScaleIn:
    def test_remove_folds_books_and_fences(self, cluster):
        report = cluster.add_replica(latency_factor=0.25)
        name = report["replica"]
        workload = shard_workload(cluster, 0)
        charged = cluster.request(0, workload, method="cutoff", seed=5)
        assert charged.ok and charged.served_by == name
        cluster.wait_idle()
        before = cluster.charged_ops(0)
        assert before > 0
        epoch_before = cluster.router.table.epoch
        removal = cluster.remove_replica(name)
        assert removal["epoch"] == epoch_before + 1
        assert name not in cluster.replicas
        assert name in cluster.retired_replicas
        assert cluster.retired_replicas[name].retired
        for shard in (0, 1):
            assert name not in cluster.router.table.owners_of(shard)
        # the retiring replica's charges folded, nothing vanished
        assert cluster.charged_ops(0) == before
        assert removal["retired_ops"][0] > 0

    def test_remove_last_owner_refused(self, cluster):
        owners = cluster.router.table.owners_of(0)
        cluster.remove_replica(owners[0])
        with pytest.raises(InputValidationError, match="last owner"):
            cluster.remove_replica(owners[1])

    def test_retired_replica_cannot_restart(self, cluster):
        report = cluster.add_replica()
        replica = cluster.replicas[report["replica"]]
        cluster.remove_replica(report["replica"])
        with pytest.raises(InputValidationError, match="retired"):
            replica.restart()

    def test_dispatch_racing_removal_is_never_untyped(self, cluster):
        """Satellite regression: a dispatch that read the table before
        a removal nulled the replica's service must take the router's
        ghost-skip path -- a served/degraded/typed verdict -- never an
        ``AttributeError`` from ``replica.service.submit``."""
        report = cluster.add_replica(latency_factor=0.25)
        name = report["replica"]
        workload = shard_workload(cluster, 0)
        failures: list[BaseException] = []
        statuses: list[str] = []
        start = threading.Event()

        def hammer() -> None:
            start.wait()
            for _ in range(60):
                try:
                    statuses.append(cluster.request(0, workload).status)
                except StaleRoutingEpochError:  # pragma: no cover
                    statuses.append("stale")
                except BaseException as error:  # pragma: no cover
                    failures.append(error)
                    return

        threads = [
            threading.Thread(target=hammer, daemon=True)
            for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        start.set()
        cluster.remove_replica(name)
        for thread in threads:
            thread.join(timeout=30.0)
        assert not failures, f"untyped escape: {failures!r}"
        assert statuses and all(
            status in {"ok", "degraded", "error", "stale"}
            for status in statuses
        )
        # the shard kept its surviving owners: requests still serve
        assert cluster.request(0, workload).ok


class TestSplit:
    def test_split_mints_fresh_ids_and_retires_parent(self, cluster):
        epoch_before = cluster.router.table.epoch
        children = cluster.split_shard(1)
        assert len(children) == 2
        assert set(children).isdisjoint({0, 1})
        assert sorted(cluster.active_shards()) == sorted([0, *children])
        assert cluster.retired_shards[1]["children"] == children
        assert cluster.router.table.epoch == epoch_before + 1
        assert cluster.router.table.owners_of(1) == ()
        # children partition the parent's points exactly
        total = sum(
            cluster.shard_points[child].shape[0] for child in children
        )
        assert total == cluster.shard_points[1].shape[0]
        # each child was re-tuned on its own slice and serves
        for child in children:
            assert cluster.shard_configs[child].n_tuning_queries > 0
            assert cluster.request(
                child, shard_workload(cluster, child)
            ).ok

    def test_split_books_cover_parent_and_children(self, cluster):
        workload = shard_workload(cluster, 1)
        assert cluster.request(1, workload, method="cutoff", seed=6).ok
        cluster.wait_idle()
        parent_ops = cluster.charged_ops(1)
        assert parent_ops > 0
        children = cluster.split_shard(1)
        for child in children:
            assert cluster.request(
                child, shard_workload(cluster, child),
                method="cutoff", seed=7,
            ).ok
        cluster.wait_idle()
        drained = cluster.router.drain()
        # the parent's charges survived the split in the retired books
        assert cluster.charged_ops(1) == parent_ops == drained[1]
        for child in children:
            assert cluster.charged_ops(child) == drained[child] > 0

    def test_straddling_request_is_bit_identical(self, cluster):
        """A request admitted under the pre-split epoch and still in
        flight during the handoff must answer exactly as the pre-split
        cluster would have."""
        workload = shard_workload(cluster, 1)
        reference = cluster.request(1, workload)
        assert reference.ok
        pre_epoch = cluster.router.table.epoch
        for name in cluster.router.table.owners_of(1):
            cluster.replicas[name].slow_s = 0.25
        straddler: list = []

        def submit() -> None:
            straddler.append(cluster.request(1, workload))

        thread = threading.Thread(target=submit, daemon=True)
        thread.start()
        import time
        time.sleep(0.08)  # the leg is in flight, unresolved
        cluster.split_shard(1)  # fences, then drains the straddler
        thread.join(timeout=30.0)
        for name in cluster.replicas:
            cluster.replicas[name].slow_s = 0.0
        (response,) = straddler
        assert response.ok
        assert response.routing_epoch == pre_epoch
        assert np.array_equal(
            response.result.per_query, reference.result.per_query
        )

    def test_sliver_split_refused_atomically(self, tmp_path):
        """A split whose half could not carry a fitted geometry is
        refused up front; the topology is untouched."""
        rng = np.random.default_rng(3)
        data = np.vstack([
            rng.normal(0.0, 1.0, (200, DIM)),
            rng.normal(8.0, 0.05, (10, DIM)),
        ])
        queries = np.vstack([data[:14], data[200:202]])
        ids = np.concatenate([np.arange(14), np.arange(200, 202)])
        tuning = KNNWorkload(
            k=4, query_ids=ids, queries=queries,
            radii=exact_knn_radii(data, queries, 4),
        )
        built = PredictionCluster(
            data, tuning, artifact_root=tmp_path, memory=MEMORY,
        )
        try:
            small = min(
                built.active_shards(),
                key=lambda s: built.shard_points[s].shape[0],
            )
            epoch = built.router.table.epoch
            active = built.active_shards()
            with pytest.raises(PredictionError, match="sliver"):
                built.split_shard(small)
            assert built.router.table.epoch == epoch
            assert built.active_shards() == active
        finally:
            built.stop()


class TestDrift:
    def test_detector_needs_observations(self):
        detector = DriftDetector(threshold=0.3, min_observations=10)
        detector.freeze({
            0: np.zeros(2), 1: np.full(2, 10.0),
        })
        detector.observe(0, np.full((5, 2), 5.0))
        assert detector.drift(0) == 0.0  # below min_observations
        assert detector.proposals() == []
        detector.observe(0, np.full((10, 2), 5.0))
        assert detector.drift(0) == pytest.approx(
            np.linalg.norm([5.0, 5.0]) / np.linalg.norm([10.0, 10.0])
        )
        proposals = detector.proposals()
        assert [p.shard for p in proposals] == [0]
        assert proposals[0].action == "re-tune"

    def test_freeze_rescinds_observations(self):
        detector = DriftDetector(threshold=0.3, min_observations=4)
        detector.freeze({0: np.zeros(2), 1: np.full(2, 10.0)})
        detector.observe(0, np.full((8, 2), 5.0))
        assert detector.proposals()
        detector.freeze({0: np.full(2, 5.0), 1: np.full(2, 10.0)})
        assert detector.drift(0) == 0.0
        assert detector.proposals() == []

    def test_drift_triggered_retune_end_to_end(
        self, blob_data, tuning_workload, tmp_path
    ):
        built = PredictionCluster(
            blob_data, tuning_workload, artifact_root=tmp_path,
            memory=MEMORY, drift_threshold=0.2,
            min_drift_observations=8,
        )
        try:
            # live queries concentrated away from shard 0's centroid
            points = built.shard_points[0]
            shifted = points[:12] + 2.5
            drifted = KNNWorkload(
                k=4, query_ids=np.arange(12), queries=shifted,
                radii=exact_knn_radii(points, shifted, 4),
            )
            for _ in range(2):
                assert built.request(0, drifted).ok
            proposals = built.topology.drift.proposals()
            assert [p.shard for p in proposals] == [0]
            applied = built.topology.apply_drift_proposals()
            assert len(applied) == 1
            successor = applied[0]["successor"]
            assert successor not in (0, 1)
            assert 0 not in built.active_shards()
            assert successor in built.active_shards()
            assert built.retired_shards[0]["reason"] == "re-tune"
            # the successor was tuned on the *drifted* workload
            assert built.shard_configs[successor].n_tuning_queries == 24
            assert built.request(
                successor, shard_workload(built, successor)
            ).ok
        finally:
            built.stop()


class TestGovernedReorg:
    def test_budget_refusal_leaves_topology_unchanged(
        self, blob_data, tuning_workload, tmp_path
    ):
        built = PredictionCluster(
            blob_data, tuning_workload, artifact_root=tmp_path,
            memory=MEMORY, reorg_budget=Budget(max_io_ops=1),
        )
        try:
            epoch = built.router.table.epoch
            active = built.active_shards()
            with pytest.raises(BudgetExceededError):
                built.split_shard(1)
            assert built.router.table.epoch == epoch
            assert built.active_shards() == active
            assert built.router.table.owners_of(1) != ()
            assert built.topology.events == []
        finally:
            built.stop()

    def test_reorg_charges_actual_tuning_ops(self, cluster):
        assert cluster.topology.governor.spent_ops == 0
        cluster.split_shard(1)
        children = cluster.retired_shards[1]["children"]
        expected = sum(
            cluster.shard_configs[child].tuning_io_ops
            for child in children
        )
        assert expected > 0
        assert cluster.topology.governor.spent_ops == expected

    def test_tuning_cost_is_on_the_config(self, cluster):
        for shard in cluster.active_shards():
            config = cluster.shard_configs[shard]
            assert config.tuning_io_ops > 0
            assert config.as_dict()["tuning_io_ops"] == \
                config.tuning_io_ops


class TestMerge:
    def test_merge_mints_fresh_id_and_retires_parents(self, cluster):
        epoch_before = cluster.router.table.epoch
        points_before = {
            s: cluster.shard_points[s].shape[0]
            for s in cluster.active_shards()
        }
        merged = cluster.merge_shards(0, 1)
        assert merged not in (0, 1)
        assert cluster.active_shards() == [merged]
        assert cluster.router.table.epoch == epoch_before + 1
        for parent in (0, 1):
            assert cluster.retired_shards[parent]["children"] == (merged,)
            assert cluster.retired_shards[parent]["reason"] == "merge"
            assert cluster.router.table.owners_of(parent) == ()
        # the child holds exactly the parents' points and was re-tuned
        # on the *concatenated* tuning slices
        assert cluster.shard_points[merged].shape[0] == \
            points_before[0] + points_before[1]
        assert cluster.shard_configs[merged].n_tuning_queries == \
            cluster.tuning_slices[0].query_ids.size + \
            cluster.tuning_slices[1].query_ids.size
        assert cluster.request(
            merged, shard_workload(cluster, merged)
        ).ok

    def test_merge_books_cover_parents_and_child(self, cluster):
        for shard in (0, 1):
            assert cluster.request(
                shard, shard_workload(cluster, shard),
                method="cutoff", seed=8,
            ).ok
        cluster.wait_idle()
        parent_ops = {s: cluster.charged_ops(s) for s in (0, 1)}
        assert all(v > 0 for v in parent_ops.values())
        merged = cluster.merge_shards(0, 1)
        assert cluster.request(
            merged, shard_workload(cluster, merged),
            method="cutoff", seed=9,
        ).ok
        cluster.wait_idle()
        books = cluster.router.epoch_ops()
        drained = cluster.router.drain()
        # the parents' pre-merge charges survived the fold exactly
        for shard in (0, 1):
            assert cluster.charged_ops(shard) == parent_ops[shard] \
                == drained[shard]
        assert cluster.charged_ops(merged) == drained[merged] > 0
        # per-epoch books sum to the drained totals to the op
        across: dict[int, int] = {}
        for book in books.values():
            for shard, ops in book.items():
                across[shard] = across.get(shard, 0) + ops
        for shard, total in drained.items():
            assert across.get(shard, 0) == total

    def test_straddling_request_is_bit_identical(self, cluster):
        """A request admitted under the pre-merge epoch and still in
        flight during the handoff must answer exactly as the pre-merge
        cluster would have -- the parent's captured tenant serves it."""
        workload = shard_workload(cluster, 0)
        reference = cluster.request(0, workload)
        assert reference.ok
        pre_epoch = cluster.router.table.epoch
        for name in cluster.router.table.owners_of(0):
            cluster.replicas[name].slow_s = 0.25
        straddler: list = []

        def submit() -> None:
            straddler.append(cluster.request(0, workload))

        thread = threading.Thread(target=submit, daemon=True)
        thread.start()
        import time
        time.sleep(0.08)  # the leg is in flight, unresolved
        cluster.merge_shards(0, 1)  # fences, then drains the straddler
        thread.join(timeout=30.0)
        for name in cluster.replicas:
            cluster.replicas[name].slow_s = 0.0
        (response,) = straddler
        assert response.ok
        assert response.routing_epoch == pre_epoch
        assert np.array_equal(
            response.result.per_query, reference.result.per_query
        )

    def test_merge_validates_identity_and_liveness(self, cluster):
        with pytest.raises(InputValidationError):
            cluster.merge_shards(0, 0)
        with pytest.raises(InputValidationError):
            cluster.merge_shards(0, 99)
        merged = cluster.merge_shards(0, 1)
        # a retired parent cannot merge again
        with pytest.raises(InputValidationError):
            cluster.merge_shards(merged, 0)

    def test_merge_refused_when_it_would_retrip_split(
        self, blob_data, tuning_workload, tmp_path
    ):
        """A merge whose freshly tuned cost would immediately be a
        split candidate is refused atomically: hysteresis must not let
        the controller undo itself one surgery later.  The survivor is
        made genuinely cheap so the merged shard's cost diverges past
        ``split_when`` against the post-merge sibling median."""
        import dataclasses

        built = PredictionCluster(
            blob_data, tuning_workload, artifact_root=tmp_path,
            memory=MEMORY, n_shards=3,
        )
        try:
            active = built.active_shards()
            survivor = active[2]
            config = built.shard_configs[survivor]
            built.shard_configs[survivor] = dataclasses.replace(
                config, predicted_seconds=config.predicted_seconds / 100
            )
            epoch = built.router.table.epoch
            with pytest.raises(PredictionError, match="re-trip"):
                built.merge_shards(active[0], active[1])
            assert built.router.table.epoch == epoch
            assert built.active_shards() == active
        finally:
            built.stop()

    def test_merge_budget_refusal_leaves_topology_unchanged(
        self, blob_data, tuning_workload, tmp_path
    ):
        built = PredictionCluster(
            blob_data, tuning_workload, artifact_root=tmp_path,
            memory=MEMORY, reorg_budget=Budget(max_io_ops=1),
        )
        try:
            epoch = built.router.table.epoch
            active = built.active_shards()
            with pytest.raises(BudgetExceededError):
                built.merge_shards(0, 1)
            assert built.router.table.epoch == epoch
            assert built.active_shards() == active
            assert built.topology.events == []
        finally:
            built.stop()


class TestMergeCandidates:
    def test_two_shard_cluster_has_no_external_baseline(self, cluster):
        # any balanced pair rates 2.0 against itself: candidacy with
        # fewer than 3 active shards would be self-referential, so the
        # detector reports none and a 2-shard cluster never auto-merges
        assert cluster.topology.merge_candidates() == []

    def test_over_partitioned_pair_is_a_candidate(
        self, blob_data, tuning_workload, tmp_path
    ):
        built = PredictionCluster(
            blob_data, tuning_workload, artifact_root=tmp_path,
            memory=MEMORY, n_shards=3, merge_when=2.5,
        )
        try:
            candidates = built.topology.merge_candidates()
            assert candidates, "over-partitioned pair not detected"
            # greedy selection never reuses a shard across pairs
            seen: set[int] = set()
            for candidate in candidates:
                a, b = candidate["pair"]
                assert {a, b}.isdisjoint(seen)
                seen |= {a, b}
                assert candidate["ratio"] <= 2.5
            assert "merge" in built.topology.proposals()
        finally:
            built.stop()

    def test_hysteresis_band_is_validated(
        self, blob_data, tuning_workload, tmp_path
    ):
        with pytest.raises(InputValidationError):
            PredictionCluster(
                blob_data, tuning_workload, artifact_root=tmp_path,
                memory=MEMORY, split_when=2.0, merge_when=2.0,
            )


class TestLastOwnerRace:
    def test_remove_last_owner_refused_under_dispatch_fire(self, cluster):
        """The last-owner refusal must hold while dispatches race it:
        no request may error, the table must not move, and the typed
        refusal must fire every time."""
        shard = 0
        owners = cluster.router.table.owners_of(shard)
        assert len(owners) >= 2
        # scale the other owners in gracefully: the survivor becomes
        # the last owner of the shard
        for name in owners[1:]:
            cluster.remove_replica(name)
        last = owners[0]
        assert cluster.router.table.owners_of(shard) == (last,)
        epoch = cluster.router.table.epoch

        workload = shard_workload(cluster, shard)
        stop = threading.Event()
        statuses: list[str] = []

        def hammer() -> None:
            while not stop.is_set():
                statuses.append(cluster.request(shard, workload).status)

        threads = [
            threading.Thread(target=hammer, daemon=True)
            for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        try:
            for _ in range(5):
                with pytest.raises(InputValidationError,
                                   match="last owner"):
                    cluster.remove_replica(last)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30.0)
        assert statuses and all(s == "ok" for s in statuses)
        assert cluster.router.table.epoch == epoch
        assert cluster.router.table.owners_of(shard) == (last,)
        assert last in cluster.replicas


class TestDegenerateDrift:
    """Satellite guard: coincident frozen centers must short-circuit to
    drift 0.0 -- never a divide-by-zero or a spurious re-tune storm."""

    @given(
        base=hyp_st.lists(
            hyp_st.floats(-1e3, 1e3, allow_nan=False,
                          allow_infinity=False, width=32),
            min_size=2, max_size=4,
        ),
        n_shards=hyp_st.integers(2, 5),
        offset=hyp_st.floats(0.0, 1e3, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_identical_centers_yield_zero_drift(
        self, base, n_shards, offset
    ):
        center = np.asarray(base, dtype=float)
        detector = DriftDetector(threshold=0.1, min_observations=4)
        detector.freeze({s: center.copy() for s in range(n_shards)})
        detector.observe(0, np.tile(center + offset, (8, 1)))
        assert detector.drift(0) == 0.0
        assert detector.proposals() == []
        assert detector.report()["degenerate"] is True

    @given(
        n_shards=hyp_st.integers(2, 5),
        step=hyp_st.floats(0.0, 10.0, allow_nan=False),
        dim=hyp_st.integers(2, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_collinear_centers_yield_finite_drift(
        self, n_shards, step, dim
    ):
        # centers on one line, step 0 collapsing them onto one point:
        # drift must stay finite (and exactly 0.0 when coincident)
        detector = DriftDetector(threshold=0.1, min_observations=4)
        detector.freeze({
            s: np.full(dim, s * step, dtype=float)
            for s in range(n_shards)
        })
        detector.observe(0, np.full((8, dim), 5.0))
        value = detector.drift(0)
        assert np.isfinite(value) and value >= 0.0
        report = detector.report()
        if step == 0.0:
            assert report["degenerate"] is True
        # a subnormal step can underflow the pairwise norm to zero, so
        # "degenerate" may also trip for tiny-but-nonzero steps -- the
        # contract is only that degenerate implies an exact 0.0 drift
        if report["degenerate"]:
            assert value == 0.0

    def test_separated_centers_are_not_degenerate(self):
        detector = DriftDetector(threshold=0.1, min_observations=4)
        detector.freeze({0: np.zeros(3), 1: np.full(3, 1.0)})
        detector.observe(0, np.full((8, 3), 5.0))
        assert detector.report()["degenerate"] is False
        assert detector.drift(0) > 0.0
