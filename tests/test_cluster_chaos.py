"""Cluster chaos sweeps: replica storms under the exact invariant.

Each sweep drives a fresh sharded cluster through kills, restarts,
artifact corruption, a slow replica, a faulty replica, and deliberate
routing-table staleness, then asserts the cluster invariant: every
request terminated bit-identical / failover-with-causal-record /
explicitly degraded / typed error, no hangs, anti-entropy healed from a
peer without a data rebuild, and per-shard op sums reconcile exactly
across the router's legs, every replica generation's ledgers, and the
responses themselves.  Seeds come from ``CHAOS_SEED`` when set so CI
shards the sweep like the disk and service chaos suites.

The topology sweep adds the elastic axis on top: mid-storm scale-out
with a corrupted donor, a kill during the handoff, a shard split under
traffic, stale-epoch probes at every fence, and a graceful scale-in --
with the invariant extended across epoch boundaries (per-epoch op
books sum to the drained totals exactly).  ``CHAOS_SCALE=0`` skips the
topology sweep so CI can matrix the axis on and off.

The controller sweep hands the topology to the autonomous loop: an
over-partitioned cluster's load decays mid-storm and the controller --
ticked deterministically once per round -- must merge the stranded
sibling pair through a mid-surgery replica kill and a post-fence
artifact corruption, shrinking the topology with zero erroneous
responses and a zero flap counter.  ``CHAOS_CONTROLLER=0`` skips it.
"""

from __future__ import annotations

import os

import pytest

from repro.cluster import (
    ClusterChaosScenario,
    assert_cluster_invariant,
    run_cluster_chaos,
)

SEEDS = ([int(os.environ["CHAOS_SEED"])]
         if os.environ.get("CHAOS_SEED") else [0, 1])
SCALE_AXIS_OFF = os.environ.get("CHAOS_SCALE") == "0"
CONTROLLER_AXIS_OFF = os.environ.get("CHAOS_CONTROLLER") == "0"
COALESCE_AXIS_OFF = os.environ.get("COALESCE") == "0"


@pytest.mark.parametrize("seed", SEEDS)
def test_storm_invariant_holds(seed, tmp_path):
    outcome = run_cluster_chaos(
        ClusterChaosScenario(seed=seed), artifact_root=tmp_path
    )
    assert_cluster_invariant(outcome)
    # the storm actually stormed, and the cluster actually absorbed it:
    # clean bit-identical service, real failovers with causal records,
    # and a peer heal -- all present, not skipped
    assert outcome.classified.get("identical", 0) > 0
    assert outcome.classified.get("failover", 0) > 0
    assert outcome.healed and outcome.rebuilds == 0
    assert all(h["via"].startswith("peer:") for h in outcome.healed)
    assert outcome.router["hedges"] > 0  # the slow replica was hedged
    # reconciliation ran over nonzero books (all-zero sums prove nothing)
    assert any(
        sums["router_ops"] > 0
        for sums in outcome.reconciliation.values()
    )


@pytest.mark.skipif(COALESCE_AXIS_OFF, reason="COALESCE=0 disables the "
                    "request-coalescing axis")
@pytest.mark.parametrize("seed", SEEDS)
def test_storm_invariant_holds_with_coalescing(seed, tmp_path):
    """The same storm with replica-side request coalescing on: fused
    shard legs must stay bit-identical, failovers keep their causal
    records, and per-shard op books still reconcile exactly across the
    router's legs, every replica generation, and the responses."""
    outcome = run_cluster_chaos(
        ClusterChaosScenario(seed=seed, coalesce=True),
        artifact_root=tmp_path,
    )
    assert_cluster_invariant(outcome)
    assert outcome.classified.get("identical", 0) > 0
    assert outcome.classified.get("failover", 0) > 0
    assert any(
        sums["router_ops"] > 0
        for sums in outcome.reconciliation.values()
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_double_kill_forces_explicit_degradation(seed, tmp_path):
    outcome = run_cluster_chaos(
        ClusterChaosScenario(seed=seed, double_kill=True),
        artifact_root=tmp_path,
    )
    assert_cluster_invariant(outcome)
    # with every owner of shard 0 down for a window, the router served
    # the explicitly degraded closed-form answer -- never a hang, never
    # a silent wrong answer
    assert outcome.classified.get("degraded", 0) > 0
    assert outcome.causes_seen.get("unavailable", 0) > 0


@pytest.mark.skipif(SCALE_AXIS_OFF, reason="CHAOS_SCALE=0 disables the "
                    "topology axis in this CI matrix cell")
@pytest.mark.parametrize("seed", SEEDS)
def test_topology_storm_invariant_holds(seed, tmp_path):
    """The elastic storm: the same invariant must hold while the
    topology itself is changing under the traffic."""
    outcome = run_cluster_chaos(
        ClusterChaosScenario(seed=seed, scale_events=True),
        artifact_root=tmp_path,
    )
    assert_cluster_invariant(outcome)
    # every scheduled topology event actually happened
    assert [e["op"] for e in outcome.topology] == \
        ["add", "split", "remove"]
    add = outcome.topology[0]
    assert add["refits"] == 0  # warmed from peer bytes, never refitted
    assert all(w["via"].startswith("peer:") for w in add["warmed"])
    # the corrupted donor was healed mid-storm, from a peer
    assert outcome.warm_heals > 0 and outcome.rebuilds == 0
    # every fence refused its stale-epoch probe (add, split, remove)
    assert outcome.stale_rejections == 3
    # the books span multiple epochs and still reconcile (the invariant
    # asserted the cross-epoch sums; here: the handoffs really happened)
    assert len(outcome.epoch_books) >= 3
    # split successors carried charged traffic of their own
    children = outcome.topology[1]["children"]
    for child in children:
        assert outcome.reconciliation[child]["router_ops"] > 0
    # the parent's pre-split charges survived the handoff
    parent = outcome.topology[1]["shard"]
    assert outcome.reconciliation[parent]["router_ops"] > 0


@pytest.mark.skipif(CONTROLLER_AXIS_OFF, reason="CHAOS_CONTROLLER=0 "
                    "disables the controller axis in this CI matrix cell")
@pytest.mark.parametrize("seed", SEEDS)
def test_controller_storm_shrinks_topology(seed, tmp_path):
    """The autonomous storm: the controller must merge the stranded
    cheap pair under decaying load -- through a mid-surgery replica
    kill and a post-fence artifact corruption -- with the full
    invariant intact and the flap counter at zero."""
    outcome = run_cluster_chaos(
        ClusterChaosScenario(seed=seed, n_shards=3, controller=True,
                             controller_dwell=2, merge_when=2.5),
        artifact_root=tmp_path,
    )
    assert_cluster_invariant(outcome)
    ctl = outcome.controller
    # the topology shrank: the invariant already asserted end < start
    # and flaps == 0; here, the storm's specific shape
    assert ctl["shards_start"] == 3 and ctl["shards_end"] == 2
    assert ctl["counters"]["merge"] == 1
    # the controller waited out the dwell window before firing
    assert ctl["counters"]["dwell_waits"] >= 1
    merges = [e for e in outcome.topology if e["op"] == "controller:merge"]
    assert len(merges) == 1
    merged = merges[0]["successors"][0]
    # the merged child is on the controller's birth book (flap guard)
    assert str(merged) in {str(k) for k in ctl["born"]}
    # zero erroneous responses anywhere in the storm
    assert outcome.classified.get("untyped_error", 0) == 0
    assert outcome.classified.get("mismatch", 0) == 0
    # the post-fence corruption was healed by peer adoption, no refit
    assert outcome.warm_heals > 0 and outcome.rebuilds == 0
    # the merged shard carried charged traffic under the new epoch
    assert outcome.reconciliation[merged]["router_ops"] > 0
    # the merge fence refused its stale-epoch probe
    assert outcome.stale_rejections == 1


def test_storm_without_failures_is_all_identical(tmp_path):
    """Reduced storm: no corruption, no slow or faulty replica -- only
    the kill/restart cycle remains.  Every verdict must be bit-identical
    (direct or via failover), nothing needs healing."""
    outcome = run_cluster_chaos(
        ClusterChaosScenario(
            seed=3, rounds=3, corrupt_replicas=0,
            slow_replica=False, faulty_replica=False,
        ),
        artifact_root=tmp_path,
    )
    assert not outcome.violations
    assert outcome.classified.get("mismatch", 0) == 0
    assert outcome.classified.get("untyped_error", 0) == 0
    assert outcome.healed == []
