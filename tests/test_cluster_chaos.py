"""Cluster chaos sweeps: replica storms under the exact invariant.

Each sweep drives a fresh sharded cluster through kills, restarts,
artifact corruption, a slow replica, a faulty replica, and deliberate
routing-table staleness, then asserts the cluster invariant: every
request terminated bit-identical / failover-with-causal-record /
explicitly degraded / typed error, no hangs, anti-entropy healed from a
peer without a data rebuild, and per-shard op sums reconcile exactly
across the router's legs, every replica generation's ledgers, and the
responses themselves.  Seeds come from ``CHAOS_SEED`` when set so CI
shards the sweep like the disk and service chaos suites.
"""

from __future__ import annotations

import os

import pytest

from repro.cluster import (
    ClusterChaosScenario,
    assert_cluster_invariant,
    run_cluster_chaos,
)

SEEDS = ([int(os.environ["CHAOS_SEED"])]
         if os.environ.get("CHAOS_SEED") else [0, 1])


@pytest.mark.parametrize("seed", SEEDS)
def test_storm_invariant_holds(seed, tmp_path):
    outcome = run_cluster_chaos(
        ClusterChaosScenario(seed=seed), artifact_root=tmp_path
    )
    assert_cluster_invariant(outcome)
    # the storm actually stormed, and the cluster actually absorbed it:
    # clean bit-identical service, real failovers with causal records,
    # and a peer heal -- all present, not skipped
    assert outcome.classified.get("identical", 0) > 0
    assert outcome.classified.get("failover", 0) > 0
    assert outcome.healed and outcome.rebuilds == 0
    assert all(h["via"].startswith("peer:") for h in outcome.healed)
    assert outcome.router["hedges"] > 0  # the slow replica was hedged
    # reconciliation ran over nonzero books (all-zero sums prove nothing)
    assert any(
        sums["router_ops"] > 0
        for sums in outcome.reconciliation.values()
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_double_kill_forces_explicit_degradation(seed, tmp_path):
    outcome = run_cluster_chaos(
        ClusterChaosScenario(seed=seed, double_kill=True),
        artifact_root=tmp_path,
    )
    assert_cluster_invariant(outcome)
    # with every owner of shard 0 down for a window, the router served
    # the explicitly degraded closed-form answer -- never a hang, never
    # a silent wrong answer
    assert outcome.classified.get("degraded", 0) > 0
    assert outcome.causes_seen.get("unavailable", 0) > 0


def test_storm_without_failures_is_all_identical(tmp_path):
    """Reduced storm: no corruption, no slow or faulty replica -- only
    the kill/restart cycle remains.  Every verdict must be bit-identical
    (direct or via failover), nothing needs healing."""
    outcome = run_cluster_chaos(
        ClusterChaosScenario(
            seed=3, rounds=3, corrupt_replicas=0,
            slow_replica=False, faulty_replica=False,
        ),
        artifact_root=tmp_path,
    )
    assert not outcome.violations
    assert outcome.classified.get("mismatch", 0) == 0
    assert outcome.classified.get("untyped_error", 0) == 0
    assert outcome.healed == []
