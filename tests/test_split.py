"""Tests for split-strategy primitives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rtree.split import (
    max_extent_dimension,
    max_variance_dimension,
    midpoint_rank,
    partition_ids_at_rank,
)


class TestDimensionRules:
    def test_max_variance_picks_spread_dim(self, rng):
        points = rng.random((200, 3))
        points[:, 1] *= 10.0
        assert max_variance_dimension(points) == 1

    def test_max_extent_picks_wide_dim(self, rng):
        points = rng.random((200, 3)) * 0.1
        points[0, 2] = 5.0  # one outlier stretches dim 2
        assert max_extent_dimension(points) == 2

    def test_empty_input_defaults_to_zero(self):
        empty = np.empty((0, 4))
        assert max_variance_dimension(empty) == 0
        assert max_extent_dimension(empty) == 0

    def test_rules_agree_on_axis_aligned_box(self, rng):
        # Under uniformity, max variance == max extent (the cutoff
        # tree's key assumption, Section 4.3).
        points = rng.random((5000, 4)) * np.array([1.0, 3.0, 0.5, 2.0])
        assert max_variance_dimension(points) == max_extent_dimension(points) == 1


class TestPartitionAtRank:
    def test_matches_sorted_cut(self, rng):
        points = rng.random((100, 3))
        ids = np.arange(100, dtype=np.int64)
        left, right = partition_ids_at_rank(points, ids, dim=1, rank=40)
        assert left.shape[0] == 40 and right.shape[0] == 60
        assert points[left, 1].max() <= points[right, 1].min()
        assert set(left) | set(right) == set(range(100))

    def test_rank_edges(self, rng):
        points = rng.random((10, 2))
        ids = np.arange(10, dtype=np.int64)
        left, right = partition_ids_at_rank(points, ids, 0, 0)
        assert left.shape[0] == 0 and right.shape[0] == 10
        left, right = partition_ids_at_rank(points, ids, 0, 10)
        assert left.shape[0] == 10 and right.shape[0] == 0

    def test_out_of_range_rank_rejected(self, rng):
        points = rng.random((10, 2))
        ids = np.arange(10, dtype=np.int64)
        with pytest.raises(ValueError):
            partition_ids_at_rank(points, ids, 0, 11)
        with pytest.raises(ValueError):
            partition_ids_at_rank(points, ids, 0, -1)

    def test_subset_ids(self, rng):
        points = rng.random((100, 2))
        ids = np.array([5, 17, 42, 63, 80], dtype=np.int64)
        left, right = partition_ids_at_rank(points, ids, 0, 2)
        assert set(left) | set(right) == set(ids.tolist())
        assert points[left, 0].max() <= points[right, 0].min()

    def test_duplicate_coordinates(self):
        points = np.zeros((8, 2))
        ids = np.arange(8, dtype=np.int64)
        left, right = partition_ids_at_rank(points, ids, 0, 3)
        assert left.shape[0] == 3 and right.shape[0] == 5

    @given(st.integers(2, 200), st.integers(1, 4), st.integers(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_partition_property(self, n, d, seed):
        gen = np.random.default_rng(seed)
        points = gen.random((n, d))
        ids = np.arange(n, dtype=np.int64)
        rank = int(gen.integers(0, n + 1))
        dim = int(gen.integers(0, d))
        left, right = partition_ids_at_rank(points, ids, dim, rank)
        assert left.shape[0] == rank
        if 0 < rank < n:
            assert points[left, dim].max() <= points[right, dim].min()
        assert np.array_equal(np.sort(np.concatenate([left, right])), ids)


class TestMidpointRank:
    def test_uniform_splits_near_half(self, rng):
        points = rng.random((10000, 1))
        ids = np.arange(10000, dtype=np.int64)
        rank = midpoint_rank(points, ids, 0)
        assert abs(rank - 5000) < 500

    def test_skewed_data_splits_off_center(self, rng):
        values = np.concatenate([rng.random(900) * 0.1, 0.9 + rng.random(100) * 0.1])
        points = values[:, None]
        ids = np.arange(1000, dtype=np.int64)
        rank = midpoint_rank(points, ids, 0)
        assert rank == 900  # midpoint of extent falls in the gap
