"""Tests for upper-tree construction and h_upper resolution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.phases import build_upper_tree, resolve_h_upper
from repro.core.topology import Topology


@pytest.fixture(scope="module")
def topo(clustered_points):
    return Topology(clustered_points.shape[0], 32, 16)


class TestBuildUpperTree:
    def test_leaf_count_matches_topology(self, clustered_points, topo, rng):
        sample = clustered_points[rng.choice(len(clustered_points), 400,
                                             replace=False)]
        upper = build_upper_tree(sample, topo, h_upper=2)
        assert upper.k == topo.n_upper_leaves(2)
        assert upper.leaf_level == topo.upper_leaf_level(2)

    def test_virtual_counts_conserved(self, clustered_points, topo, rng):
        sample = clustered_points[rng.choice(len(clustered_points), 400,
                                             replace=False)]
        upper = build_upper_tree(sample, topo, h_upper=2)
        assert sum(l.virtual_n for l in upper.leaves) == topo.n_points

    def test_sample_points_partitioned(self, clustered_points, topo, rng):
        sample = clustered_points[rng.choice(len(clustered_points), 400,
                                             replace=False)]
        upper = build_upper_tree(sample, topo, h_upper=2)
        assert sum(len(l.sample_ids) for l in upper.leaves) == 400

    def test_growth_factor_above_one_when_sampled(self, clustered_points, topo, rng):
        sample = clustered_points[rng.choice(len(clustered_points), 400,
                                             replace=False)]
        upper = build_upper_tree(sample, topo, h_upper=2)
        assert upper.sigma_upper == pytest.approx(400 / topo.n_points)
        assert upper.growth_factor > 1.0

    def test_full_sample_no_growth(self, clustered_points, topo):
        upper = build_upper_tree(clustered_points, topo, h_upper=2)
        assert upper.sigma_upper == 1.0
        assert upper.growth_factor == 1.0

    def test_grown_corners_stack(self, clustered_points, topo, rng):
        sample = clustered_points[rng.choice(len(clustered_points), 400,
                                             replace=False)]
        upper = build_upper_tree(sample, topo, h_upper=2)
        lower, upper_c = upper.grown_corners()
        non_empty = sum(1 for l in upper.leaves if not l.is_empty)
        assert lower.shape == (non_empty, clustered_points.shape[1])

    def test_growth_enlarges_boxes(self, clustered_points, topo, rng):
        ids = rng.choice(len(clustered_points), 400, replace=False)
        sample = clustered_points[ids]
        upper = build_upper_tree(sample, topo, h_upper=2)
        for leaf in upper.leaves:
            if leaf.is_empty or len(leaf.sample_ids) < 2:
                continue
            raw = sample[leaf.sample_ids]
            raw_extent = raw.max(axis=0) - raw.min(axis=0)
            grown_extent = leaf.upper - leaf.lower
            assert np.all(grown_extent >= raw_extent - 1e-12)

    def test_tiny_sample_degrades_gracefully(self, clustered_points, topo):
        # sigma below 1/C: compensation undefined, factor falls back to 1.
        sample = clustered_points[:3]
        upper = build_upper_tree(sample, topo, h_upper=2)
        assert upper.growth_factor == 1.0

    def test_invalid_h_upper(self, clustered_points, topo):
        with pytest.raises(ValueError):
            build_upper_tree(clustered_points, topo, h_upper=0)
        with pytest.raises(ValueError):
            build_upper_tree(clustered_points, topo, h_upper=topo.height + 1)


class TestResolveHUpper:
    def test_explicit_value_validated(self, topo):
        assert resolve_h_upper(topo, 2, memory=500) == 2
        with pytest.raises(ValueError):
            resolve_h_upper(topo, 1, memory=500)
        with pytest.raises(ValueError):
            resolve_h_upper(topo, topo.height, memory=500)

    def test_default_uses_heuristic(self, topo):
        assert resolve_h_upper(topo, None, 500) == topo.best_h_upper(500)

    def test_short_tree_collapses_to_single_phase(self):
        short = Topology(100, 32, 16)  # height 2
        assert resolve_h_upper(short, None, 50) == short.height

    def test_memory_covers_dataset(self, topo):
        assert resolve_h_upper(topo, None, topo.n_points * 2) == topo.height

    def test_infeasible_memory_falls_back(self):
        tall = Topology(50_000, 8, 4)
        # Absurdly small memory: no h satisfies the bounds; fall back to 2.
        assert resolve_h_upper(tall, None, 4) == 2
