"""Tests for the uniform and fractal baseline cost models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.fractal import (
    FractalCostModel,
    FractalEstimationError,
    LogLogFit,
    box_counting_dimension,
    correlation_dimension,
)
from repro.baselines.uniform_model import UniformCostModel


class TestUniformModel:
    def test_page_count(self):
        model = UniformCostModel(n_points=1000, dim=4, c_eff=32.0)
        assert model.n_pages == 32

    def test_page_extents_tile_volume(self):
        model = UniformCostModel(n_points=32 * 32, dim=8, c_eff=32.0)
        extents = model.page_extents()
        # midpoint splits: product of extents = 1 / n_pages
        assert np.prod(extents) == pytest.approx(1.0 / model.n_pages)
        assert all(e in (0.5, 1.0, 0.25) for e in extents)

    def test_split_dimensions_capped_by_d(self):
        model = UniformCostModel(n_points=10**6, dim=3, c_eff=10.0)
        assert model.n_split_dimensions == 3

    def test_radius_grows_with_dimension(self):
        radii = [
            UniformCostModel(100_000, d, 32.0).expected_knn_radius(21)
            for d in (2, 8, 32, 64)
        ]
        assert all(a < b for a, b in zip(radii, radii[1:]))

    def test_radius_shrinks_with_n(self):
        small = UniformCostModel(1_000, 8, 32.0).expected_knn_radius(1)
        large = UniformCostModel(1_000_000, 8, 32.0).expected_knn_radius(1)
        assert large < small

    def test_very_high_dim_works(self):
        # Gamma overflows ~d > 300 unless computed in log space.
        radius = UniformCostModel(7_800, 617, 3.0).expected_knn_radius(21)
        assert np.isfinite(radius) and radius > 1.0

    def test_access_probability_bounds(self):
        model = UniformCostModel(100_000, 16, 32.0)
        assert model.access_probability(0.0) <= 1.0
        assert model.access_probability(10.0) == 1.0

    def test_high_dimensional_collapse(self):
        """Section 5.3: in high-d the model predicts ALL pages accessed."""
        model = UniformCostModel(275_465, 60, 31.9)
        assert model.predict_knn_accesses(21) == pytest.approx(model.n_pages)

    def test_low_dimensional_selectivity(self):
        """In low-d with many points, only a fraction is accessed."""
        model = UniformCostModel(1_000_000, 2, 32.0)
        assert model.predict_knn_accesses(1) < 0.05 * model.n_pages

    def test_range_query(self):
        model = UniformCostModel(100_000, 4, 32.0)
        small = model.predict_range_accesses(0.01)
        large = model.predict_range_accesses(0.5)
        assert small < large <= model.n_pages

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformCostModel(1, 4, 32.0)
        with pytest.raises(ValueError):
            UniformCostModel(100, 4, 1.0)
        model = UniformCostModel(100, 4, 32.0)
        with pytest.raises(ValueError):
            model.expected_knn_radius(0)
        with pytest.raises(ValueError):
            model.access_probability(-1.0)


class TestFractalEstimators:
    def test_uniform_2d_box_dimension(self, rng):
        points = rng.random((20_000, 2))
        fit = box_counting_dimension(points)
        assert fit.slope == pytest.approx(2.0, abs=0.35)

    def test_line_box_dimension(self, rng):
        t = rng.random(20_000)
        points = np.column_stack([t, t])
        fit = box_counting_dimension(points)
        assert fit.slope == pytest.approx(1.0, abs=0.25)

    def test_uniform_2d_correlation_dimension(self, rng):
        points = rng.random((5_000, 2))
        fit = correlation_dimension(points, rng)
        assert fit.slope == pytest.approx(2.0, abs=0.5)

    def test_line_correlation_dimension(self, rng):
        t = rng.random(5_000)
        points = np.column_stack([t, 2 * t])
        fit = correlation_dimension(points, rng)
        assert fit.slope == pytest.approx(1.0, abs=0.3)

    def test_clustered_dimension_below_embedding(self, rng):
        from repro.data.generators import gaussian_mixture

        points = gaussian_mixture(10_000, 8, rng, n_clusters=5,
                                  cluster_std=0.01)
        fit = box_counting_dimension(points)
        assert fit.slope < 4.0  # far below the embedding dimension 8

    def test_loglog_fit_inversion(self):
        fit = LogLogFit(slope=2.0, intercept=1.0)
        assert fit.invert_to_log_x(fit.predict_log_y(3.7)) == pytest.approx(3.7)
        with pytest.raises(FractalEstimationError):
            LogLogFit(slope=0.0, intercept=1.0).invert_to_log_x(1.0)

    def test_degenerate_data_raises(self):
        constant = np.zeros((500, 3))
        with pytest.raises(FractalEstimationError):
            box_counting_dimension(constant)


class TestFractalCostModel:
    def test_not_applicable_when_n_small_vs_d(self, rng):
        points = rng.random((7_800, 617))
        with pytest.raises(FractalEstimationError):
            FractalCostModel.from_points(points, 3.0, rng)

    def test_applicable_low_dim(self, rng):
        points = rng.random((20_000, 2))
        model = FractalCostModel.from_points(points, 32.0, rng)
        prediction = model.predict_knn_accesses(5)
        assert 0 < prediction <= model.n_pages

    def test_uniform_low_dim_reasonable(self, rng):
        """On genuinely uniform 2-d data the fractal model reduces to the
        uniform model's regime and predicts a small page fraction."""
        points = rng.random((50_000, 2))
        model = FractalCostModel.from_points(points, 32.0, rng)
        assert model.predict_knn_accesses(1) < 0.2 * model.n_pages

    def test_high_dim_clustered_overestimates(self):
        """Table 4: on high-d clustered (KLT) data the near-zero D0
        flattens the Minkowski term and nearly all pages are predicted."""
        from repro.data import datasets

        points = datasets.texture60(scale=0.03, seed=1)
        rng = np.random.default_rng(0)
        model = FractalCostModel.from_points(points, 32.0, rng)
        assert model.d0 < 0.5
        assert model.predict_knn_accesses(21) > 0.5 * model.n_pages

    def test_radius_clamped_to_dataspace(self, rng):
        points = rng.random((20_000, 2))
        model = FractalCostModel.from_points(points, 32.0, rng)
        assert 0 < model.expected_knn_radius(21) <= 1.0

    def test_invalid_k(self, rng):
        points = rng.random((20_000, 2))
        model = FractalCostModel.from_points(points, 32.0, rng)
        with pytest.raises(ValueError):
            model.expected_knn_radius(0)
