"""Tests for the external on-disk builder and query measurement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.disk.device import SimulatedDisk
from repro.disk.pagefile import PointFile
from repro.ondisk.builder import OnDiskBuilder
from repro.ondisk.measure import measure_knn, sphere_accesses
from repro.rtree.tree import RTree
from repro.workload.queries import density_biased_knn_workload

C_DATA, C_DIR = 32, 16


@pytest.fixture(scope="module")
def built(clustered_points):
    disk = SimulatedDisk()
    file = PointFile.from_points(disk, clustered_points)
    builder = OnDiskBuilder(C_DATA, C_DIR, memory=500)
    return builder.build(file)


class TestBuilder:
    def test_tree_validates(self, built):
        built.tree.validate()

    def test_points_preserved_as_multiset(self, built, clustered_points):
        original = np.sort(clustered_points.round(9).view([("", float)] *
                           clustered_points.shape[1]).ravel())
        rebuilt = np.sort(built.tree.points.round(9).view([("", float)] *
                          clustered_points.shape[1]).ravel())
        assert np.array_equal(original, rebuilt)

    def test_leaves_are_contiguous_on_disk(self, built):
        for leaf in built.tree.leaves:
            ids = leaf.point_ids
            assert np.array_equal(ids, np.arange(ids[0], ids[0] + len(ids)))

    def test_leaves_cover_file_in_order(self, built, clustered_points):
        starts = [int(l.point_ids[0]) for l in built.tree.leaves]
        sizes = [l.n_points for l in built.tree.leaves]
        assert starts[0] == 0
        for i in range(len(starts) - 1):
            assert starts[i + 1] == starts[i] + sizes[i]
        assert starts[-1] + sizes[-1] == clustered_points.shape[0]

    def test_build_cost_at_least_two_passes(self, built):
        # The data must be read and written at least once in full.
        assert built.build_cost.transfers >= 2 * built.file.n_pages

    def test_build_cost_well_above_best_case(self, built, clustered_points):
        # Real quickselect needs several passes; the paper reports 5-10x
        # over the single-pass best case on real data.
        passes = built.build_cost.transfers / built.file.n_pages
        assert passes > 4

    def test_topology_matches_in_memory_build(self, built, clustered_points):
        reference = RTree.bulk_load(clustered_points, C_DATA, C_DIR)
        assert built.tree.height == reference.height
        assert built.tree.n_leaves == reference.n_leaves

    def test_small_memory_still_correct(self, clustered_points):
        disk = SimulatedDisk()
        file = PointFile.from_points(disk, clustered_points)
        small = OnDiskBuilder(C_DATA, C_DIR, memory=64).build(file)
        small.tree.validate()

    def test_smaller_memory_costs_more(self, clustered_points, built):
        disk = SimulatedDisk()
        file = PointFile.from_points(disk, clustered_points)
        small = OnDiskBuilder(C_DATA, C_DIR, memory=64).build(file)
        assert small.build_cost.seconds() > built.build_cost.seconds()

    def test_memory_below_page_rejected(self):
        with pytest.raises(ValueError):
            OnDiskBuilder(C_DATA, C_DIR, memory=10)

    def test_empty_file_rejected(self):
        disk = SimulatedDisk()
        file = PointFile(disk, dim=4, capacity=10)
        with pytest.raises(ValueError):
            OnDiskBuilder(C_DATA, C_DIR, memory=100).build(file)

    def test_leaf_page_span(self, built):
        leaf = built.tree.leaves[0]
        first, count = built.leaf_page_span(leaf)
        assert count >= 1
        assert first >= built.file.start_page

    def test_duplicate_heavy_data(self):
        """External quickselect must terminate on constant columns."""
        points = np.zeros((2000, 4))
        points[:, 0] = np.repeat(np.arange(4), 500)  # few distinct keys
        disk = SimulatedDisk()
        file = PointFile.from_points(disk, points)
        index = OnDiskBuilder(8, 4, memory=64).build(file)
        index.tree.validate()


class TestMeasurement:
    @pytest.fixture(scope="class")
    def workload(self, clustered_points):
        return density_biased_knn_workload(
            clustered_points, 25, 21, np.random.default_rng(2)
        )

    def test_knn_results_match_brute_force(self, built, clustered_points):
        query = clustered_points[10]
        result = built.tree.knn(query, 5)
        expected = np.sort(np.linalg.norm(clustered_points - query, axis=1))[:5]
        assert np.allclose(np.sort(result.distances), expected)

    def test_measure_equals_sphere_counts(self, built, workload):
        measured = measure_knn(built, workload)
        counted = sphere_accesses(built, workload)
        assert np.array_equal(measured.per_query, counted)

    def test_query_io_charged_per_leaf(self, built, workload):
        before = built.file.disk.cost
        measured = measure_knn(built, workload)
        assert built.file.disk.cost - before == measured.io_cost
        assert measured.io_cost.transfers >= measured.per_query.sum()

    def test_seek_to_transfer_ratio_near_one(self, built, workload):
        """Table 3: nearly all on-disk query page accesses are random."""
        measured = measure_knn(built, workload)
        ratio = measured.io_cost.seeks / measured.io_cost.transfers
        assert ratio > 0.7

    def test_mean_accesses(self, built, workload):
        measured = measure_knn(built, workload)
        assert measured.mean_accesses == pytest.approx(
            measured.per_query.mean()
        )
