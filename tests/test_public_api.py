"""Public API integrity: every exported name resolves and is documented."""

from __future__ import annotations

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.kernels",
    "repro.rtree",
    "repro.disk",
    "repro.ondisk",
    "repro.data",
    "repro.workload",
    "repro.baselines",
    "repro.apps",
    "repro.experiments",
    "repro.runtime",
]


class TestExports:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_names_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), package
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_module_documented(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and module.__doc__.strip(), package

    def test_public_classes_documented(self):
        import repro

        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type) or callable(obj):
                assert obj.__doc__, f"repro.{name} lacks a docstring"

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_star_import_clean(self):
        namespace: dict = {}
        exec("from repro import *", namespace)  # noqa: S102
        assert "IndexCostPredictor" in namespace
        assert "RTree" in namespace
