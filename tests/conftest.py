"""Shared fixtures for the test suite.

Datasets here are intentionally small: the suite exercises behavior and
invariants, not paper-scale numbers (the benchmark harness does that).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import generators
from repro.data.transforms import klt


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def clustered_points() -> np.ndarray:
    """A small clustered 16-d cloud, the suite's workhorse dataset."""
    gen = np.random.default_rng(7)
    return klt(generators.gaussian_mixture(4000, 16, gen, n_clusters=8,
                                           cluster_std=0.05))


@pytest.fixture(scope="session")
def uniform_points() -> np.ndarray:
    """A small uniform 6-d cloud for uniformity-assumption checks."""
    gen = np.random.default_rng(11)
    return generators.uniform(5000, 6, gen)


@pytest.fixture(scope="session")
def tiny_points() -> np.ndarray:
    """A minimal 2-d point set for hand-checkable cases."""
    gen = np.random.default_rng(3)
    return gen.random((64, 2))
