"""Tests for the multi-tenant prediction service layer.

Covers the three pieces of :mod:`repro.service` in isolation and
together: checksummed warm-start artifacts (bit-identical reload,
corruption detection, rebuild-on-corrupt), per-tenant quotas and
ledgers, and the threaded server itself -- admission gates, deadline
handling on an injected clock, worker death with supervision, and the
no-hang shutdown contract.  Everything here runs without real sleeps
except where a thread genuinely has to block on another.
"""

from __future__ import annotations

import struct
import threading
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    ArtifactCorruptError,
    InputValidationError,
    ServiceOverloadedError,
    TenantQuotaExceededError,
)
from repro.service import (
    ARTIFACT_VERSION,
    ArtifactStore,
    FittedModel,
    PredictionService,
    TenantLedger,
    TenantQuota,
    WorkerDeath,
    fit_model,
    load_artifact,
    save_artifact,
)
from repro.workload.queries import density_biased_knn_workload

N, DIM, MEMORY = 700, 6, 180


@pytest.fixture(scope="module")
def points():
    return np.random.default_rng(11).normal(size=(N, DIM))


@pytest.fixture(scope="module")
def model(points):
    return fit_model(points, c_data=30, c_dir=40, memory=MEMORY, seed=5)


@pytest.fixture(scope="module")
def workload(points):
    return density_biased_knn_workload(
        points, 15, 5, np.random.default_rng(3)
    )


class TestArtifactRoundTrip:
    def test_reload_is_bit_identical(self, model, workload, tmp_path):
        path = save_artifact(tmp_path / "m.rpro", model)
        loaded = load_artifact(path)
        for attr in ("lower", "upper", "n_points", "virtual_n"):
            assert np.array_equal(
                getattr(model.geometry, attr), getattr(loaded.geometry, attr)
            )
        assert np.array_equal(
            model.predict(workload).per_query,
            loaded.predict(workload).per_query,
        )
        assert loaded.meta == model.meta

    def test_fitting_is_deterministic(self, points, model):
        again = fit_model(points, c_data=30, c_dir=40, memory=MEMORY, seed=5)
        assert np.array_equal(model.geometry.lower, again.geometry.lower)
        assert np.array_equal(model.geometry.upper, again.geometry.upper)

    def test_save_is_atomic_no_tmp_left_behind(self, model, tmp_path):
        save_artifact(tmp_path / "m.rpro", model)
        assert [p.name for p in tmp_path.iterdir()] == ["m.rpro"]

    def test_warm_predict_reports_detail(self, model, workload):
        result = model.predict(workload)
        assert result.detail["warm"] is True
        assert result.detail["n_mini_leaves"] == model.geometry.k
        assert result.io_cost.ops == 0


class TestArtifactVerification:
    def test_any_single_byte_flip_is_detected(self, model, workload,
                                              tmp_path):
        path = save_artifact(tmp_path / "m.rpro", model)
        clean = path.read_bytes()
        rng = np.random.default_rng(9)
        for offset in rng.choice(len(clean), size=24, replace=False):
            raw = bytearray(clean)
            raw[int(offset)] ^= 0x40
            path.write_bytes(bytes(raw))
            with pytest.raises(ArtifactCorruptError):
                load_artifact(path)
        path.write_bytes(clean)  # pristine bytes still load
        assert np.array_equal(
            load_artifact(path).predict(workload).per_query,
            model.predict(workload).per_query,
        )

    def test_truncation_is_detected(self, model, tmp_path):
        path = save_artifact(tmp_path / "m.rpro", model)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ArtifactCorruptError):
            load_artifact(path)

    def test_not_an_artifact(self, tmp_path):
        path = tmp_path / "junk.rpro"
        path.write_bytes(b"definitely not a model artifact")
        with pytest.raises(ArtifactCorruptError) as info:
            load_artifact(path)
        assert info.value.reason in ("magic", "checksum")

    def test_version_skew_refused(self, model, tmp_path):
        path = save_artifact(tmp_path / "m.rpro", model)
        body = bytearray(path.read_bytes()[:-4])
        # bump the u32 version field right after the 4-byte magic, then
        # re-stamp the whole-file crc so only the version check can fire
        body[4:8] = struct.pack("<I", ARTIFACT_VERSION + 1)
        footer = struct.pack("<I", zlib.crc32(bytes(body)) & 0xFFFFFFFF)
        path.write_bytes(bytes(body) + footer)
        with pytest.raises(ArtifactCorruptError) as info:
            load_artifact(path)
        assert info.value.reason == "version"

    def test_missing_file_is_typed(self, tmp_path):
        with pytest.raises(ArtifactCorruptError):
            load_artifact(tmp_path / "never-written.rpro")

    @given(
        n=st.integers(40, 300),
        dim=st.integers(2, 8),
        memory=st.integers(20, 200),
        seed=st.integers(0, 50),
        flip=st.one_of(st.none(), st.floats(0.0, 1.0)),
        xor=st.integers(1, 255),
    )
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_property(self, tmp_path_factory, n, dim, memory,
                                seed, flip, xor):
        """Any fitted model: a clean reload predicts bit-identically;
        any tampered byte raises the typed error, never wrong answers."""
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(n, dim))
        fitted = fit_model(points, c_data=16, c_dir=16, memory=memory,
                           seed=seed)
        path = tmp_path_factory.mktemp("artifacts") / "p.rpro"
        save_artifact(path, fitted)
        if flip is None:
            loaded = load_artifact(path)
            wl = density_biased_knn_workload(points, 8, 3,
                                             np.random.default_rng(1))
            assert np.array_equal(
                fitted.predict(wl).per_query, loaded.predict(wl).per_query
            )
        else:
            raw = bytearray(path.read_bytes())
            raw[int(flip * (len(raw) - 1))] ^= xor
            path.write_bytes(bytes(raw))
            with pytest.raises(ArtifactCorruptError):
                load_artifact(path)


class TestArtifactStore:
    def test_miss_then_hit(self, points, tmp_path):
        store = ArtifactStore(tmp_path)
        calls = []

        def fit():
            calls.append(1)
            return fit_model(points, c_data=30, c_dir=40, memory=MEMORY)

        first = store.load_or_fit("alpha", fit)
        second = store.load_or_fit("alpha", fit)
        assert len(calls) == 1  # the hit never refits
        assert np.array_equal(first.geometry.lower, second.geometry.lower)
        assert [e[1] for e in store.events] == ["miss", "hit"]

    def test_corrupt_artifact_rebuilt_and_healed(self, points, tmp_path):
        store = ArtifactStore(tmp_path)

        def fit():
            return fit_model(points, c_data=30, c_dir=40, memory=MEMORY)

        store.load_or_fit("beta", fit)
        path = store.path_for("beta")
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 3] ^= 0xFF
        path.write_bytes(bytes(raw))
        rebuilt = store.load_or_fit("beta", fit)
        assert store.rebuilds() == 1
        # the bad file was overwritten: the next lookup verifies clean
        healed = store.load_or_fit("beta", fit)
        assert np.array_equal(rebuilt.geometry.lower, healed.geometry.lower)
        assert [e[1] for e in store.events] == ["miss", "rebuilt", "hit"]

    def test_keys_are_sanitized(self, tmp_path):
        store = ArtifactStore(tmp_path)
        path = store.path_for("ten/ant:one two")
        assert path.parent == store.directory
        assert path.name == "ten_ant_one_two.rpro"

    def test_concurrent_load_or_fit_on_corrupt_artifact(self, points,
                                                        tmp_path):
        """Two threads racing load_or_fit on the same corrupt artifact:
        the per-key lock serializes them, so exactly one rebuild-from-
        data happens, both callers get bit-identical models, and the
        file on disk is healed for the next reader."""
        store = ArtifactStore(tmp_path)

        calls = []
        lock = threading.Lock()

        def fit():
            with lock:
                calls.append(threading.current_thread().name)
            return fit_model(points, c_data=30, c_dir=40, memory=MEMORY)

        store.load_or_fit("gamma", fit)
        path = store.path_for("gamma")
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        calls.clear()

        gate = threading.Barrier(3)
        models = {}

        def racer(name: str) -> None:
            gate.wait(5.0)
            models[name] = store.load_or_fit("gamma", fit)

        threads = [
            threading.Thread(target=racer, args=(f"racer-{i}",),
                             name=f"racer-{i}")
            for i in range(2)
        ]
        for thread in threads:
            thread.start()
        gate.wait(5.0)
        for thread in threads:
            thread.join(timeout=30.0)

        assert len(calls) == 1  # one rebuild, not one per racer
        assert store.rebuilds() == 1
        first, second = models["racer-0"], models["racer-1"]
        assert np.array_equal(
            first.geometry.lower, second.geometry.lower
        )
        assert np.array_equal(
            first.geometry.upper, second.geometry.upper
        )
        # the loser of the race observed a healed file (a "hit"), and
        # the file stays verifiable afterward
        assert [e[1] for e in store.events[-2:]] == ["rebuilt", "hit"]
        store.verify("gamma")


class TestTenantQuota:
    @pytest.mark.parametrize("kwargs", [
        {"max_inflight": 0},
        {"max_io_ops": -1},
        {"deadline_s": 0.0},
        {"max_retries": -1},
        {"backoff_s": -0.5},
    ])
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(InputValidationError):
            TenantQuota(**kwargs)

    def test_inflight_cap_refuses_with_typed_error(self):
        ledger = TenantLedger("t", TenantQuota(max_inflight=2))
        ledger.admit()
        ledger.admit()
        with pytest.raises(TenantQuotaExceededError) as info:
            ledger.admit()
        assert info.value.tenant == "t"
        assert info.value.resource == "inflight"
        ledger.release()
        ledger.admit()  # a released slot is admittable again

    def test_spent_allowance_refuses(self):
        ledger = TenantLedger("t", TenantQuota(max_inflight=8, max_io_ops=10))
        ledger.admit()
        ledger.settle(10, "ok")
        ledger.release()
        with pytest.raises(TenantQuotaExceededError) as info:
            ledger.admit()
        assert info.value.resource == "io_ops"

    def test_ledger_and_governor_agree(self):
        ledger = TenantLedger("t", TenantQuota())
        for ops, status in ((5, "ok"), (3, "degraded"), (0, "error")):
            ledger.admit()
            ledger.settle(ops, status)
            ledger.release()
        snap = ledger.snapshot()
        assert snap["charged_ops"] == snap["governor_ops"] == 8
        assert (snap["completed"], snap["degraded"], snap["errors"]) == (
            1, 1, 1,
        )
        assert snap["inflight"] == 0


class TestPredictionService:
    def test_warm_matches_direct_model(self, points, workload):
        service = PredictionService(workers=2, memory=MEMORY)
        service.register_tenant("t", points)
        with service:
            response = service.request("t", workload, timeout=30.0)
        direct = service.tenant("t").model.predict(workload)
        assert response.status == "ok"
        assert response.io_ops == 0
        assert np.array_equal(response.result.per_query, direct.per_query)

    def test_full_method_matches_unloaded_facade(self, points, workload):
        service = PredictionService(workers=2, memory=MEMORY)
        service.register_tenant("t", points)
        tenant = service.tenant("t")
        with service:
            response = service.request(
                "t", workload, method="resampled", seed=4, timeout=60.0
            )
        direct = tenant.predictor.predict(
            points, workload, method="resampled", seed=4
        )
        assert response.status == "ok"
        assert np.array_equal(response.result.per_query, direct.per_query)
        assert response.io_ops == direct.io_cost.ops

    def test_unknown_tenant_and_method(self, points, workload):
        service = PredictionService(workers=1)
        service.register_tenant("t", points)
        with service:
            with pytest.raises(InputValidationError):
                service.submit("nobody", workload)
            with pytest.raises(InputValidationError):
                service.submit("t", workload, method="telepathy")

    def test_submit_requires_running_service(self, points, workload):
        service = PredictionService(workers=1)
        service.register_tenant("t", points)
        with pytest.raises(InputValidationError):
            service.submit("t", workload)

    def test_quota_gate_refuses_typed(self, points, workload):
        gate = threading.Event()
        service = PredictionService(
            workers=1, max_queue=8,
            default_quota=TenantQuota(max_inflight=1),
            pre_request_hook=lambda item: gate.wait(10.0),
        )
        service.register_tenant("t", points)
        with service:
            first = service.submit("t", workload)
            with pytest.raises(TenantQuotaExceededError):
                service.submit("t", workload)
            gate.set()
            assert first.result(timeout=30.0).status == "ok"

    def test_quota_is_per_tenant(self, points, workload):
        gate = threading.Event()
        service = PredictionService(
            workers=1, max_queue=8,
            default_quota=TenantQuota(max_inflight=1),
            pre_request_hook=lambda item: gate.wait(10.0),
        )
        service.register_tenant("a", points)
        service.register_tenant("b", points)
        with service:
            pending = [service.submit("a", workload)]
            with pytest.raises(TenantQuotaExceededError):
                service.submit("a", workload)
            # tenant b is untouched by a's exhausted quota
            pending.append(service.submit("b", workload))
            gate.set()
            for p in pending:
                assert p.result(timeout=30.0).status == "ok"

    def test_full_queue_sheds_load(self, points, workload):
        gate = threading.Event()
        service = PredictionService(
            workers=1, max_queue=1,
            default_quota=TenantQuota(max_inflight=16),
            pre_request_hook=lambda item: gate.wait(10.0),
        )
        service.register_tenant("t", points)
        with service:
            admitted = [service.submit("t", workload)]
            # worker holds one request; one more fits the queue; the
            # queue is bounded so everything past it sheds -- possibly
            # after one more slips in while the worker dequeues
            shed = 0
            for _ in range(8):
                try:
                    admitted.append(service.submit("t", workload))
                except ServiceOverloadedError:
                    shed += 1
            assert shed > 0
            assert service.shed_overload == shed
            gate.set()
            for p in admitted:
                assert p.result(timeout=30.0).status == "ok"

    def test_deadline_expired_in_queue_no_sleep(self, points, workload):
        # the injected clock jumps 100 "seconds" per reading, so the
        # request's queue wait alone blows its deadline -- with zero
        # real sleeping anywhere
        ticks = {"now": 0.0}

        def clock() -> float:
            ticks["now"] += 100.0
            return ticks["now"]

        service = PredictionService(workers=1, clock=clock)
        service.register_tenant("t", points)
        with service:
            response = service.request(
                "t", workload, deadline_s=1.0, timeout=30.0
            )
        assert response.status == "error"
        assert response.error_type == "DeadlineExceededError"
        assert response.cause == "deadline"

    def test_worker_death_answers_then_respawns(self, points, workload):
        victims = {1}

        def hook(item) -> None:
            if item.pending.request_id in victims:
                raise WorkerDeath("chaos")

        service = PredictionService(workers=1, pre_request_hook=hook)
        service.register_tenant("t", points)
        with service:
            killed = service.request("t", workload, timeout=30.0)
            assert killed.status == "error"
            assert killed.error_type == "WorkerDeath"
            assert killed.cause == "worker"
            # the replacement worker serves the next request normally
            healthy = service.request("t", workload, timeout=30.0)
            assert healthy.status == "ok"
        assert service.workers_respawned >= 1

    def test_stop_resolves_queued_requests(self, points, workload):
        gate = threading.Event()
        service = PredictionService(
            workers=1, max_queue=8,
            default_quota=TenantQuota(max_inflight=8),
            pre_request_hook=lambda item: gate.wait(10.0),
        )
        service.register_tenant("t", points)
        service.start()
        pending = [service.submit("t", workload) for _ in range(4)]
        releaser = threading.Timer(0.2, gate.set)
        releaser.start()
        service.stop()  # drains the queue, then joins the worker
        releaser.join()
        statuses = [p.result(timeout=10.0) for p in pending]
        served = [r for r in statuses if r.status == "ok"]
        shed = [r for r in statuses if r.status == "error"]
        assert len(served) >= 1
        assert all(r.error_type == "ServiceOverloadedError" for r in shed)
        assert len(served) + len(shed) == 4  # nothing hangs, ever

    def test_warm_start_from_artifact_dir(self, points, workload, tmp_path):
        first = PredictionService(memory=MEMORY, artifact_dir=tmp_path)
        first.register_tenant("t", points)
        with first:
            reference = first.request("t", workload, timeout=30.0)
        # a second service instance loads the saved artifact instead of
        # refitting, and serves bit-identical answers
        second = PredictionService(memory=MEMORY, artifact_dir=tmp_path)
        second.register_tenant("t", points)
        assert [e[1] for e in second.store.events] == ["hit"]
        with second:
            warm = second.request("t", workload, timeout=30.0)
        assert np.array_equal(
            reference.result.per_query, warm.result.per_query
        )

    def test_register_validates_points(self):
        service = PredictionService()
        with pytest.raises(InputValidationError):
            service.register_tenant("t", np.array([[np.nan, 1.0]]))

    def test_metrics_shape(self, points, workload):
        service = PredictionService(workers=2)
        service.register_tenant("t", points)
        with service:
            service.request("t", workload, timeout=30.0)
            metrics = service.metrics()
        assert metrics["requests_resolved"] == 1
        assert metrics["tenants"]["t"]["completed"] == 1
        assert metrics["workers_alive"] == 2

    def test_metrics_uptime_and_liveness(self, points, workload):
        service = PredictionService(workers=3)
        service.register_tenant("t", points)
        assert service.metrics()["uptime_s"] == 0.0  # not yet started
        with service:
            service.request("t", workload, timeout=30.0)
            first = service.metrics()
            second = service.metrics()
        assert first["uptime_s"] > 0.0
        assert second["uptime_s"] >= first["uptime_s"]  # monotonic
        assert len(first["worker_liveness"]) == 3
        assert all(first["worker_liveness"].values())
        # uptime freezes at stop and the liveness map empties with the
        # joined workers
        stopped = service.metrics()
        assert stopped["uptime_s"] >= second["uptime_s"]
        final = service.metrics()
        assert final["uptime_s"] == stopped["uptime_s"]
        assert final["workers_alive"] == 0

    def test_stop_is_idempotent(self, points, workload):
        service = PredictionService(workers=2)
        service.register_tenant("t", points)
        service.start()
        service.request("t", workload, timeout=30.0)
        service.stop()
        service.stop()  # second call is a no-op, not an error
        assert service.metrics()["running"] is False

    def test_stop_never_started_is_noop(self, points):
        service = PredictionService(workers=2)
        service.register_tenant("t", points)
        service.stop()  # signal handlers may reach a pre-start service
        assert service.metrics()["running"] is False


class TestBatchedPrediction:
    """The fused warm path: ``predict_many`` / ``predict_grid`` and the
    request coalescer are pure speed knobs -- every answer, detail dict,
    and charged op is bit-identical to the one-request-at-a-time path."""

    def _workloads(self, points, n):
        return [
            density_biased_knn_workload(
                points, 6 + i, 4, np.random.default_rng(20 + i)
            )
            for i in range(n)
        ]

    def test_predict_many_matches_per_request(self, points, model):
        workloads = self._workloads(points, 3)
        fused = model.predict_many(workloads)
        for workload, result in zip(workloads, fused):
            solo = model.predict(workload)
            np.testing.assert_array_equal(result.per_query, solo.per_query)
            assert result.detail == solo.detail
            assert result.io_cost.ops == solo.io_cost.ops

    def test_predict_many_rejects_mixed_workload_types(self, points, model):
        from repro.workload.queries import RangeWorkload

        knn = self._workloads(points, 1)[0]
        ranged = RangeWorkload(lower=points[:4] - 0.1, upper=points[:4] + 0.1)
        with pytest.raises(InputValidationError):
            model.predict_many([knn, ranged])

    def test_predict_grid_rows_match_with_radii(self, points, model):
        workload = self._workloads(points, 1)[0]
        grid = np.stack([
            workload.radii * s for s in (0.0, 0.5, 1.0, 2.0)
        ])
        fused = model.predict_grid(workload, grid)
        assert len(fused) == 4
        for r, result in enumerate(fused):
            solo = model.predict(workload.with_radii(grid[r]))
            np.testing.assert_array_equal(result.per_query, solo.per_query)
            assert result.detail["grid_row"] == r

    def test_coalesce_knob_validated(self):
        with pytest.raises(InputValidationError):
            PredictionService(coalesce=True, coalesce_window_ms=-1.0)
        with pytest.raises(InputValidationError):
            PredictionService(coalesce=True, coalesce_max_batch=0)

    def test_coalesced_responses_byte_identical(self, points):
        workloads = self._workloads(points, 2)
        per_tenant = 6
        responses = {}
        for coalesce in (False, True):
            service = PredictionService(
                workers=1, max_queue=64, memory=MEMORY,
                default_quota=TenantQuota(max_inflight=64),
                coalesce=coalesce, coalesce_window_ms=250.0,
            )
            for i in range(2):
                service.register_tenant(f"t{i}", points, fit_seed=5)
            with service:
                pending = [
                    (name, service.submit(name, workloads[i]))
                    for _ in range(per_tenant)
                    for i, name in enumerate(("t0", "t1"))
                ]
                responses[coalesce] = [
                    (name, p.result(timeout=60.0)) for name, p in pending
                ]
            if coalesce:
                batching = service.metrics()["batching"]
                assert batching["batches_dispatched"] > 0
                assert (batching["batched_requests"]
                        > batching["batches_dispatched"])
            for i in range(2):
                ledger = service.tenant(f"t{i}").ledger.snapshot()
                assert ledger["completed"] == per_tenant
                assert ledger["charged_ops"] == 0  # warm serves charge none
        for (name_a, a), (name_b, b) in zip(responses[False],
                                            responses[True]):
            assert name_a == name_b
            assert a.status == b.status == "ok"
            assert a.io_ops == b.io_ops
            assert a.result.detail == b.result.detail
            np.testing.assert_array_equal(
                a.result.per_query, b.result.per_query
            )

    def test_full_methods_never_fuse(self, points, workload):
        service = PredictionService(
            workers=1, max_queue=64, memory=MEMORY,
            default_quota=TenantQuota(max_inflight=64),
            coalesce=True, coalesce_window_ms=250.0,
        )
        service.register_tenant("t", points)
        with service:
            pending = [
                service.submit("t", workload, method="resampled", seed=4)
                for _ in range(3)
            ]
            answers = [p.result(timeout=120.0) for p in pending]
        direct = service.tenant("t").predictor.predict(
            points, workload, method="resampled", seed=4
        )
        for response in answers:
            assert response.status == "ok"
            np.testing.assert_array_equal(
                response.result.per_query, direct.per_query
            )
        # governed full requests took the solo path: no warm batches
        assert service.metrics()["batching"]["batches_dispatched"] == 0
