"""Chaos sweep: faults x crash points x seeds, with one invariant.

Every cell of the grid must either reproduce the fault-free prediction
bit-identically (after any retries and crash resumes) or return an
explicitly degraded estimate carrying a degradation record.  A silently
different answer fails the suite.

The sweep seed is taken from the ``CHAOS_SEED`` environment variable
(default 0) so CI can run the same grid under several fault-RNG worlds
without any test-code changes.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.resampled import ResampledModel
from repro.disk.chaos import (
    ChaosCell,
    ChaosOutcome,
    assert_budget_honored,
    assert_no_silent_divergence,
    chaos_grid,
    run_cell,
    run_sweep,
)
from repro.disk.device import SimulatedDisk
from repro.disk.faults import FaultInjector
from repro.disk.journal import WriteAheadJournal
from repro.disk.pagefile import PointFile
from repro.disk.retry import RetryPolicy
from repro.errors import CrashPoint
from repro.ondisk.builder import BuildLog, OnDiskBuilder
from repro.workload.queries import density_biased_knn_workload

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "0"))

C_DATA, C_DIR, MEMORY = 32, 16, 400


@pytest.fixture(scope="module")
def workload(clustered_points):
    return density_biased_knn_workload(
        clustered_points, 30, 11, np.random.default_rng(5)
    )


@pytest.fixture(scope="module")
def model():
    return ResampledModel(C_DATA, C_DIR, memory=MEMORY)


@pytest.fixture(scope="module")
def reference(clustered_points, workload, model):
    file = PointFile.from_points(SimulatedDisk(), clustered_points)
    return model.predict(file, workload, np.random.default_rng(0))


class TestGrid:
    def test_cross_product_with_quiet_cell_dedup(self):
        cells = chaos_grid(
            fault_rates=(0.0, 0.1),
            corruption_rates=(0.0,),
            crash_points=(None, 3),
            seeds=(0, 1),
        )
        # 2*1*2*2 = 8, minus the duplicate all-quiet cell of seed 1
        assert len(cells) == 7
        assert ChaosCell(0.0, 0.0, None, 0) in cells
        assert ChaosCell(0.0, 0.0, None, 1) not in cells

    def test_invariant_rejects_mismatch(self):
        bad = ChaosOutcome(
            cell=ChaosCell(), status="mismatch", per_query=np.zeros(3)
        )
        with pytest.raises(AssertionError, match="silent divergence"):
            assert_no_silent_divergence([bad])

    def test_invariant_rejects_recordless_degradation(self):
        bad = ChaosOutcome(
            cell=ChaosCell(), status="degraded", per_query=np.zeros(3),
            degradation=None,
        )
        with pytest.raises(AssertionError, match="without a record"):
            assert_no_silent_divergence([bad])


class TestChaosSweep:
    def test_sweep_never_silently_diverges(
        self, clustered_points, workload, model
    ):
        """The tentpole assertion: the full grid, one invariant."""
        cells = chaos_grid(
            fault_rates=(0.0, 0.05),
            corruption_rates=(0.0, 0.05),
            crash_points=(None, 1, 25),
            seeds=(CHAOS_SEED,),
        )
        outcomes = run_sweep(clustered_points, workload, model, cells)
        assert_no_silent_divergence(outcomes)
        # The quiet cell must be identical, not merely non-divergent.
        quiet = next(
            o for o in outcomes
            if o.cell == ChaosCell(0.0, 0.0, None, CHAOS_SEED)
        )
        assert quiet.status == "identical"
        assert quiet.crashes == 0

    def test_crash_cells_resume_bit_identical(
        self, clustered_points, workload, model, reference
    ):
        for crash_at in (1, 4, 40):
            cell = ChaosCell(crash_at=crash_at, seed=CHAOS_SEED)
            outcome = run_cell(
                clustered_points, workload, model, cell, reference.per_query
            )
            assert outcome.status == "identical", cell.label()
            assert np.array_equal(outcome.per_query, reference.per_query)

    def test_crash_and_faults_together(
        self, clustered_points, workload, model, reference
    ):
        """A crash mid-run under live fault injection still converges."""
        cell = ChaosCell(
            fault_rate=0.05, corruption_rate=0.05, crash_at=10,
            seed=CHAOS_SEED,
        )
        outcome = run_cell(
            clustered_points, workload, model, cell, reference.per_query
        )
        assert not outcome.silent_divergence
        assert outcome.status in ("identical", "degraded")
        if outcome.status == "degraded":
            assert outcome.degradation

    def test_hopeless_fault_rate_degrades_with_record(
        self, clustered_points, workload, model, reference
    ):
        cell = ChaosCell(fault_rate=1.0, seed=CHAOS_SEED)
        outcome = run_cell(
            clustered_points, workload, model, cell, reference.per_query
        )
        assert outcome.status == "degraded"
        assert outcome.degradation["triggering_error"].startswith(
            "TransientReadError"
        )
        # resampled and cutoff both need the (hopeless) disk; the first
        # diskless method in the chain is mini
        assert outcome.degradation["method_used"] in ("mini", "baseline")
        assert outcome.degradation["attempts"]

    def test_sweep_is_deterministic(
        self, clustered_points, workload, model
    ):
        cells = [ChaosCell(fault_rate=0.1, crash_at=7, seed=CHAOS_SEED)]
        first = run_sweep(clustered_points, workload, model, cells)
        second = run_sweep(clustered_points, workload, model, cells)
        assert first[0].status == second[0].status
        assert np.array_equal(first[0].per_query, second[0].per_query)
        assert first[0].io_cost == second[0].io_cost


class TestBuilderChaos:
    """Crash the on-disk bulk load at swept points; resume must agree."""

    @pytest.fixture(scope="class")
    def build_reference(self, clustered_points):
        file = PointFile.from_points(SimulatedDisk(), clustered_points)
        builder = OnDiskBuilder(C_DATA, C_DIR, MEMORY)
        index = builder.build(file)
        mbrs = sorted(
            (tuple(leaf.mbr.lower), tuple(leaf.mbr.upper))
            for leaf in index.tree.leaves if leaf.mbr is not None
        )
        return mbrs

    @pytest.mark.parametrize("crash_at", [1, 9, 60])
    def test_build_resume_reaches_identical_leaves(
        self, clustered_points, build_reference, crash_at
    ):
        injector = FaultInjector(
            SimulatedDisk(), seed=CHAOS_SEED, crash_at=crash_at
        )
        journal = WriteAheadJournal(injector)
        file = PointFile.from_points(
            injector, clustered_points, retry=RetryPolicy(), journal=journal
        )
        log = BuildLog(injector)
        crashes = 0
        while True:
            builder = OnDiskBuilder(C_DATA, C_DIR, MEMORY)
            try:
                index = builder.build(file, log=log)
                break
            except CrashPoint:
                crashes += 1
                assert crashes <= 8, "builder made no progress"
                injector.reboot()
                report = journal.recover()
                assert report.replayed >= 0  # recovery ran; may be clean
        assert crashes >= 1
        mbrs = sorted(
            (tuple(leaf.mbr.lower), tuple(leaf.mbr.upper))
            for leaf in index.tree.leaves if leaf.mbr is not None
        )
        assert mbrs == build_reference


class TestBudgetAxis:
    """The budget axis: within budget, degraded, or over_budget --
    never hung, never silently overspent."""

    def test_grid_crosses_budget_axis(self):
        cells = chaos_grid(
            fault_rates=(0.0, 0.1),
            corruption_rates=(0.0,),
            crash_points=(None,),
            seeds=(0,),
            budgets=(None, 50),
        )
        # (2 rates x 2 budgets); the quiet dedup drops nothing here
        # because there is only one seed.
        assert len(cells) == 4
        assert ChaosCell(0.0, 0.0, None, 0, max_io_ops=50) in cells
        assert ChaosCell(0.1, 0.0, None, 0, max_io_ops=None) in cells

    def test_ample_budget_cell_stays_identical(
        self, clustered_points, workload, model, reference
    ):
        ungoverned = run_cell(
            clustered_points, workload, model,
            ChaosCell(seed=CHAOS_SEED), reference.per_query,
        )
        cell = ChaosCell(seed=CHAOS_SEED, max_io_ops=10**9)
        outcome = run_cell(
            clustered_points, workload, model, cell, reference.per_query
        )
        assert outcome.status == "identical"
        assert np.array_equal(outcome.per_query, reference.per_query)
        # Zero extra charge versus the same cell run ungoverned.
        assert outcome.io_cost == ungoverned.io_cost
        report = outcome.budget_report
        assert report is not None and report["within_budget"]
        assert report["spent_io_ops"] == outcome.io_cost.ops

    def test_tight_budget_cell_is_explicit(
        self, clustered_points, workload, model, reference
    ):
        cell = ChaosCell(seed=CHAOS_SEED, max_io_ops=10)
        outcome = run_cell(
            clustered_points, workload, model, cell, reference.per_query
        )
        assert outcome.status in ("degraded", "over_budget")
        assert outcome.budget_report is not None
        assert outcome.degradation is not None
        assert_budget_honored([outcome])

    def test_budgeted_sweep_honors_invariants(
        self, clustered_points, workload, model
    ):
        """Budget x fault sweep: both invariants on every cell."""
        cells = chaos_grid(
            fault_rates=(0.0, 0.05),
            corruption_rates=(0.0,),
            crash_points=(None, 10),
            seeds=(CHAOS_SEED,),
            budgets=(None, 10, 10**6),
        )
        outcomes = run_sweep(clustered_points, workload, model, cells)
        assert len(outcomes) == len(cells)  # every cell accounted for
        assert_no_silent_divergence(outcomes)
        assert_budget_honored(outcomes)
        # The amply budgeted quiet cell is identical, like the
        # ungoverned quiet cell.
        ample_quiet = next(
            o for o in outcomes
            if o.cell == ChaosCell(0.0, 0.0, None, CHAOS_SEED,
                                   max_io_ops=10**6)
        )
        assert ample_quiet.status == "identical"

    def test_budget_with_crash_resume_accounts_all_attempts(
        self, clustered_points, workload, model, reference
    ):
        """Crash-resume spend folds into one ledger across reboots."""
        cell = ChaosCell(crash_at=10, seed=CHAOS_SEED, max_io_ops=10**9)
        outcome = run_cell(
            clustered_points, workload, model, cell, reference.per_query
        )
        assert outcome.status == "identical"
        report = outcome.budget_report
        assert report is not None
        # Resuming re-reads state, so the governed total must cover at
        # least the fault-free cost -- and the report must match the
        # cell's own ledger exactly (no charge lost across reboots).
        assert report["spent_io_ops"] == outcome.io_cost.ops
        assert report["spent_io_ops"] >= reference.io_cost.ops

    def test_invariant_rejects_reportless_budget_cell(self):
        bad = ChaosOutcome(
            cell=ChaosCell(max_io_ops=10), status="degraded",
            per_query=np.zeros(3), degradation={"method_used": "mini"},
            budget_report=None,
        )
        with pytest.raises(AssertionError, match="no spend report"):
            assert_budget_honored([bad])

    def test_invariant_rejects_silent_overspend(self):
        bad = ChaosOutcome(
            cell=ChaosCell(max_io_ops=10), status="degraded",
            per_query=np.zeros(3), degradation={"method_used": "mini"},
            budget_report={"spent_io_ops": 99, "within_budget": True},
        )
        with pytest.raises(AssertionError, match="silent overspend"):
            assert_budget_honored([bad])


class TestMediaAxis:
    """At-rest rot x redundancy: repaired-bit-identical or explicitly
    degraded -- never silently wrong."""

    def test_grid_crosses_media_axes(self):
        cells = chaos_grid(
            fault_rates=(0.0,),
            corruption_rates=(0.0,),
            crash_points=(None,),
            seeds=(0, 1),
            at_rest_rates=(0.0, 0.05),
            replication_factors=(1, 2),
        )
        # 2 seeds x 2 rates x 2 factors = 8, minus the two all-quiet
        # cells of seed 1 (ar=0 for both replication factors).
        assert len(cells) == 6
        assert ChaosCell(0.0, 0.0, None, 0,
                         at_rest_rate=0.05, replication_factor=2) in cells
        assert ChaosCell(0.0, 0.0, None, 1, replication_factor=2) not in cells

    def test_invariant_rejects_repairless_repaired(self):
        bad = ChaosOutcome(
            cell=ChaosCell(at_rest_rate=0.05, replication_factor=2),
            status="repaired", per_query=np.zeros(3), repairs=0,
        )
        with pytest.raises(AssertionError, match="zero repair count"):
            assert_no_silent_divergence([bad])

    def test_redundant_cell_is_bit_identical(
        self, clustered_points, workload, model, reference
    ):
        """Rot under mirrors + parity: the prediction must equal the
        fault-free reference bit for bit, with repairs on the record."""
        cell = ChaosCell(
            seed=CHAOS_SEED, at_rest_rate=0.05,
            replication_factor=2, parity=True,
        )
        outcome = run_cell(
            clustered_points, workload, model, cell, reference.per_query
        )
        assert outcome.status in ("identical", "repaired"), cell.label()
        assert np.array_equal(outcome.per_query, reference.per_query)
        if outcome.status == "repaired":
            assert outcome.repairs >= 1

    def test_unreplicated_rot_degrades_explicitly(
        self, clustered_points, workload, model, reference
    ):
        cell = ChaosCell(seed=CHAOS_SEED, at_rest_rate=0.3)
        outcome = run_cell(
            clustered_points, workload, model, cell, reference.per_query
        )
        assert outcome.status == "degraded", cell.label()
        assert outcome.degradation["triggering_error"].startswith(
            "UnrecoverableCorruptionError"
        )
        causes = {a["cause"] for a in outcome.degradation["attempts"]}
        assert "media" in causes

    def test_media_sweep_honors_the_invariant(
        self, clustered_points, workload, model
    ):
        cells = chaos_grid(
            fault_rates=(0.0, 0.05),
            corruption_rates=(0.0,),
            crash_points=(None,),
            seeds=(CHAOS_SEED,),
            at_rest_rates=(0.0, 0.05),
            replication_factors=(2,),
        )
        cells = [ChaosCell(
            c.fault_rate, c.corruption_rate, c.crash_at, c.seed,
            at_rest_rate=c.at_rest_rate,
            replication_factor=c.replication_factor, parity=True,
        ) for c in cells]
        outcomes = run_sweep(clustered_points, workload, model, cells)
        assert len(outcomes) == len(cells)
        assert_no_silent_divergence(outcomes)

    def test_media_cells_are_deterministic(
        self, clustered_points, workload, model
    ):
        cells = [ChaosCell(seed=CHAOS_SEED, at_rest_rate=0.05,
                           replication_factor=2, parity=True)]
        first = run_sweep(clustered_points, workload, model, cells)
        second = run_sweep(clustered_points, workload, model, cells)
        assert first[0].status == second[0].status
        assert first[0].repairs == second[0].repairs
        assert np.array_equal(first[0].per_query, second[0].per_query)
        assert first[0].io_cost == second[0].io_cost
