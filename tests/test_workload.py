"""Tests for query workload construction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workload.queries import (
    KNNWorkload,
    RangeWorkload,
    density_biased_knn_workload,
    density_biased_range_workload,
    exact_knn_radii,
)


class TestExactRadii:
    def test_matches_naive(self, rng):
        points = rng.random((300, 5))
        queries = rng.random((7, 5))
        radii = exact_knn_radii(points, queries, k=4)
        for i, q in enumerate(queries):
            dists = np.sort(np.linalg.norm(points - q, axis=1))
            assert radii[i] == pytest.approx(dists[3])

    def test_chunked_matches_unchunked(self, rng):
        points = rng.random((1000, 3))
        queries = rng.random((5, 3))
        a = exact_knn_radii(points, queries, 10, chunk_rows=64)
        b = exact_knn_radii(points, queries, 10, chunk_rows=10**6)
        assert np.allclose(a, b)

    def test_query_in_dataset_includes_self(self, rng):
        points = rng.random((50, 3))
        radii = exact_knn_radii(points, points[:3], k=1)
        assert np.allclose(radii, 0.0)

    def test_k_equals_n(self, rng):
        points = rng.random((20, 2))
        radii = exact_knn_radii(points, points[:1], k=20)
        dists = np.linalg.norm(points - points[0], axis=1)
        assert radii[0] == pytest.approx(dists.max())

    def test_invalid_k(self, rng):
        points = rng.random((20, 2))
        with pytest.raises(ValueError):
            exact_knn_radii(points, points[:1], k=0)
        with pytest.raises(ValueError):
            exact_knn_radii(points, points[:1], k=21)

    def test_single_query_1d_input(self, rng):
        points = rng.random((30, 4))
        radii = exact_knn_radii(points, points[0], k=3)
        assert radii.shape == (1,)


class TestKNNWorkload:
    def test_density_biased_queries_come_from_data(self, clustered_points, rng):
        workload = density_biased_knn_workload(clustered_points, 20, 5, rng)
        assert workload.n_queries == 20
        for i in range(20):
            assert np.allclose(
                workload.queries[i], clustered_points[workload.query_ids[i]]
            )

    def test_radii_are_exact(self, clustered_points, rng):
        workload = density_biased_knn_workload(clustered_points, 5, 21, rng)
        check = exact_knn_radii(clustered_points, workload.queries, 21)
        assert np.allclose(workload.radii, check)

    def test_more_queries_than_points(self, rng):
        points = rng.random((10, 2))
        workload = density_biased_knn_workload(points, 50, 2, rng)
        assert workload.n_queries == 50

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            density_biased_knn_workload(rng.random((10, 2)), 0, 1, rng)
        with pytest.raises(ValueError):
            KNNWorkload(
                k=0,
                query_ids=np.zeros(1, np.int64),
                queries=np.zeros((1, 2)),
                radii=np.zeros(1),
            )
        with pytest.raises(ValueError):
            KNNWorkload(
                k=1,
                query_ids=np.zeros(2, np.int64),
                queries=np.zeros((1, 2)),
                radii=np.zeros(1),
            )


class TestRangeWorkload:
    def test_boxes_centered_on_data(self, clustered_points, rng):
        workload = density_biased_range_workload(clustered_points, 10, 0.2, rng)
        assert workload.n_queries == 10
        centers = (workload.lower + workload.upper) / 2.0
        # each center must be a data point
        for c in centers:
            assert np.min(np.linalg.norm(clustered_points - c, axis=1)) < 1e-9

    def test_per_dimension_sides(self, rng):
        points = rng.random((50, 3))
        side = np.array([0.1, 0.2, 0.4])
        workload = density_biased_range_workload(points, 5, side, rng)
        assert np.allclose(workload.upper - workload.lower,
                           np.broadcast_to(side, (5, 3)))

    def test_negative_side_rejected(self, rng):
        with pytest.raises(ValueError):
            density_biased_range_workload(rng.random((10, 2)), 2, -0.1, rng)

    def test_inverted_box_rejected(self):
        with pytest.raises(ValueError):
            RangeWorkload(lower=np.ones((1, 2)), upper=np.zeros((1, 2)))
