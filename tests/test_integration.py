"""End-to-end integration tests reproducing the paper's key claims at
test scale (fast but meaningful shapes).

The benchmark harness (benchmarks/) produces the full tables; these
tests pin the *directional* claims so regressions are caught in CI.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.predictor import IndexCostPredictor
from repro.core.resampled import ResampledModel
from repro.core.topology import Topology
from repro.data import datasets, generators
from repro.disk.device import SimulatedDisk
from repro.disk.pagefile import PointFile
from repro.experiments.runner import pearson_correlation
from repro.ondisk.measure import measure_knn


@pytest.fixture(scope="module")
def texture_small():
    """A TEXTURE60-analogue slice with its ground truth."""
    points = datasets.texture60(scale=0.04, seed=1)  # ~11k x 60
    predictor = IndexCostPredictor(dim=60, memory=800)
    workload = predictor.make_workload(points, 60, 21, seed=2)
    index = predictor.build_ondisk(points)
    measurement = measure_knn(index, workload)
    return points, predictor, workload, index, measurement


class TestPredictionAccuracy:
    def test_resampled_within_table3_band(self, texture_small):
        """Table 3: the resampled method at the heuristic h_upper lands
        within a few percent of the measured accesses."""
        points, predictor, workload, _, measurement = texture_small
        estimate = predictor.predict(points, workload, method="resampled")
        assert abs(estimate.relative_error(measurement.mean_accesses)) < 0.15

    def test_cutoff_underestimates(self, texture_small):
        """Table 3: every cutoff prediction underestimates on clustered
        data (boxes shrink and uniform synthesis cannot recover)."""
        points, predictor, workload, _, measurement = texture_small
        topo = predictor.topology(points.shape[0])
        for h_upper in range(2, topo.height):
            estimate = predictor.predict(
                points, workload, method="cutoff", h_upper=h_upper
            )
            assert estimate.relative_error(measurement.mean_accesses) < 0.05

    def test_cutoff_error_bounded_at_tall_upper_tree(self, texture_small):
        """Table 3: with the tallest upper tree, the cutoff estimate
        stays within a moderate band (the paper reports -16% at h=4;
        the h-monotonicity itself is data-dependent at small scale and
        is exercised by the benchmark harness at full scale)."""
        points, predictor, workload, _, measurement = texture_small
        topo = predictor.topology(points.shape[0])
        estimate = predictor.predict(
            points, workload, method="cutoff", h_upper=topo.height - 1
        )
        assert abs(estimate.relative_error(measurement.mean_accesses)) < 0.35

    def test_resampled_error_sign_flips_with_h_upper(self, texture_small):
        """Section 4.5.2: small upper trees underestimate; at/after the
        sigma_lower = 1 point the estimate stops underestimating."""
        points, predictor, workload, _, measurement = texture_small
        topo = predictor.topology(points.shape[0])
        errors = {
            h: predictor.predict(
                points, workload, method="resampled", h_upper=h
            ).relative_error(measurement.mean_accesses)
            for h in range(2, topo.height)
        }
        sigma = {h: topo.sigma_lower(h, predictor.memory) for h in errors}
        under = [errors[h] for h in errors if sigma[h] < 0.6]
        if under:
            assert min(under) < 0  # strong subsampling underestimates
        saturated = [errors[h] for h in errors if sigma[h] == 1.0]
        if saturated:
            assert max(abs(e) for e in saturated) < 0.25


class TestSpeedups:
    def test_ordering_cutoff_resampled_ondisk(self, texture_small):
        """Table 3's headline: cutoff << resampled << on-disk I/O."""
        points, predictor, workload, index, measurement = texture_small
        cutoff = predictor.predict(points, workload, method="cutoff")
        resampled = predictor.predict(points, workload, method="resampled")
        ondisk_seconds = (index.build_cost + measurement.io_cost).seconds()
        assert cutoff.io_cost.seconds() < resampled.io_cost.seconds()
        assert resampled.io_cost.seconds() < ondisk_seconds

    def test_order_of_magnitude_speedups(self, texture_small):
        points, predictor, workload, index, measurement = texture_small
        cutoff = predictor.predict(points, workload, method="cutoff")
        resampled = predictor.predict(points, workload, method="resampled")
        ondisk_seconds = (index.build_cost + measurement.io_cost).seconds()
        assert ondisk_seconds / cutoff.io_cost.seconds() > 10
        assert ondisk_seconds / resampled.io_cost.seconds() > 3


class TestCorrelation:
    def test_resampled_per_query_correlates(self, texture_small):
        """Figures 11/12: per-query predictions correlate with per-query
        measurements (the cutoff's near-zero correlation is the contrast)."""
        points, predictor, workload, _, measurement = texture_small
        resampled = predictor.predict(points, workload, method="resampled")
        r = pearson_correlation(resampled.per_query, measurement.per_query)
        assert r > 0.7

    def test_resampled_beats_cutoff_correlation(self, texture_small):
        points, predictor, workload, _, measurement = texture_small
        resampled = predictor.predict(points, workload, method="resampled")
        cutoff = predictor.predict(points, workload, method="cutoff")
        r_resampled = pearson_correlation(resampled.per_query,
                                          measurement.per_query)
        r_cutoff = pearson_correlation(cutoff.per_query, measurement.per_query)
        assert r_resampled > r_cutoff


class TestUniformValidation:
    """Section 5.2: on genuinely uniform data both phased methods land
    within a few percent (the model's uniformity assumptions hold)."""

    @pytest.fixture(scope="class")
    def uniform_setup(self):
        rng = np.random.default_rng(4)
        points = generators.uniform(20_000, 8, rng)
        predictor = IndexCostPredictor(dim=8, memory=1500, c_data=64, c_dir=32)
        workload = predictor.make_workload(points, 50, 21, seed=3)
        index = predictor.build_ondisk(points)
        measurement = measure_knn(index, workload)
        return points, predictor, workload, measurement

    def test_resampled_accurate(self, uniform_setup):
        points, predictor, workload, measurement = uniform_setup
        estimate = predictor.predict(points, workload, method="resampled")
        assert abs(estimate.relative_error(measurement.mean_accesses)) < 0.10

    def test_cutoff_accurate(self, uniform_setup):
        points, predictor, workload, measurement = uniform_setup
        estimate = predictor.predict(points, workload, method="cutoff")
        assert abs(estimate.relative_error(measurement.mean_accesses)) < 0.15


class TestResampledInternals:
    def test_spill_conservation(self, texture_small):
        """Every resampled point is either spilled to an area or counted
        as overflow-discarded."""
        points, predictor, workload, _, _ = texture_small
        n = points.shape[0]
        topo = Topology(n, predictor.c_data, predictor.c_dir)
        model = ResampledModel(
            predictor.c_data, predictor.c_dir, memory=800
        )
        file = PointFile.from_points(SimulatedDisk(), points)
        result = model.predict(file, workload, np.random.default_rng(0))
        sigma = result.detail["sigma_lower"]
        n_resampled = min(n, round(n * sigma))
        # Leaves of the lower trees hold spilled points; with sigma = 1
        # and no discards the total equals the resample size.
        assert result.detail["n_discarded_overflow"] >= 0
        assert result.detail["n_predicted_leaves"] <= topo.n_leaves
