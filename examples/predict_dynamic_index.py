"""Predicting an insertion-built (dynamic) R*-tree.

The paper evaluates bulk-loaded VAMSplit trees, but its technique
applies to any fixed-capacity-page index (Section 4.7).  This example
exercises that generality end to end: build a tuple-at-a-time R*-tree
(ChooseSubtree / forced reinsertion / R*-split), then predict its query
cost from a sample by running the *same insertion algorithm* with the
page capacity scaled down by the sampling fraction -- the paper's
original Section 3 recipe -- plus Theorem 1 compensation.

Run:  python examples/predict_dynamic_index.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import DynamicMiniIndexModel

from repro.core.dynamic import measure_dynamic_index
from repro.core.topology import page_capacities
from repro.data import datasets
from repro.rtree.tree import RTree
from repro.workload import density_biased_knn_workload


def main() -> None:
    points = datasets.texture60(scale=0.03, seed=9)
    n, dim = points.shape
    c_data, c_dir = page_capacities(8192, dim)
    print(f"dataset: {n:,} x {dim}-d; pages hold {c_data} points")

    workload = density_biased_knn_workload(
        points, 60, 21, np.random.default_rng(6)
    )

    # Ground truth: the full dynamic index, built tuple at a time.
    start = time.perf_counter()
    full = measure_dynamic_index(points, c_data, c_dir)
    build_seconds = time.perf_counter() - start
    measured = full.leaf_accesses_for_radius(
        workload.queries, workload.radii
    ).mean()
    print(
        f"full R*-tree: {full.n_leaves:,} leaves "
        f"(~{n / full.n_leaves / c_data:.0%} fill), built in "
        f"{build_seconds:.1f} s wall; measured {measured:.1f} accesses/query"
    )

    # Bulk-loaded comparison: why packing matters.
    bulk = RTree.bulk_load(points, c_data, c_dir)
    bulk_measured = bulk.leaf_accesses_for_radius(
        workload.queries, workload.radii
    ).mean()
    print(
        f"bulk-loaded tree: {bulk.n_leaves:,} leaves; measured "
        f"{bulk_measured:.1f} accesses/query "
        f"({measured / bulk_measured:.1f}x fewer than the dynamic layout)"
    )

    # Sampling prediction of the dynamic index at several fractions.
    model = DynamicMiniIndexModel(c_data, c_dir)
    print("\nsampling prediction of the dynamic index:")
    for fraction in (0.2, 0.35, 0.5):
        start = time.perf_counter()
        estimate = model.predict(
            points, workload, fraction, np.random.default_rng(12)
        )
        wall = time.perf_counter() - start
        error = (estimate.mean_accesses - measured) / measured
        print(
            f"  {fraction:>4.0%} sample (mini pages hold "
            f"{estimate.detail['c_mini']:>2}): "
            f"{estimate.mean_accesses:7.1f} accesses ({error:+.0%}), "
            f"{wall:.1f} s wall"
        )

    print(
        "\nthe mini R*-tree reproduces the dynamic index's page layout "
        "statistics,\nso the prediction tracks an index the analytical "
        "models cannot describe."
    )


if __name__ == "__main__":
    main()
