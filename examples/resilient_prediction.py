"""Resilience: prediction under injected disk faults.

The prediction pipeline assumes nothing about the disk behaving: this
example injects deterministic transient read faults and torn writes
into the simulated device and shows the three outcomes the facade
guarantees:

1. zero fault rate is zero overhead (identical estimate and ledger);
2. a realistic fault rate is absorbed by priced retries -- the
   estimate is unchanged, the ledger shows what surviving cost;
3. a hostile fault rate kills the resampled spill phase and the
   facade degrades gracefully to the cutoff method, annotating the
   result instead of failing.

Run:  python examples/resilient_prediction.py
"""

from __future__ import annotations

import warnings

from repro import DegradedResultWarning, IndexCostPredictor, RetryPolicy
from repro.data import datasets


def describe(label: str, result) -> None:
    cost = result.io_cost
    line = (
        f"{label:>28}: {result.mean_accesses:7.2f} accesses/query | "
        f"{cost.seeks:4d} seeks {cost.transfers:5d} transfers | "
        f"{cost.retries} retries, {cost.faults_seen} faults"
    )
    degradation = result.detail.get("degradation")
    if degradation and degradation["method_used"] != degradation["method_requested"]:
        line += (
            f" | degraded {degradation['method_requested']} -> "
            f"{degradation['method_used']}"
        )
    print(line)


def main() -> None:
    points = datasets.texture60(scale=0.03, seed=5)
    n, dim = points.shape
    memory = 1_000
    print(f"dataset: {n:,} x {dim}-d; M = {memory:,} points in memory\n")

    clean = IndexCostPredictor(dim=dim, memory=memory)
    workload = clean.make_workload(points, 50, 21, seed=8)
    describe("clean disk", clean.predict(points, workload))

    # 2% of reads fail transiently; the retry policy re-reads with
    # exponential backoff charged in simulated seek time.
    flaky = IndexCostPredictor(
        dim=dim, memory=memory,
        fault_rate=0.02, fault_seed=7,
        retry=RetryPolicy(max_attempts=4),
    )
    describe("2% transient read faults", flaky.predict(points, workload))

    # Every multi-page write tears: the resampled spill phase cannot
    # finish, so the facade falls back to the cutoff method (which
    # never writes) and annotates the estimate.
    hostile = IndexCostPredictor(
        dim=dim, memory=memory,
        torn_write_rate=1.0, fault_seed=3,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedResultWarning)
        degraded = hostile.predict(points, workload)
    describe("100% torn writes", degraded)

    record = degraded.detail["degradation"]
    print("\ndegradation record:")
    print(f"  requested: {record['method_requested']}")
    print(f"  used:      {record['method_used']}")
    for attempt in record["attempts"]:
        print(
            f"  attempt {attempt['method']!r} failed -- {attempt['error']}"
            f" ({attempt['faults_seen']} faults, "
            f"{attempt['retries']} retries)"
        )
    print(
        "\nzero fault rate is guaranteed zero-overhead; priced retries make\n"
        "fault survival visible in the same IOCost ledger the paper uses."
    )


if __name__ == "__main__":
    main()
