"""Index tuning: how many dimensions should the index store?

Reproduces the Section 6.2 application: with a multi-step NN search
(Seidl & Kriegel), the index can store just the first m KLT dimensions
and keep full vectors in an object server.  Fewer indexed dimensions
mean bigger pages and fewer index accesses -- but a weaker filter and
more object-server candidates.  The sweep predicts both sides of that
trade-off and prices the total cost per query.

Run:  python examples/choose_index_dimensions.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import sweep_index_dimensions
from repro.data import datasets
from repro.disk import DiskParameters
from repro.workload import density_biased_knn_workload


def main() -> None:
    points = datasets.texture60(scale=0.05, seed=13)
    n, dim = points.shape
    print(f"dataset: {n:,} x {dim}-d (KLT-sorted columns)")

    workload = density_biased_knn_workload(
        points, 100, 21, np.random.default_rng(4)
    )
    disk = DiskParameters()
    prefixes = (5, 10, 15, 20, 30, 45, 60)
    sweep = sweep_index_dimensions(
        points, workload, prefixes,
        memory=2_000, disk=disk, candidates=True,
    )

    print(
        f"\n{'dims':>5} {'C_data':>7} {'index pages':>12} "
        f"{'candidates':>11} {'est. total ms/query':>20}"
    )
    best_m, best_cost = None, float("inf")
    for point in sweep.points:
        # Multi-step query cost: random index-page reads plus one
        # object-server page read per candidate.
        page_cost = disk.t_seek + disk.t_xfer
        total = (
            point.predicted_accesses * page_cost
            + point.predicted_candidates * page_cost
        )
        if total < best_cost:
            best_m, best_cost = point.n_dimensions, total
        print(
            f"{point.n_dimensions:>5} {point.c_data:>7} "
            f"{point.predicted_accesses:>12.1f} "
            f"{point.predicted_candidates:>11.0f} "
            f"{total * 1000:>20.1f}"
        )

    print(
        f"\npredicted optimum: index the first {best_m} dimensions "
        f"({best_cost * 1000:.1f} ms/query estimated)"
    )
    print(
        "few dims: cheap index but the filter admits thousands of "
        "candidates;\nmany dims: sharp filter but the index itself "
        "costs more -- the optimum balances the two."
    )


if __name__ == "__main__":
    main()
