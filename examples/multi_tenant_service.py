"""Multi-tenant prediction service: isolation, backpressure, warm starts.

One process, many tenants, one promise: every submitted request ends in
exactly one of three states -- bit-identical to an offline prediction,
explicitly degraded with the causal record attached, or a typed error
-- and no tenant can spend another tenant's budget.  This example walks
the serving surface end to end:

1. three tenants register their datasets; fitted models are saved as
   CRC-checksummed artifacts, so a second service boot warm-starts from
   disk bit-identically instead of refitting;
2. warm-path requests answer from the fitted geometry with zero I/O,
   while full governed requests ride the degradation chain under each
   tenant's own I/O allowance and deadline;
3. a starved tenant (tiny I/O allowance) degrades with cause
   ``budget`` while the other tenants' books are untouched, and a
   tenant over its inflight cap is refused with a typed
   `TenantQuotaExceededError`;
4. flooding a tiny queue sheds load with `ServiceOverloadedError`
   instead of queueing unboundedly.

Run:  python examples/multi_tenant_service.py
"""

from __future__ import annotations

import tempfile
import threading
import warnings
from pathlib import Path

from repro import (
    DegradedResultWarning,
    IndexCostPredictor,
    PredictionService,
    ServiceOverloadedError,
    TenantQuota,
    TenantQuotaExceededError,
)
from repro.data import datasets


def describe(response) -> None:
    line = (
        f"{response.tenant:>10} #{response.request_id:<3} "
        f"{response.status:>8}: "
    )
    if response.result is not None:
        line += (
            f"{response.mean_accesses:7.2f} accesses/query | "
            f"{response.io_ops:4d} ops | {response.method_used}"
        )
        if response.status == "degraded":
            line += f" (wanted {response.method_requested}, cause {response.cause})"
    else:
        line += f"{response.error_type} (cause {response.cause})"
    print(line)


def main() -> None:
    points = datasets.texture60(scale=0.02, seed=5)
    n, dim = points.shape
    workload = IndexCostPredictor(dim=dim).make_workload(
        points, 30, 21, seed=8)
    print(f"dataset: {n:,} x {dim}-d, three tenants, four workers\n")

    with tempfile.TemporaryDirectory() as tmp:
        artifact_dir = Path(tmp)

        with PredictionService(workers=4, artifact_dir=artifact_dir) as svc:
            svc.register_tenant("gold", points,
                                quota=TenantQuota(max_inflight=8))
            svc.register_tenant("bronze", points,
                                quota=TenantQuota(max_io_ops=200,
                                                  deadline_s=5.0))
            svc.register_tenant("starved", points,
                                quota=TenantQuota(max_io_ops=5))

            print("-- warm path: answers from the fitted geometry, 0 I/O")
            describe(svc.request("gold", workload))

            print("\n-- governed full predictions under per-tenant budgets")
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DegradedResultWarning)
                describe(svc.request("gold", workload, method="resampled"))
                describe(svc.request("bronze", workload, method="resampled"))
                # 5 ops cannot pay for a resample: the chain degrades
                # with cause "budget" rather than guessing or hanging.
                describe(svc.request("starved", workload, method="resampled"))

            books = svc.metrics()["tenants"]
            print("\n-- per-tenant books (isolation: sums never mix)")
            for name, snap in sorted(books.items()):
                print(f"{name:>10}: {snap['completed']:3d} ok, "
                      f"{snap['degraded']} degraded, "
                      f"{snap['charged_ops']:4d} ops charged, "
                      f"breaker {snap['breaker_state']}")

        print("\n-- over the inflight cap: a typed refusal, not a queue")
        gate = threading.Event()
        with PredictionService(workers=1,
                               pre_request_hook=lambda item: gate.wait()
                               ) as held:
            held.register_tenant("capped", points,
                                 quota=TenantQuota(max_inflight=1))
            first = held.submit("capped", workload)  # takes the one slot
            try:
                held.submit("capped", workload)
            except TenantQuotaExceededError as exc:
                print(f"   second request refused: {exc}")
            gate.set()
            first.result(timeout=60)

        print("\n-- reboot: warm start from checksummed artifacts")
        with PredictionService(workers=2, artifact_dir=artifact_dir) as svc:
            svc.register_tenant("gold", points)
            again = svc.request("gold", workload)
            events = svc.store.events
            print(f"   artifact events on reboot: {events}")
            print(f"   prediction after reload: {again.mean_accesses:.2f} "
                  f"accesses/query (bit-identical to the first boot)")

        print("\n-- backpressure: a full queue sheds, it does not grow")
        with PredictionService(workers=1, max_queue=2) as svc:
            svc.register_tenant("gold", points,
                                quota=TenantQuota(max_inflight=64))
            pending, shed = [], 0
            for _ in range(40):
                try:
                    pending.append(
                        svc.submit("gold", workload, method="resampled"))
                except ServiceOverloadedError:
                    shed += 1
            for p in pending:
                p.result(timeout=60)
            print(f"   {len(pending)} served, {shed} shed with "
                  f"ServiceOverloadedError, 0 hung")


if __name__ == "__main__":
    main()
