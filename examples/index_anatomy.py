"""Index anatomy: why layouts differ, in numbers.

Builds the same dataset into four index structures -- bulk-loaded
VAMSplit R-tree, dynamic R*-tree, SS-tree, and k-d-B-tree -- and puts
their page statistics (utilization, volume, overlap) next to their
measured query cost, then streams neighbors incrementally from the
best one.  The statistics explain the access counts: packed pages +
low overlap = few accesses.

Run:  python examples/index_anatomy.py
"""

from __future__ import annotations

import numpy as np

from repro.core.dynamic import measure_dynamic_index
from repro.core.topology import page_capacities
from repro.data import datasets
from repro.rtree.kdb import KDBTree
from repro.rtree.search import incremental_nn
from repro.rtree.sstree import SSTree
from repro.rtree.stats import leaf_statistics
from repro.rtree.tree import RTree
from repro.workload import density_biased_knn_workload


def box_stats(index, capacity):
    lower, upper = (
        index.leaf_corners() if callable(getattr(index, "leaf_corners"))
        else index.leaf_corners
    )
    occupancies = np.array(
        [l.n_points for l in index.leaves if l.mbr is not None]
    )
    return leaf_statistics(lower, upper, occupancies, capacity)


def main() -> None:
    points = datasets.texture60(scale=0.03, seed=21)
    n, dim = points.shape
    c_data, c_dir = page_capacities(8192, dim)
    workload = density_biased_knn_workload(
        points, 60, 21, np.random.default_rng(9)
    )
    print(f"dataset: {n:,} x {dim}-d; page capacity {c_data}\n")

    bulk = RTree.bulk_load(points, c_data, c_dir)
    dynamic = measure_dynamic_index(points, c_data, c_dir)
    spheres = SSTree.bulk_load(points, c_data, c_dir)
    kdb = KDBTree.bulk_load(points, c_data)

    def accesses(index):
        return index.leaf_accesses_for_radius(
            workload.queries, workload.radii
        ).mean()

    print(f"{'structure':>16} {'accesses':>9} {'leaves':>7} {'fill':>6} "
          f"{'overlap pairs':>14}")
    for name, index in (("bulk R-tree", bulk), ("dynamic R*", dynamic),
                        ("k-d-B-tree", kdb)):
        stats = box_stats(index, c_data)
        print(
            f"{name:>16} {accesses(index):>9.1f} {stats.n_leaves:>7,} "
            f"{stats.utilization:>6.0%} {stats.overlap_pairs:>14,}"
        )
    # Sphere pages have no box stats; report accesses only.
    print(f"{'SS-tree':>16} {accesses(spheres):>9.1f} "
          f"{spheres.n_leaves:>7,} {'':>6} {'(sphere pages)':>14}")

    print(
        "\npacked pages (high fill) and few overlaps are exactly what "
        "keep access\ncounts low -- the statistics explain the ranking."
    )

    # Stream the first few neighbors incrementally from the best index.
    query = points[0]
    stream = incremental_nn(bulk.points, bulk.root, query)
    print("\nincremental neighbors of point 0 (bulk R-tree):")
    for rank, (pid, dist) in enumerate(stream, start=1):
        print(f"  #{rank}: point {pid} at distance {dist:.4f}")
        if rank == 5:
            break


if __name__ == "__main__":
    main()
