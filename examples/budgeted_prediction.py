"""Anytime prediction under explicit resource budgets.

The sampling predictors exist because full index builds are too
expensive -- but "cheaper" is not "free", and a production planner
needs a *guaranteed* horizon: answer within this many charged I/O
operations and this many milliseconds, or say explicitly what was cut.
This example runs the same prediction three ways:

* **ungoverned** -- the reference answer and its exact I/O ledger;
* **ample budget** -- governed, with room to spare: the estimate is
  bit-identical and not one extra operation is charged (governance is
  bookkeeping, never interference);
* **tight budget** -- governed, with less I/O than the resampled
  method needs: the facade downgrades mid-flight along
  ``resampled -> cutoff -> mini -> closed-form`` and the result says
  which method answered, what tripped, and where every operation went.

A final hedged run races the governed chain against a cheap concurrent
estimate under a wall-clock deadline and reports which path landed.

Run:  python examples/budgeted_prediction.py
"""

from __future__ import annotations

import warnings

from repro import Budget, DegradedResultWarning, IndexCostPredictor
from repro.data import datasets


def describe(label: str, result) -> None:
    print(f"\n{label}")
    print(f"  predicted accesses/query: {result.mean_accesses:.2f}")
    print(f"  charged I/O: {result.io_cost.seeks:,} seeks + "
          f"{result.io_cost.transfers:,} transfers")
    degradation = result.detail.get("degradation")
    if degradation:
        steps = " -> ".join(
            f"{a['method']} ({a['cause']})" for a in degradation["attempts"]
        )
        print(f"  degraded: {steps} -> {degradation['method_used']} answered")
    spend = result.detail.get("budget")
    if spend:
        print(f"  spend: {spend['spent_io_ops']} ops"
              + (f" of {spend['max_io_ops']}"
                 if spend["max_io_ops"] is not None else "")
              + f", within budget: {spend['within_budget']}")
        if spend["phase_spend"]:
            for phase, ops in spend["phase_spend"].items():
                print(f"    {phase}: {ops} ops")
        if spend["exhausted"]:
            trip = spend["exhausted"]
            print(f"  tripped: {trip['resource']} at phase "
                  f"{trip['phase']!r} ({trip['spent']} of {trip['limit']})")
    hedge = result.detail.get("hedge")
    if hedge:
        print(f"  hedge: {hedge['winner']} path answered in "
              f"{hedge['elapsed_s'] * 1000:.0f} ms")


def main() -> None:
    points = datasets.texture60(scale=0.02, seed=7)
    predictor = IndexCostPredictor(dim=points.shape[1], memory=2_000)
    workload = predictor.make_workload(points, n_queries=50, k=21, seed=1)
    print(f"dataset: {points.shape[0]:,} x {points.shape[1]}-d")

    reference = predictor.predict(points, workload, method="resampled", seed=3)
    describe("ungoverned reference", reference)

    ample = predictor.predict(
        points, workload, method="resampled", seed=3,
        budget=Budget(max_io_ops=1_000_000, max_seconds=3600.0),
    )
    describe("ample budget (bit-identical, zero extra I/O)", ample)
    assert ample.io_cost == reference.io_cost
    assert (ample.per_query == reference.per_query).all()

    tight_ops = max(10, reference.io_cost.ops // 4)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedResultWarning)
        tight = predictor.predict(
            points, workload, method="resampled", seed=3,
            budget=Budget(max_io_ops=tight_ops),
        )
    describe(f"tight budget ({tight_ops} ops)", tight)

    hedged = predictor.predict(
        points, workload, method="resampled", seed=3,
        budget=Budget(max_seconds=30.0), hedge=True,
    )
    describe("hedged under a 30 s deadline", hedged)


if __name__ == "__main__":
    main()
