"""Sharded prediction cluster: partition, tune, replicate, survive.

One dataset, split by query similarity into shards; each shard's index
page size tuned by the sampling predictor against that shard's own
workload slice; every shard placed on two replicas registering the
*identical* tuned configuration, so the owners' warm-start artifacts
are bit-identical and either can serve.  The walkthrough then breaks
things on purpose:

1. a healthy prediction over the whole workload, routed per shard to
   the cheapest owner;
2. the primary owner of shard 0 is killed -- its requests fail over to
   the peer with a causal record attached, and the answers stay
   *bit-identical* (same fitted geometry, same fit seed);
3. the peer is killed too -- with no owner left the router serves an
   explicitly degraded closed-form estimate (``cause="unavailable"``),
   or, with degradation disabled, a typed ``ReplicaUnavailableError``;
4. both replicas come back; one's on-disk artifact is corrupted and
   the anti-entropy pass heals it *from the peer's bytes* -- no refit,
   byte-for-byte identical -- after which serving is warm again.

Run:  python examples/sharded_cluster.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro import PredictionCluster
from repro.workload import density_biased_knn_workload


def verdicts(prediction) -> str:
    parts = []
    for r in prediction.responses:
        tag = f"shard {r.shard}: {r.status}"
        if r.served_by:
            tag += f" by {r.served_by}"
        if r.failover_from:
            tag += f" (failover from {r.failover_from}, tried {r.tried})"
        if r.cause:
            tag += f" [cause {r.cause}]"
        parts.append(tag)
    return "; ".join(parts)


def main() -> None:
    rng = np.random.default_rng(7)
    # two separated regimes: a diffuse blob and a tight one -- exactly
    # the heterogeneity that makes one global page size a compromise
    data = np.vstack([
        rng.normal(0.0, 1.0, (400, 6)),
        rng.normal(6.0, 0.3, (400, 6)),
    ])
    tuning = density_biased_knn_workload(data, 24, 5, rng)

    with tempfile.TemporaryDirectory() as root:
        with PredictionCluster(
            data, tuning, artifact_root=root,
            n_shards=2, n_replicas=3, replication=2, memory=80,
        ) as cluster:
            for shard, config in sorted(cluster.shard_configs.items()):
                owners = cluster.router.table.owners_of(shard)
                print(f"shard {shard}: {len(cluster.shard_points[shard])} "
                      f"points, tuned page {config.page_bytes // 1024} KB, "
                      f"owners {list(owners)}")

            workload = cluster.make_workload(12, 5, seed=1)
            healthy = cluster.predict(workload)
            print(f"\nhealthy    mean {healthy.mean_accesses:6.2f}  "
                  f"({verdicts(healthy)})")

            owners0 = cluster.router.table.owners_of(0)
            cluster.kill_replica(owners0[0])
            one_down = cluster.predict(workload)
            print(f"one down   mean {one_down.mean_accesses:6.2f}  "
                  f"({verdicts(one_down)})")
            print(f"           bit-identical to healthy: "
                  f"{np.array_equal(one_down.per_query, healthy.per_query)}")

            cluster.kill_replica(owners0[1])
            all_down = cluster.predict(workload)
            print(f"all down   mean {all_down.mean_accesses:6.2f}  "
                  f"({verdicts(all_down)})")

            typed = cluster.request(
                0, cluster.partition.split(workload)[0][2], degrade=False
            )
            print(f"           without degradation: {typed.error_type} "
                  f"(tried {typed.tried})")

            cluster.restart_replica(owners0[0])
            cluster.restart_replica(owners0[1])
            cluster.corrupt_artifact(owners0[0], 0)
            report = cluster.anti_entropy()
            print(f"\nanti-entropy on shard 0: healed "
                  f"{report[0]['healed']}, data rebuild: "
                  f"{report[0]['rebuilt']}")

            recovered = cluster.predict(workload)
            print(f"recovered  mean {recovered.mean_accesses:6.2f}  "
                  f"bit-identical: "
                  f"{np.array_equal(recovered.per_query, healthy.per_query)}")


if __name__ == "__main__":
    main()
