"""Elastic cluster topology: scale, split, and re-tune without dropping.

A sharded prediction cluster whose *topology* changes while it serves.
Every change is fenced by a routing epoch: the new table is installed,
in-flight requests admitted under the old epoch drain to completion,
and only then are the old generation's ledgers folded -- so the
per-shard op books stay exact across every boundary.  The walkthrough:

1. a healthy prediction on the starting topology (2 shards, 2 owners
   each), with the routing epoch printed;
2. scale-out -- a faster replica joins at runtime, warmed from a
   verified peer's artifact *bytes* (zero refits), and immediately
   becomes the cost-ordered primary; answers stay bit-identical;
3. a router pinned to the old epoch is refused with a typed
   ``StaleRoutingEpochError`` -- fenced, not silently misrouted;
4. drifted traffic (query centers walking away from the frozen tuning
   centers) trips the drift detector, and the flagged shard is re-tuned
   against the observed workload through the governed reorganization
   budget -- the successor is a fresh shard id, the parent's charges
   survive in the retired books;
5. the most expensive shard is split in two, each half re-tuned on its
   own workload slice behind the same fence;
6. scale-in -- the extra replica drains gracefully and its ledger is
   folded, after which the three-way op reconciliation (router legs ==
   replica ledgers incl. retired generations == response sums) is
   printed per shard, exact.

Run:  python examples/elastic_cluster.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro import PredictionCluster
from repro.errors import StaleRoutingEpochError
from repro.workload import KNNWorkload, density_biased_knn_workload


def main() -> None:
    rng = np.random.default_rng(11)
    data = np.vstack([
        rng.normal(0.0, 1.0, (400, 6)),
        rng.normal(6.0, 0.3, (400, 6)),
    ])
    tuning = density_biased_knn_workload(data, 24, 5, rng)

    with tempfile.TemporaryDirectory() as root:
        with PredictionCluster(
            data, tuning, artifact_root=root,
            n_shards=2, n_replicas=2, replication=2, memory=80,
            drift_threshold=0.25, min_drift_observations=8,
        ) as cluster:
            print(f"routing epoch {cluster.router.table.epoch}: "
                  f"shards {cluster.active_shards()}, replicas "
                  f"{sorted(cluster.replicas)}")

            workload = cluster.make_workload(12, 5, seed=1)
            healthy = cluster.predict(workload)
            print(f"healthy     mean {healthy.mean_accesses:6.2f}")

            # -- scale-out: warm from peer bytes, fence, re-route -------
            pinned = cluster.router.table.epoch
            grown = cluster.add_replica(latency_factor=0.25)
            vias = ", ".join(w["via"] for w in grown["warmed"])
            print(f"\nscale-out   +{grown['replica']} (epoch "
                  f"{grown['epoch']}, refits {grown['refits']}, "
                  f"warmed via {vias})")
            scaled = cluster.predict(workload)
            print(f"            bit-identical after scale: "
                  f"{np.array_equal(scaled.per_query, healthy.per_query)}")

            # -- a stale router is fenced with a typed error ------------
            _, _, sub = cluster.partition.split(workload)[0]
            try:
                cluster.request(cluster.active_shards()[0], sub,
                                epoch=pinned)
            except StaleRoutingEpochError as exc:
                print(f"stale pin   epoch {exc.presented} refused "
                      f"(current {exc.current}): typed, retryable")

            # -- drift: shifted traffic trips the detector --------------
            drift_rng = np.random.default_rng(5)
            shard0 = cluster.active_shards()[0]
            center = cluster.partition.centroids[0] + 2.5
            for _ in range(2):
                drifted = KNNWorkload(
                    k=5,
                    query_ids=np.arange(12),
                    queries=drift_rng.normal(center, 0.4, (12, 6)),
                    radii=np.full(12, 0.5),
                )
                cluster.request(shard0, drifted)
            proposals = cluster.topology.proposals()["re_tune"]
            print(f"\ndrift       proposals: {proposals}")
            applied = cluster.topology.apply_drift_proposals()
            for entry in applied:
                print(f"re-tune     shard {entry['shard']} -> successor "
                      f"{entry.get('successor')} (epoch "
                      f"{cluster.router.table.epoch})")

            # -- split the costliest shard behind the same fence --------
            candidates = cluster.topology.split_candidates()
            target = (candidates[0]["shard"] if candidates
                      else max(cluster.active_shards()))
            children = cluster.split_shard(target)
            print(f"split       shard {target} -> children "
                  f"{list(children)} (epoch "
                  f"{cluster.router.table.epoch})")
            after_split = cluster.predict(
                cluster.make_workload(12, 5, seed=1), method="cutoff"
            )
            print(f"            post-split mean "
                  f"{after_split.mean_accesses:6.2f} across "
                  f"{len(after_split.responses)} shards")

            # -- scale-in: drain, fold the ledger, reconcile ------------
            folded = cluster.remove_replica(grown["replica"])
            print(f"\nscale-in    -{folded['replica']} (epoch "
                  f"{folded['epoch']}, folded ops "
                  f"{sum(folded['retired_ops'].values())})")

            drained = cluster.router.drain()
            print("reconciliation (router == ledgers incl. retired):")
            shards = sorted(set(drained) | set(cluster.active_shards())
                            | set(cluster.retired_shards))
            for shard in shards:
                r = drained.get(shard, 0)
                c = cluster.charged_ops(shard)
                mark = "==" if r == c else "!="
                print(f"  shard {shard}: router {r} {mark} ledgers {c}")


if __name__ == "__main__":
    main()
