"""Self-healing storage: replication, parity, repair-on-read, scrubbing.

Disks do not only fail in transit -- bits rot on the platter while
nobody is looking.  This example injects deterministic at-rest
corruption into the simulated device and walks the escalation ladder
the storage layer guarantees:

1. with no redundancy, rot on a data page is detected (checksums) but
   unrecoverable: the facade degrades explicitly, never silently;
2. with a mirror plus a parity stripe, the same rot is repaired the
   moment the page is read -- the answer is bit-identical to a clean
   disk, and every repair is priced in a separate redundancy ledger;
3. a background scrub sweeps the whole file, healing rot *before* a
   query ever touches it, and reports exactly what it found.

Run:  python examples/self_healing.py
"""

from __future__ import annotations

import warnings

import numpy as np

from repro import DegradedResultWarning, IndexCostPredictor, RetryPolicy
from repro.data import datasets


def describe(label: str, result) -> None:
    cost = result.io_cost
    line = (
        f"{label:>26}: {result.mean_accesses:7.2f} accesses/query | "
        f"{cost.seeks:4d} seeks {cost.transfers:5d} transfers"
    )
    redundancy = result.detail.get("redundancy")
    if redundancy:
        line += (
            f" | {redundancy['repairs']} repaired, upkeep "
            f"{redundancy['redundancy_seeks']} sk "
            f"{redundancy['redundancy_transfers']} tr"
        )
    degradation = result.detail.get("degradation")
    if degradation and degradation["method_used"] != degradation["method_requested"]:
        line += (
            f" | degraded {degradation['method_requested']} -> "
            f"{degradation['method_used']}"
        )
    print(line)


def main() -> None:
    points = datasets.texture60(scale=0.03, seed=5)
    n, dim = points.shape
    memory = 1_000
    rate = 0.05
    print(f"dataset: {n:,} x {dim}-d; M = {memory:,} points in memory")
    print(f"at-rest corruption: {rate:.0%} of pages rot on first touch\n")

    clean = IndexCostPredictor(dim=dim, memory=memory)
    workload = clean.make_workload(points, 50, 21, seed=8)
    baseline = clean.predict(points, workload)
    describe("clean disk", baseline)

    # Rot with a single copy of every page: checksums catch it, but
    # there is nothing to rebuild from.  The facade records the media
    # failure and falls back rather than returning flipped bits.
    bare = IndexCostPredictor(
        dim=dim, memory=memory,
        at_rest_corruption_rate=rate, fault_seed=3,
        verify_checksums=True, retry=RetryPolicy(max_attempts=4),
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedResultWarning)
        degraded = bare.predict(points, workload)
    describe("rot, no redundancy", degraded)
    record = degraded.detail.get("degradation")
    if record:
        causes = {a.get("cause") for a in record["attempts"]}
        print(f"{'':>28}  failure causes on record: {sorted(causes)}")

    # Same rot, but every page has a mirror and each stripe a parity
    # page.  Repair-on-read rebuilds the rotten page from a clean copy
    # and rewrites it, so the estimate matches the clean disk exactly.
    healed = IndexCostPredictor(
        dim=dim, memory=memory,
        at_rest_corruption_rate=rate, fault_seed=3,
        replication_factor=2, parity=True,
        retry=RetryPolicy(max_attempts=4),
    )
    repaired = healed.predict(points, workload)
    describe("rot + mirror + parity", repaired)
    identical = np.array_equal(repaired.per_query, baseline.per_query)
    print(f"{'':>28}  bit-identical to clean disk: {identical}")

    # The scrubber sweeps every data page (and the redundant copies)
    # in the background, so rot is healed before queries ever see it.
    scrubbed = IndexCostPredictor(
        dim=dim, memory=memory,
        at_rest_corruption_rate=rate, fault_seed=3,
        replication_factor=2, parity=True, scrub=True,
        retry=RetryPolicy(max_attempts=4),
    )
    swept = scrubbed.predict(points, workload)
    describe("... with background scrub", swept)
    report = swept.detail["scrub"]
    print(
        f"{'':>28}  scrub report: {report['pages_scanned']}/"
        f"{report['pages_total']} pages scanned, "
        f"{report['repaired']} repaired, "
        f"{report['copies_repaired']} copies rewritten, "
        f"unrecoverable: {report['unrecoverable'] or 'none'}"
    )

    upkeep = repaired.detail["redundancy"]
    print(
        "\nredundancy is never free -- it is billed separately so the\n"
        "paper's cost model stays clean: this run charged "
        f"{upkeep['redundancy_seeks']} seeks and "
        f"{upkeep['redundancy_transfers']} transfers of upkeep on top of\n"
        f"the {repaired.io_cost.seeks} seeks / "
        f"{repaired.io_cost.transfers} transfers the prediction itself "
        "cost.\n"
        "the invariant: answers are bit-identical, repaired-bit-identical,\n"
        "or explicitly degraded -- never silently wrong."
    )


if __name__ == "__main__":
    main()
