"""Quickstart: predict index query cost without building the index.

Generates a clustered high-dimensional dataset, builds a density-biased
21-NN workload, predicts the average number of index leaf-page accesses
with the sampling-based model under a memory budget, and verifies the
prediction against the measured ground truth (the actually built
on-disk index).

Run:  python examples/quickstart.py
"""

from __future__ import annotations


from repro import IndexCostPredictor
from repro.data import datasets


def main() -> None:
    # A synthetic analogue of the paper's TEXTURE60 dataset (scaled for
    # a quick run; scale=1.0 gives the paper's 275,465 points).
    points = datasets.texture60(scale=0.05, seed=7)
    n, dim = points.shape
    print(f"dataset: {n:,} points in {dim} dimensions")

    # The predictor derives page capacities from the disk geometry
    # (8 KB pages -> C_data=34, C_dir=16 at 60 dimensions) and holds at
    # most `memory` points in RAM.
    predictor = IndexCostPredictor(dim=dim, memory=2_000)
    print(
        f"index: C_data={predictor.c_data}, C_dir={predictor.c_dir}, "
        f"height={predictor.topology(n).height}, "
        f"~{predictor.topology(n).n_leaves:,} leaf pages"
    )

    # The paper's workload: query points drawn from the data itself,
    # exact 21-NN sphere radii from one full scan.
    workload = predictor.make_workload(points, n_queries=100, k=21, seed=1)

    # Predict with each method.  `io_cost` is the I/O the *prediction*
    # itself needed on the simulated disk.
    for method in ("mini", "cutoff", "resampled"):
        estimate = predictor.predict(points, workload, method=method)
        print(
            f"  {method:>9}: {estimate.mean_accesses:7.1f} leaf accesses "
            f"per query, prediction I/O = {estimate.io_cost.seconds():6.2f} s"
        )

    # Ground truth: bulk load the index on the simulated disk and run
    # the queries for real.
    index = predictor.build_ondisk(points)
    measurement = predictor.measure(points, workload, index=index)
    total = (index.build_cost + measurement.io_cost).seconds()
    print(
        f"   measured: {measurement.mean_accesses:7.1f} leaf accesses per "
        f"query, on-disk build + query I/O = {total:6.2f} s"
    )

    estimate = predictor.predict(points, workload, method="resampled")
    error = estimate.relative_error(measurement.mean_accesses)
    speedup = total / estimate.io_cost.seconds()
    print(
        f"\nresampled prediction error: {error:+.1%}; "
        f"{speedup:.0f}x cheaper than building and probing the index"
    )


if __name__ == "__main__":
    main()
