"""Restricted memory: the accuracy / I/O trade-off of phased prediction.

Walks the Section 4 machinery explicitly: for every feasible upper-tree
height h_upper, run both the cutoff and the resampled predictor,
showing sampling ratios, prediction error, and the I/O each prediction
itself cost -- the under-to-overestimation sweep of Section 4.5.2 and
the I/O growth of Section 4.5.3, side by side with the analytical
formulas (Eqs. 3 and 5).

Run:  python examples/restricted_memory_prediction.py
"""

from __future__ import annotations

from repro import IndexCostPredictor
from repro.core.costmodel import AnalyticalCostModel
from repro.data import datasets


def main() -> None:
    points = datasets.texture60(scale=0.08, seed=5)
    n, dim = points.shape
    memory = 2_000
    predictor = IndexCostPredictor(dim=dim, memory=memory)
    topology = predictor.topology(n)
    print(
        f"dataset: {n:,} x {dim}-d; M = {memory:,} points in memory; "
        f"tree height {topology.height}"
    )
    h_min, h_max = topology.h_upper_bounds(memory)
    print(f"feasible h_upper: [{h_min}, {h_max}] "
          f"(heuristic choice: {topology.best_h_upper(memory)})\n")

    workload = predictor.make_workload(points, 100, 21, seed=8)
    index = predictor.build_ondisk(points)
    measurement = predictor.measure(points, workload, index=index)
    measured = measurement.mean_accesses
    ondisk_seconds = (index.build_cost + measurement.io_cost).seconds()
    print(f"measured: {measured:.1f} accesses/query; on-disk build+query "
          f"I/O {ondisk_seconds:.1f} s (ground truth)\n")

    analytical = AnalyticalCostModel(n_queries=workload.n_queries)
    print(f"{'method':>10} {'h':>2} {'sigma_l':>8} {'error':>7} "
          f"{'I/O (s)':>8} {'Eq. (s)':>8} {'speedup':>8}")
    for h_upper in range(h_min, h_max + 1):
        for method in ("cutoff", "resampled"):
            estimate = predictor.predict(
                points, workload, method=method, h_upper=h_upper
            )
            if method == "cutoff":
                formula = analytical.cutoff(n, dim, memory)
                sigma = ""
            else:
                formula = analytical.resampled(n, dim, memory, h_upper=h_upper)
                sigma = f"{estimate.detail['sigma_lower']:.3f}"
            print(
                f"{method:>10} {h_upper:>2} {sigma:>8} "
                f"{estimate.relative_error(measured):>+6.0%} "
                f"{estimate.io_cost.seconds():>8.2f} "
                f"{formula.seconds():>8.2f} "
                f"{ondisk_seconds / estimate.io_cost.seconds():>7.0f}x"
            )

    print(
        "\ncutoff: constant (scan-only) I/O, always an underestimate;"
        "\nresampled: I/O grows with h_upper, error crosses zero near "
        "sigma_lower = 1 -- the paper's recommended operating point."
    )


if __name__ == "__main__":
    main()
