"""Index tuning: find the optimal page size in seconds, not hours.

Reproduces the Section 6.1 application on a Landsat-texture-like
dataset: sweep candidate page sizes, predict the per-query I/O cost of
each with the sampling model, and (optionally) verify against fully
built indexes.  Building one real index per page size is exactly the
expensive workflow the prediction model replaces.

Run:  python examples/tune_page_size.py [--verify]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.apps import sweep_page_sizes
from repro.data import datasets
from repro.workload import density_biased_knn_workload

PAGE_SIZES = (4096, 8192, 16384, 32768, 65536, 131072, 262144)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--verify",
        action="store_true",
        help="also build the full index per page size (slow) to compare",
    )
    parser.add_argument("--scale", type=float, default=0.05,
                        help="dataset scale (1.0 = paper size)")
    args = parser.parse_args()

    points = datasets.texture60(scale=args.scale, seed=3)
    print(f"dataset: {points.shape[0]:,} x {points.shape[1]}-d")
    workload = density_biased_knn_workload(
        points, 100, 21, np.random.default_rng(5)
    )

    sweep = sweep_page_sizes(
        points,
        workload,
        memory=2_000,
        page_sizes=PAGE_SIZES,
        measure=args.verify,
    )

    header = f"{'page':>8} {'pred accesses':>14} {'pred ms/query':>14}"
    if args.verify:
        header += f" {'meas accesses':>14} {'meas ms/query':>14}"
    print(header)
    for point in sweep.points:
        line = (
            f"{point.page_bytes // 1024:>6} KB "
            f"{point.predicted_accesses:>14.1f} "
            f"{point.predicted_seconds * 1000:>14.1f}"
        )
        if args.verify:
            line += (
                f" {point.measured_accesses:>14.1f}"
                f" {point.measured_seconds * 1000:>14.1f}"
            )
        print(line)

    best = sweep.predicted_optimum
    print(
        f"\npredicted optimal page size: {best.page_bytes // 1024} KB "
        f"({best.predicted_seconds * 1000:.1f} ms/query)"
    )
    if args.verify and sweep.measured_optimum is not None:
        print(
            f"measured  optimal page size: "
            f"{sweep.measured_optimum.page_bytes // 1024} KB"
        )


if __name__ == "__main__":
    main()
