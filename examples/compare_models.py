"""Compare cost-prediction models on high-dimensional clustered data.

Reproduces the Section 5.3 comparison: the uniform model (Weber et
al.), the fractal-dimensionality model (Korn et al.), and the paper's
sampling-based resampled model, all predicting the leaf-page accesses
of 21-NN queries on a texture-feature-like dataset -- against the
measured truth.  On real (clustered, KLT-transformed) high-dimensional
data the first two overestimate by an order of magnitude; sampling is
the only one that works.

Run:  python examples/compare_models.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    FractalCostModel,
    FractalEstimationError,
    IndexCostPredictor,
    UniformCostModel,
)
from repro.data import datasets


def main() -> None:
    points = datasets.texture60(scale=0.08, seed=11)
    n, dim = points.shape
    print(f"dataset: {n:,} x {dim}-d (clustered, KLT-transformed)")

    predictor = IndexCostPredictor(dim=dim, memory=2_000)
    topology = predictor.topology(n)
    workload = predictor.make_workload(points, 100, 21, seed=2)
    measurement = predictor.measure(points, workload)
    measured = measurement.mean_accesses
    print(
        f"measured: {measured:.1f} of {topology.n_leaves:,} leaf pages "
        f"accessed per query\n"
    )

    def show(name: str, value: float | None, note: str = "") -> None:
        if value is None:
            print(f"  {name:>10}: not applicable  {note}")
        else:
            error = (value - measured) / measured
            print(f"  {name:>10}: {value:8.1f} pages  ({error:+8.0%})  {note}")

    uniform = UniformCostModel(n, dim, topology.c_eff_data)
    show("uniform", uniform.predict_knn_accesses(workload.k),
         f"[{uniform.n_split_dimensions} split dims, "
         f"r={uniform.expected_knn_radius(workload.k):.2f}]")

    try:
        fractal = FractalCostModel.from_points(
            points, topology.c_eff_data, np.random.default_rng(9)
        )
        show("fractal", fractal.predict_knn_accesses(workload.k),
             f"[D0={fractal.d0:.4f}, D2={fractal.d2:.4f}]")
    except FractalEstimationError as error:
        show("fractal", None, f"[{error}]")

    resampled = predictor.predict(points, workload, method="resampled")
    show("resampled", resampled.mean_accesses,
         f"[h_upper={resampled.detail['h_upper']}, "
         f"sigma_lower={resampled.detail['sigma_lower']:.2f}]")

    print(
        "\nBoth parametric baselines predict (nearly) every page is read;"
        "\nonly the sampling-based model tracks the real index behavior."
    )


if __name__ == "__main__":
    main()
