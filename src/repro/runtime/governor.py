"""Spend tracking and enforcement for governed predictions.

A :class:`Governor` owns one :class:`~repro.runtime.budget.Budget` for
the whole lifetime of a prediction -- across every fallback attempt the
facade makes.  The phased predictors call :meth:`Governor.check` at the
same boundaries the crash checkpoints use (after the query-point reads,
after the dataset scan, per spill chunk, per lower-tree leaf), passing
their attempt-local ledger; the governor folds that into the running
total, attributes the delta to the current phase, and raises
:class:`~repro.errors.BudgetExceededError` or
:class:`~repro.errors.DeadlineExceededError` the moment a limit is
crossed.  The facade treats the raise as a downgrade signal and
continues along ``resampled -> cutoff -> mini -> closed-form``, so the
caller always gets *an* answer -- annotated with the spend report --
inside the budget's horizon.

Wall-clock checks use :func:`time.monotonic`, never :func:`time.time`:
a governed deadline must be immune to NTP slews and clock adjustments
(a wall clock stepping backwards would silently extend the deadline;
stepping forwards would spuriously kill a healthy prediction).

Checks read the ledger and the clock; they charge nothing and draw no
randomness, which is what makes an amply-budgeted governed run
bit-identical to an ungoverned one with an identical ledger.

Bookkeeping is lock-protected: the prediction service folds several
worker threads' spend into one per-tenant governor, and the
attempt/prior split plus the phase attribution are read-modify-write
sequences that would otherwise lose charged ops under interleaving.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..disk.accounting import IOCost
from ..errors import BudgetExceededError, DeadlineExceededError
from .budget import Budget

__all__ = ["Governor"]


class Governor:
    """Enforces one :class:`Budget` across a multi-attempt prediction.

    ``clock`` is injectable for tests and must be monotonic; the
    default is :func:`time.monotonic`.
    """

    def __init__(
        self,
        budget: Budget,
        *,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.budget = budget
        self._clock = clock
        self._start = clock()
        self._lock = threading.RLock()
        #: charged ops of finished attempts (fallbacks already taken)
        self._prior_ops = 0
        #: charged ops of the attempt currently running
        self._attempt_ops = 0
        self._last_total = 0
        #: cumulative charged ops attributed per prediction phase
        self.phase_spend: dict[str, int] = {}
        #: sample bytes currently admitted
        self.sample_bytes = 0
        #: the first exhaustion event, recorded for the spend report
        self.trip: dict | None = None

    # ------------------------------------------------------------------
    # Observed spend
    # ------------------------------------------------------------------

    @property
    def spent_ops(self) -> int:
        """Charged I/O ops across all attempts so far."""
        return self._prior_ops + self._attempt_ops

    def elapsed(self) -> float:
        """Monotonic seconds since the governor was created."""
        return self._clock() - self._start

    def remaining_ops(self) -> int | None:
        if self.budget.max_io_ops is None:
            return None
        return max(0, self.budget.max_io_ops - self.spent_ops)

    def remaining_seconds(self) -> float | None:
        if self.budget.max_seconds is None:
            return None
        return max(0.0, self.budget.max_seconds - self.elapsed())

    # ------------------------------------------------------------------
    # Boundary checks
    # ------------------------------------------------------------------

    def observe(self, phase: str, attempt_cost: IOCost | None = None) -> None:
        """Record spend without enforcing: update totals and attribute
        the delta since the last boundary to ``phase``.

        ``attempt_cost`` is the cumulative ledger of the *current*
        attempt (the predictors already track ``disk.cost - start``);
        ``None`` touches only the bookkeeping.
        """
        with self._lock:
            if attempt_cost is not None:
                self._attempt_ops = Budget.io_ops(attempt_cost)
            total = self.spent_ops
            if total != self._last_total:
                self.phase_spend[phase] = (
                    self.phase_spend.get(phase, 0) + total - self._last_total
                )
                self._last_total = total

    def check(self, phase: str, attempt_cost: IOCost | None = None) -> None:
        """One boundary check: record spend, raise if a limit is crossed.

        ``attempt_cost`` is the cumulative ledger of the *current*
        attempt (the predictors already track ``disk.cost - start``);
        ``None`` re-checks time and totals without new I/O (used before
        admitting a fallback attempt).  Limits trip strictly: a budget
        equal to the exact spend of a full run never fires, so an ample
        budget is provably zero-interference.
        """
        self.observe(phase, attempt_cost)
        total = self.spent_ops
        budget = self.budget
        elapsed = self.elapsed()
        if budget.max_seconds is not None and elapsed > budget.max_seconds:
            error = DeadlineExceededError(
                elapsed, budget.max_seconds, phase=phase
            )
            self._record_trip(error)
            raise error
        if budget.max_io_ops is not None and total > budget.max_io_ops:
            error = BudgetExceededError(
                "io_ops", total, budget.max_io_ops, phase=phase
            )
            self._record_trip(error)
            raise error

    def check_deadline(self, phase: str) -> None:
        """Enforce only the wall-clock limit.

        Admission uses this instead of :meth:`check`: a method that
        charges no I/O (mini, closed-form) can never overspend the op
        budget, so an already-tripped op total must not bar it -- that
        would forfeit a better anytime answer for free.  A passed
        deadline *does* bar it: the caller wants an answer now, and
        only the closed-form baseline is instant.
        """
        elapsed = self.elapsed()
        limit = self.budget.max_seconds
        if limit is not None and elapsed > limit:
            error = DeadlineExceededError(elapsed, limit, phase=phase)
            self._record_trip(error)
            raise error

    def require_ops(self, min_ops: int, *, phase: str) -> None:
        """Refuse an attempt whose cheapest possible execution cannot fit.

        ``min_ops`` is a *lower bound* on the charged operations the
        attempt must spend (query reads plus one full scan for the
        phased methods).  Raising here is the mid-flight downgrade that
        keeps the facade from burning a scan it already knows it cannot
        afford; under-estimating merely admits an attempt that the
        per-phase checks will stop later, so callers should bound
        conservatively.
        """
        remaining = self.remaining_ops()
        if remaining is not None and min_ops > remaining:
            error = BudgetExceededError(
                "io_ops",
                self.spent_ops + min_ops,
                self.budget.max_io_ops,
                phase=phase,
            )
            self._record_trip(error)
            raise error

    def admit_sample(
        self, n_points: int, dim: int, *, phase: str = "sample"
    ) -> None:
        """Admit ``n_points`` float64 sample points against the byte cap.

        Called before a method materializes a sample; raises
        :class:`~repro.errors.BudgetExceededError` (resource
        ``"sample_bytes"``) when the sample would not fit, *before* any
        scan I/O is spent collecting it.
        """
        nbytes = n_points * dim * 8
        limit = self.budget.max_sample_bytes
        with self._lock:
            if limit is not None and self.sample_bytes + nbytes > limit:
                error = BudgetExceededError(
                    "sample_bytes", self.sample_bytes + nbytes, limit,
                    phase=phase,
                )
                self._record_trip(error)
                raise error
            self.sample_bytes += nbytes

    def release_sample(self, n_points: int, dim: int) -> None:
        """Return admitted sample bytes (an attempt's sample was freed)."""
        with self._lock:
            self.sample_bytes = max(
                0, self.sample_bytes - n_points * dim * 8
            )

    def end_attempt(self) -> None:
        """Fold the current attempt's spend into the cross-attempt total.

        The facade calls this when an attempt finishes (successfully or
        not) so the next fallback's ledger starts from zero while the
        governed total keeps every op ever charged.  The attempt's
        admitted sample bytes are released: only one attempt's sample is
        ever live at a time, so the byte cap governs peak, not
        cumulative, sample memory.
        """
        with self._lock:
            self._prior_ops += self._attempt_ops
            self._attempt_ops = 0
            self.sample_bytes = 0

    def _record_trip(self, error: BudgetExceededError) -> None:
        with self._lock:
            if self.trip is not None:
                return
            self.trip = {
                "error": type(error).__name__,
                "resource": error.resource,
                "spent": error.spent,
                "limit": error.limit,
                "phase": error.phase,
            }

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def report(self) -> dict:
        """The spend report attached to every governed result.

        ``within_budget`` is the anytime annotation the acceptance
        criteria require: ``False`` whenever the final totals stand
        above a limit -- a governed result is never silently over
        budget.  An admission-denied attempt (``require_ops`` or
        ``admit_sample`` refusing up front) leaves ``within_budget``
        ``True``: the governor *prevented* the overspend; the event
        itself stays visible in ``exhausted`` and in the facade's
        degradation record.
        """
        budget = self.budget
        elapsed = self.elapsed()
        over = False
        if budget.max_io_ops is not None and self.spent_ops > budget.max_io_ops:
            over = True
        if budget.max_seconds is not None and elapsed > budget.max_seconds:
            over = True
        return {
            "max_io_ops": budget.max_io_ops,
            "max_seconds": budget.max_seconds,
            "max_sample_bytes": budget.max_sample_bytes,
            "spent_io_ops": self.spent_ops,
            "elapsed_s": elapsed,
            "sample_bytes": self.sample_bytes,
            "remaining_io_ops": self.remaining_ops(),
            "remaining_s": self.remaining_seconds(),
            "phase_spend": dict(self.phase_spend),
            "within_budget": not over,
            "exhausted": dict(self.trip) if self.trip else None,
        }
