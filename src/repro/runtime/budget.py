"""Declarative resource budgets for anytime prediction.

The paper's restricted-memory methods exist because resources are
bounded (Section 5: the cutoff and resampled trees trade accuracy for
memory and I/O).  :class:`Budget` makes that trade-off a first-class
*input*: a caller states how many charged disk operations, how many
wall-clock seconds, and how many sample bytes a prediction may spend,
and the :class:`~repro.runtime.governor.Governor` enforces it at the
prediction's natural boundaries -- returning the best estimate the
budget affords instead of silently overspending or hanging.

Charged I/O operations are counted in the units of the
:class:`~repro.disk.accounting.IOCost` ledger: one op is one seek or
one page transfer, exactly what the paper's experiment tables price.
A limit of ``None`` means unbounded, so ``Budget()`` is the ungoverned
status quo and costs nothing.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..disk.accounting import IOCost
from ..errors import InputValidationError

__all__ = ["Budget"]


@dataclass(frozen=True)
class Budget:
    """Spending limits for one governed prediction (or batch task).

    ``max_io_ops`` caps charged disk operations (seeks + transfers, the
    ledger's unit); ``max_seconds`` is a wall-clock deadline measured
    on the monotonic clock; ``max_sample_bytes`` caps the bytes of
    sample points a method may hold in memory at once (8-byte float64
    coordinates, the in-process representation).  ``None`` disables the
    corresponding check.
    """

    max_io_ops: int | None = None
    max_seconds: float | None = None
    max_sample_bytes: int | None = None

    def __post_init__(self) -> None:
        if self.max_io_ops is not None and self.max_io_ops < 0:
            raise InputValidationError(
                f"max_io_ops must be non-negative, got {self.max_io_ops}"
            )
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise InputValidationError(
                f"max_seconds must be positive, got {self.max_seconds}"
            )
        if self.max_sample_bytes is not None and self.max_sample_bytes < 0:
            raise InputValidationError(
                f"max_sample_bytes must be non-negative, "
                f"got {self.max_sample_bytes}"
            )

    @property
    def unlimited(self) -> bool:
        """True when no limit is set: governing this budget is a no-op."""
        return (
            self.max_io_ops is None
            and self.max_seconds is None
            and self.max_sample_bytes is None
        )

    @staticmethod
    def io_ops(cost: IOCost) -> int:
        """Charged operations in a ledger entry: seeks plus transfers."""
        return cost.seeks + cost.transfers
