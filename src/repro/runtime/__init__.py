"""Resource governance: budgets, deadlines, breakers, hedging, batches.

The paper predicts index cost *under restricted resources*; this
package makes the restriction operational for the predictor itself.  A
:class:`Budget` states what a prediction may spend (charged I/O ops,
wall-clock seconds, sample bytes); a :class:`Governor` enforces it at
phase/chunk/leaf boundaries and converts imminent exhaustion into a
mid-flight downgrade along the facade's existing fallback chain; a
:class:`CircuitBreaker` fails disk access fast while a device is
misbehaving instead of burning the retry budget; :func:`run_hedged`
races a cheap estimate against the accurate one under a deadline; and
:class:`BatchRunner` runs sweep workloads with admission control so a
single pathological cell ends as an explicit ``over_budget`` record,
never a hang.

All of it is opt-in and zero-overhead when unused: no budget means no
governor, no breaker means the charged path is untouched, and an ample
budget yields bit-identical predictions with zero extra charged I/O.
"""

from .batch import BatchReport, BatchRunner, BatchTask, TaskReport
from .breaker import CircuitBreaker
from .budget import Budget
from .governor import Governor
from .hedge import HedgeOutcome, run_hedged

__all__ = [
    "BatchReport",
    "BatchRunner",
    "BatchTask",
    "Budget",
    "CircuitBreaker",
    "Governor",
    "HedgeOutcome",
    "TaskReport",
    "run_hedged",
]
