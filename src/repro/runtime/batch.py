"""Admission-controlled batch execution for sweeps and multi-query runs.

The tuning applications (page-size and dimensionality sweeps) and the
experiment harness run many independent prediction cells.  One
pathological cell -- a page size that makes the spill phase explode, a
fault configuration that retries forever -- must not wedge the whole
sweep or silently eat the global budget.  :class:`BatchRunner` gives a
workload of named tasks:

* **a global budget** -- wall-clock and charged-I/O caps across all
  tasks; tasks arriving after exhaustion are *rejected* up front
  (admission control), not started-and-abandoned;
* **per-task deadlines** -- a task that overruns is reported
  ``over_budget`` and the sweep moves on (the worker thread is
  abandoned; results landing late are discarded);
* **bounded concurrency** -- at most ``max_workers`` tasks in flight,
  admission re-checked as each slot frees up, so spend observed from
  finished tasks gates the tasks still queued;
* **partial-result reporting** -- the report carries every task's
  status (``ok`` / ``over_budget`` / ``failed`` / ``rejected``), its
  result or error, its elapsed time, and its I/O ledger when the
  result exposes one.

Task I/O is accounted from results exposing an ``io_cost`` attribute
(every :class:`~repro.core.counting.PredictionResult` does); tasks
returning anything else simply don't contribute to the I/O ledger.

Concurrency contract: one :class:`BatchRunner` may be driven from
several threads at once -- each :meth:`BatchRunner.run` call owns its
queue, executor, and report map as locals, and the only cross-run
state (the lifetime ``runs_completed`` / ``tasks_run`` / ``io_ops``
diagnostics the service reads) is folded under a lock, so concurrent
sweeps never corrupt each other's verdicts.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..disk.accounting import IOCost
from ..errors import InputValidationError, ReproError
from .budget import Budget

__all__ = ["BatchTask", "TaskReport", "BatchReport", "BatchRunner"]


@dataclass(frozen=True)
class BatchTask:
    """One unit of batch work: a named thunk with an optional deadline.

    ``deadline_s`` overrides the runner's default per-task deadline;
    ``None`` inherits it.
    """

    name: str
    fn: Callable[[], Any]
    deadline_s: float | None = None


@dataclass
class TaskReport:
    """What happened to one task.

    ``status``:

    * ``"ok"`` -- completed; ``result`` holds the value;
    * ``"over_budget"`` -- missed its deadline; the thread was abandoned
      and any late result discarded;
    * ``"failed"`` -- raised; ``error`` holds the rendered exception;
    * ``"rejected"`` -- never started: the global budget was exhausted
      when the task came up for admission.
    """

    name: str
    status: str
    result: Any = None
    error: str | None = None
    elapsed_s: float = 0.0
    io_cost: IOCost | None = None


@dataclass
class BatchReport:
    """All task reports plus the batch-level ledger."""

    tasks: list[TaskReport]
    elapsed_s: float
    io_ops: int
    budget: Budget = field(default_factory=Budget)

    def by_status(self, status: str) -> list[TaskReport]:
        return [t for t in self.tasks if t.status == status]

    @property
    def completed(self) -> list[TaskReport]:
        return self.by_status("ok")

    @property
    def all_accounted(self) -> bool:
        """Every task ended in an explicit state -- the no-hang invariant."""
        return all(
            t.status in ("ok", "over_budget", "failed", "rejected")
            for t in self.tasks
        )


class _Slot:
    """One in-flight task: its future, start time, and deadline."""

    def __init__(self, task: BatchTask, future, started: float,
                 deadline_s: float | None):
        self.task = task
        self.future = future
        self.started = started
        self.deadline_s = deadline_s


class BatchRunner:
    """Runs tasks under a global budget with bounded concurrency.

    ``budget.max_seconds`` is the whole batch's wall-clock horizon;
    ``budget.max_io_ops`` caps the *observed* charged ops summed over
    completed tasks -- once crossed, no further task is admitted.
    ``task_deadline_s`` is the default per-task deadline (``None``:
    only the global horizon limits a task).
    """

    def __init__(
        self,
        *,
        budget: Budget | None = None,
        max_workers: int = 4,
        task_deadline_s: float | None = None,
        poll_s: float = 0.005,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_workers < 1:
            raise InputValidationError("max_workers must be positive")
        if task_deadline_s is not None and task_deadline_s <= 0:
            raise InputValidationError("task_deadline_s must be positive")
        self.budget = budget or Budget()
        self.max_workers = max_workers
        self.task_deadline_s = task_deadline_s
        self.poll_s = poll_s
        self._clock = clock
        self._lock = threading.Lock()
        #: lifetime diagnostics across every run() call on this runner
        self.runs_completed = 0
        self.tasks_run = 0
        self.io_ops_observed = 0

    # ------------------------------------------------------------------

    def run(self, tasks: Sequence[BatchTask]) -> BatchReport:
        """Run every task to an explicit verdict; never wedges.

        Tasks are admitted in order as worker slots free up; admission
        checks the global budget against spend observed so far.  The
        report preserves input order.
        """
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise InputValidationError(
                "task names must be unique: they key the batch report"
            )
        start = self._clock()
        reports: dict[str, TaskReport] = {}
        io_ops = 0
        queue = list(tasks)
        in_flight: list[_Slot] = []
        executor = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="batch"
        )
        try:
            while queue or in_flight:
                now = self._clock()
                # Admission: fill free slots while the budget allows.
                while queue and len(in_flight) < self.max_workers:
                    reason = self._admission_denied(now - start, io_ops)
                    if reason is not None:
                        task = queue.pop(0)
                        reports[task.name] = TaskReport(
                            task.name, "rejected", error=reason
                        )
                        continue
                    task = queue.pop(0)
                    deadline = (
                        task.deadline_s
                        if task.deadline_s is not None
                        else self.task_deadline_s
                    )
                    in_flight.append(_Slot(
                        task, executor.submit(task.fn), self._clock(), deadline
                    ))
                if not in_flight:
                    continue
                # Reap: completed, failed, or over-deadline slots leave.
                still_running: list[_Slot] = []
                for slot in in_flight:
                    report = self._reap(slot, start)
                    if report is None:
                        still_running.append(slot)
                        continue
                    reports[slot.task.name] = report
                    if report.io_cost is not None:
                        io_ops += Budget.io_ops(report.io_cost)
                if len(still_running) == len(in_flight):
                    time.sleep(self.poll_s)
                in_flight = still_running
        finally:
            # Abandoned workers must not block the report.
            executor.shutdown(wait=False, cancel_futures=True)
        ordered = [reports[t.name] for t in tasks]
        with self._lock:
            self.runs_completed += 1
            self.tasks_run += len(ordered)
            self.io_ops_observed += io_ops
        return BatchReport(
            tasks=ordered,
            elapsed_s=self._clock() - start,
            io_ops=io_ops,
            budget=self.budget,
        )

    # ------------------------------------------------------------------

    def _admission_denied(self, elapsed: float, io_ops: int) -> str | None:
        """A human-readable denial reason, or ``None`` to admit."""
        budget = self.budget
        if budget.max_seconds is not None and elapsed >= budget.max_seconds:
            return (
                f"global deadline exhausted: {elapsed:.3f} s elapsed of "
                f"{budget.max_seconds:g} s"
            )
        if budget.max_io_ops is not None and io_ops >= budget.max_io_ops:
            return (
                f"global I/O budget exhausted: {io_ops} charged ops of "
                f"{budget.max_io_ops}"
            )
        return None

    def _reap(self, slot: _Slot, batch_start: float) -> TaskReport | None:
        """A finished slot's report, or ``None`` if it may keep running."""
        now = self._clock()
        elapsed = now - slot.started
        if slot.future.done():
            try:
                result = slot.future.result()
            except ReproError as error:
                return TaskReport(
                    slot.task.name, "failed",
                    error=f"{type(error).__name__}: {error}",
                    elapsed_s=elapsed,
                )
            except Exception as error:  # noqa: BLE001 - reported, not raised
                return TaskReport(
                    slot.task.name, "failed",
                    error=f"{type(error).__name__}: {error}",
                    elapsed_s=elapsed,
                )
            io_cost = getattr(result, "io_cost", None)
            return TaskReport(
                slot.task.name, "ok", result=result, elapsed_s=elapsed,
                io_cost=io_cost if isinstance(io_cost, IOCost) else None,
            )
        over_task = slot.deadline_s is not None and elapsed > slot.deadline_s
        over_batch = (
            self.budget.max_seconds is not None
            and now - batch_start > self.budget.max_seconds
        )
        if over_task or over_batch:
            limit = slot.deadline_s if over_task else self.budget.max_seconds
            scope = "task deadline" if over_task else "global deadline"
            return TaskReport(
                slot.task.name, "over_budget",
                error=f"{scope} exceeded: {elapsed:.3f} s of {limit:g} s",
                elapsed_s=elapsed,
            )
        return None
