"""Hedged execution: race a cheap estimate against the accurate one.

Tail latency control straight from the "tail at scale" playbook: when a
deadline matters more than squeezing out the last percent of accuracy,
start the cheap path (cutoff or closed-form -- no resampling pass, no
spill I/O) *concurrently* with the accurate resampled run and serve
whichever lands inside the deadline, preferring the accurate one when
both make it.  The simulated disks are independent objects, so the two
runs share no mutable state; each thread owns its file, disk, and RNG.

Python threads cannot be killed, so a loser that is still running is
simply abandoned: its thread is a daemon, its result is discarded, and
-- because each run charges its own private ledger -- its spend never
pollutes the winner's reported cost.  The winner's identity, both
completion flags, and the elapsed time are recorded so a caller can
audit every hedged decision.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import DeadlineExceededError

__all__ = ["HedgeOutcome", "run_hedged"]


@dataclass
class HedgeOutcome:
    """The verdict of one hedged race.

    ``winner`` is ``"primary"`` or ``"hedge"``; ``result`` is the
    winning value.  ``primary_completed`` / ``hedge_completed`` say
    which paths finished before the decision was taken (both can be
    True: the primary wins ties).  ``primary_error`` / ``hedge_error``
    carry a path's failure, if it failed rather than lost the race.
    """

    winner: str
    result: Any
    elapsed_s: float
    primary_completed: bool
    hedge_completed: bool
    primary_error: BaseException | None = None
    hedge_error: BaseException | None = None


class _Run:
    """One raced path: a daemon thread capturing result or exception."""

    def __init__(self, name: str, fn: Callable[[], Any]):
        self.name = name
        self.result: Any = None
        self.error: BaseException | None = None
        self.done = threading.Event()
        self._thread = threading.Thread(
            target=self._main, args=(fn,), name=f"hedge-{name}", daemon=True
        )

    def _main(self, fn: Callable[[], Any]) -> None:
        try:
            self.result = fn()
        except BaseException as error:  # noqa: BLE001 - relayed to caller
            self.error = error
        finally:
            self.done.set()

    def start(self) -> "_Run":
        self._thread.start()
        return self

    @property
    def succeeded(self) -> bool:
        return self.done.is_set() and self.error is None


def run_hedged(
    primary: Callable[[], Any],
    hedge: Callable[[], Any],
    deadline_s: float,
    *,
    grace_s: float = 0.25,
    clock: Callable[[], float] = time.monotonic,
) -> HedgeOutcome:
    """Race ``primary`` against ``hedge`` under a monotonic deadline.

    The primary is preferred: if it completes within ``deadline_s`` its
    result is served even when the hedge finished earlier.  When the
    deadline passes with the primary still running (or failed), the
    hedge's result is served as soon as it lands, waiting at most
    ``grace_s`` beyond the deadline for a hedge that is *almost* there.
    If neither path produces a result, the failure propagates --
    preferring the primary's own error over a bare
    :class:`~repro.errors.DeadlineExceededError` -- so a hedged call
    never hangs and never fails silently.
    """
    if deadline_s <= 0:
        raise ValueError(f"deadline_s must be positive, got {deadline_s}")
    start = clock()
    primary_run = _Run("primary", primary).start()
    hedge_run = _Run("hedge", hedge).start()

    remaining = deadline_s - (clock() - start)
    primary_run.done.wait(timeout=max(0.0, remaining))
    if primary_run.succeeded:
        return HedgeOutcome(
            winner="primary",
            result=primary_run.result,
            elapsed_s=clock() - start,
            primary_completed=True,
            hedge_completed=hedge_run.done.is_set(),
            hedge_error=hedge_run.error,
        )

    # Primary missed the deadline or died: fall to the hedge, allowing
    # it the remaining deadline plus a short grace period.
    remaining = deadline_s + grace_s - (clock() - start)
    hedge_run.done.wait(timeout=max(0.0, remaining))
    if hedge_run.succeeded:
        return HedgeOutcome(
            winner="hedge",
            result=hedge_run.result,
            elapsed_s=clock() - start,
            primary_completed=primary_run.done.is_set(),
            hedge_completed=True,
            primary_error=primary_run.error,
        )

    elapsed = clock() - start
    if primary_run.error is not None:
        raise primary_run.error
    if hedge_run.error is not None:
        raise hedge_run.error
    raise DeadlineExceededError(elapsed, deadline_s, phase="hedge")
