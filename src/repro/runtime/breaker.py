"""Circuit breaker for charged disk access.

When a device degrades -- a burst of transient read faults, checksum
mismatches from silent corruption, torn writes -- the retry policy
dutifully burns backoff seeks on every access, and the facade's
degradation chain only reacts *after* a whole method attempt has died.
A :class:`CircuitBreaker` sits in front of the charged path of a
:class:`~repro.disk.pagefile.PointFile` and converts a sustained
failure rate into fail-fast behavior:

* **closed** -- normal operation; every charged outcome (success or
  :class:`~repro.errors.DiskError`) lands in a sliding window.  When
  the window holds at least ``min_calls`` outcomes and the failure
  fraction reaches ``failure_threshold``, the breaker opens.
* **open** -- every charged call is refused up front with
  :class:`~repro.errors.CircuitOpenError`: no disk op, no retries, no
  backoff.  The facade's chain then falls through to methods that do
  not touch the disk (mini, closed-form) instead of paying the full
  retry budget per access on a device that keeps failing.
* **half-open** -- after ``cooldown_s`` (monotonic) the next charged
  call is admitted as a probe.  Success closes the breaker and clears
  the window; failure re-opens it and restarts the cooldown.

The breaker is deliberately per-file (per dataset on a device), the
granularity at which the fault injector and the checksum layer surface
errors.  With no breaker attached, ``PointFile`` behaves exactly as
before -- the zero-overhead rule every resilience layer here follows.

State transitions are lock-protected: the prediction service shares
one breaker per tenant across worker threads, and the open/half-open
probe handoff is a read-modify-write race without it (two threads
both winning the single probe slot, or a half-open close tearing a
concurrent window append).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

from ..errors import CircuitOpenError, InputValidationError

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Sliding-window failure-rate breaker with monotonic cooldown."""

    def __init__(
        self,
        *,
        failure_threshold: float = 0.5,
        window: int = 16,
        min_calls: int = 8,
        cooldown_s: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
    ):
        if not 0.0 < failure_threshold <= 1.0:
            raise InputValidationError(
                f"failure_threshold must be in (0, 1], got {failure_threshold}"
            )
        if window < 1 or min_calls < 1:
            raise InputValidationError(
                "window and min_calls must be positive"
            )
        if min_calls > window:
            raise InputValidationError(
                f"min_calls ({min_calls}) cannot exceed window ({window})"
            )
        if cooldown_s < 0:
            raise InputValidationError("cooldown_s must be non-negative")
        self.failure_threshold = failure_threshold
        self.window = window
        self.min_calls = min_calls
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._outcomes: deque[bool] = deque(maxlen=window)  # True = failure
        self._state = CLOSED
        self._opened_at = 0.0
        self._probe_in_flight = False
        self._lock = threading.Lock()
        #: lifetime diagnostics
        self.opened_count = 0
        self.short_circuited = 0

    # ------------------------------------------------------------------

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"``, or ``"half_open"`` (cooldown done,
        waiting for the probe's verdict)."""
        with self._lock:
            if self._state == OPEN and self._cooldown_over():
                return HALF_OPEN
            return self._state

    def failure_rate(self) -> float:
        with self._lock:
            return self._failure_rate_locked()

    def _failure_rate_locked(self) -> float:
        if not self._outcomes:
            return 0.0
        return sum(self._outcomes) / len(self._outcomes)

    def _cooldown_over(self) -> bool:
        return self._clock() - self._opened_at >= self.cooldown_s

    # ------------------------------------------------------------------
    # The charged-path protocol: before_attempt / record_*
    # ------------------------------------------------------------------

    def before_attempt(self) -> None:
        """Gate one charged operation; raises when the circuit is open.

        In half-open state exactly one caller is admitted as the probe;
        anything else arriving before the probe's verdict is refused
        like a plain open circuit.
        """
        with self._lock:
            if self._state != OPEN:
                return
            if self._cooldown_over() and not self._probe_in_flight:
                self._probe_in_flight = True
                return
            self.short_circuited += 1
            remaining = max(
                0.0, self.cooldown_s - (self._clock() - self._opened_at)
            )
            raise CircuitOpenError(
                self._failure_rate_locked(), len(self._outcomes),
                cooldown_remaining=remaining,
            )

    def record_success(self) -> None:
        with self._lock:
            if self._state == OPEN:
                # The half-open probe came back clean: trust the device
                # again.
                self._state = CLOSED
                self._probe_in_flight = False
                self._outcomes.clear()
                return
            self._outcomes.append(False)

    def record_failure(self) -> None:
        with self._lock:
            if self._state == OPEN:
                # Probe failed: stay open, restart the cooldown.
                self._probe_in_flight = False
                self._opened_at = self._clock()
                return
            self._outcomes.append(True)
            if (
                len(self._outcomes) >= self.min_calls
                and self._failure_rate_locked() >= self.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = self._clock()
                self._probe_in_flight = False
                self.opened_count += 1

    def reset(self) -> None:
        """Force-close and forget history (a new device, a new run)."""
        with self._lock:
            self._state = CLOSED
            self._outcomes.clear()
            self._probe_in_flight = False
