"""Query workloads: density-biased k-NN spheres and range boxes.

The paper evaluates *density-biased k-NN queries*: query points are
drawn at random from the dataset itself (so dense regions receive
proportionally more queries), and each query's region is the sphere
around it with radius equal to its k-th nearest neighbor distance,
computed exactly by a full scan of the data (Section 4.2).  Prediction
then reduces to counting leaf pages intersected by these spheres.

Radii are computed with the query point *included* in the dataset --
the queries are dataset points, so their first neighbor at distance 0
is themselves -- consistently for both measurement and prediction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "KNNWorkload",
    "RangeWorkload",
    "exact_knn_radii",
    "sampled_knn_radii",
    "density_biased_knn_workload",
    "density_biased_range_workload",
]


@dataclass(frozen=True)
class KNNWorkload:
    """``n`` k-NN query spheres: centers, exact radii, and provenance."""

    k: int
    query_ids: np.ndarray
    queries: np.ndarray
    radii: np.ndarray

    def __post_init__(self) -> None:
        if self.queries.ndim != 2:
            raise ValueError("queries must be (q, d)")
        q = self.queries.shape[0]
        if self.radii.shape != (q,) or self.query_ids.shape != (q,):
            raise ValueError("queries, radii and query_ids must agree in length")
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if not np.all(np.isfinite(self.radii)) or np.any(self.radii < 0):
            raise ValueError(
                "query radii must be finite and non-negative -- the dataset "
                "likely contains NaN/inf coordinates"
            )

    @property
    def n_queries(self) -> int:
        return int(self.queries.shape[0])

    def with_radii(self, radii: np.ndarray) -> "KNNWorkload":
        """The same query centers probed at different radii.

        This is one row of a radius grid as a stand-alone workload --
        the per-row equivalent the fused ``count_grid`` dispatch is
        held bit-identical to.
        """
        return KNNWorkload(
            k=self.k,
            query_ids=self.query_ids,
            queries=self.queries,
            radii=np.asarray(radii, dtype=np.float64),
        )


@dataclass(frozen=True)
class RangeWorkload:
    """``n`` axis-aligned range queries given by their corner arrays."""

    lower: np.ndarray
    upper: np.ndarray

    def __post_init__(self) -> None:
        if self.lower.shape != self.upper.shape or self.lower.ndim != 2:
            raise ValueError("lower/upper must be matching (q, d) arrays")
        if np.any(self.lower > self.upper):
            raise ValueError("range query with lower > upper")

    @property
    def n_queries(self) -> int:
        return int(self.lower.shape[0])


def exact_knn_radii(
    points: np.ndarray,
    queries: np.ndarray,
    k: int,
    *,
    chunk_rows: int = 65536,
) -> np.ndarray:
    """Exact k-th-NN distance of each query against ``points``.

    A chunked brute-force scan -- the same full pass the paper's
    predictors perform to obtain the query spheres.  Memory use is
    bounded by ``chunk_rows * n_queries`` floats.
    """
    points = np.asarray(points, dtype=np.float64)
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    n, q = points.shape[0], queries.shape[0]
    if k < 1 or k > n:
        raise ValueError(f"k={k} outside [1, {n}]")
    query_sq = np.einsum("qd,qd->q", queries, queries)
    # Running k smallest squared distances per query.
    best = np.full((q, k), np.inf)
    for start in range(0, n, chunk_rows):
        block = points[start : start + chunk_rows]
        block_sq = np.einsum("nd,nd->n", block, block)
        dists_sq = query_sq[:, None] + block_sq[None, :] - 2.0 * (queries @ block.T)
        np.maximum(dists_sq, 0.0, out=dists_sq)
        merged = np.concatenate([best, dists_sq], axis=1)
        best = np.partition(merged, k - 1, axis=1)[:, :k]
    return np.sqrt(best.max(axis=1))


def sampled_knn_radii(
    sample: np.ndarray,
    queries: np.ndarray,
    k: int,
    zeta: float,
) -> np.ndarray:
    """Estimate k-NN radii from a ``zeta``-fraction sample of the data.

    Section 4.2's alternative to the full scan: "the search radii could
    be obtained from the sample ... the search radius does not seem to
    be affected much by the sample ratio."  The expected number of
    neighbors inside a fixed sphere scales with the sampling fraction,
    so the k-th neighbor of the full data sits at about the distance of
    the ``round(k * zeta)``-th neighbor within the sample.  Saves the
    radius scan entirely when a sample is already in memory, at a small
    accuracy cost quantified by the radius-estimation ablation.
    """
    if not 0 < zeta <= 1:
        raise ValueError("zeta must be in (0, 1]")
    sample = np.asarray(sample, dtype=np.float64)
    k_sample = min(max(1, round(k * zeta)), sample.shape[0])
    return exact_knn_radii(sample, queries, k_sample)


def density_biased_knn_workload(
    points: np.ndarray,
    n_queries: int,
    k: int,
    rng: np.random.Generator,
) -> KNNWorkload:
    """The paper's workload: query points sampled from the data itself."""
    points = np.asarray(points, dtype=np.float64)
    if n_queries < 1:
        raise ValueError("n_queries must be >= 1")
    replace = n_queries > points.shape[0]
    query_ids = rng.choice(points.shape[0], size=n_queries, replace=replace)
    queries = points[query_ids]
    radii = exact_knn_radii(points, queries, k)
    return KNNWorkload(k=k, query_ids=query_ids, queries=queries, radii=radii)


def density_biased_range_workload(
    points: np.ndarray,
    n_queries: int,
    side: float | np.ndarray,
    rng: np.random.Generator,
) -> RangeWorkload:
    """Box queries of a fixed side length centered on dataset points."""
    points = np.asarray(points, dtype=np.float64)
    if n_queries < 1:
        raise ValueError("n_queries must be >= 1")
    side = np.broadcast_to(np.asarray(side, dtype=np.float64), (points.shape[1],))
    if np.any(side < 0):
        raise ValueError("range query side lengths must be non-negative")
    replace = n_queries > points.shape[0]
    centers = points[rng.choice(points.shape[0], size=n_queries, replace=replace)]
    half = side / 2.0
    return RangeWorkload(lower=centers - half, upper=centers + half)
