"""Query workloads: density-biased k-NN spheres and range boxes."""

from .queries import (
    KNNWorkload,
    RangeWorkload,
    density_biased_knn_workload,
    density_biased_range_workload,
    exact_knn_radii,
)

__all__ = [
    "KNNWorkload",
    "RangeWorkload",
    "density_biased_knn_workload",
    "density_biased_range_workload",
    "exact_knn_radii",
]
