"""Long-lived multi-tenant prediction serving.

The facade answers one caller at a time; this package turns it into a
*service*: a threaded front end that accepts prediction requests from
many tenants concurrently and keeps every single-request robustness
guarantee the earlier layers built (typed errors, budgets, breakers,
the degradation chain) intact under contention.  The pieces:

:mod:`repro.service.artifacts`
    checksummed, versioned model artifacts -- save a fitted predictor
    (its compensation-grown :class:`~repro.kernels.geometry.LeafGeometry`
    plus the configuration that produced it) and load it back with a
    bit-identical-prediction guarantee; corrupt or version-skewed
    files raise :class:`~repro.errors.ArtifactCorruptError` and are
    rebuilt, never trusted.
:mod:`repro.service.tenancy`
    per-tenant quotas (in-flight slots, lifetime charged-op
    allowances), ledgers, and circuit breakers, enforced at admission
    so one tenant's appetite never starves the others.
:mod:`repro.service.server`
    the :class:`PredictionService` itself: a bounded request queue,
    worker threads with supervision (a dead worker is detected,
    its request answered with a typed error, and the thread
    respawned), request deadlines with retry/backoff, and load-shedding
    backpressure -- full queues raise
    :class:`~repro.errors.ServiceOverloadedError` instead of hanging.
:mod:`repro.service.chaos`
    the service-level chaos harness: inject worker death, artifact
    corruption, slow tenants, and disk faults mid-request and assert
    the invariant that every request terminates bit-identical,
    degraded-with-record, or with a typed error -- never hung.
:mod:`repro.service.loadtest`
    sustained-throughput and tail-latency measurement; the committed
    ``BENCH_service.json`` comes from here.
"""

from .artifacts import (
    ARTIFACT_VERSION,
    ArtifactStore,
    FittedModel,
    fit_model,
    load_artifact,
    save_artifact,
)
from .chaos import (
    ServiceChaosOutcome,
    ServiceChaosScenario,
    assert_service_invariant,
    run_service_chaos,
)
from .loadtest import LoadTestResult, run_loadtest
from .server import (
    PendingPrediction,
    PredictionService,
    ServiceResponse,
    WorkerDeath,
)
from .tenancy import TenantLedger, TenantQuota

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactStore",
    "FittedModel",
    "fit_model",
    "load_artifact",
    "save_artifact",
    "PendingPrediction",
    "PredictionService",
    "ServiceResponse",
    "WorkerDeath",
    "TenantLedger",
    "TenantQuota",
    "ServiceChaosOutcome",
    "ServiceChaosScenario",
    "assert_service_invariant",
    "run_service_chaos",
    "LoadTestResult",
    "run_loadtest",
]
