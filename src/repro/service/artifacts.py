"""Checksummed, versioned model artifacts for warm-start serving.

Fitting a sampling-based predictor is the expensive part -- drawing the
sample, bulk loading the mini index, growing the leaves by Theorem 1's
compensation factor.  Counting a workload against the fitted geometry
is cheap.  A :class:`FittedModel` snapshots the boundary between the
two: the compensation-grown :class:`~repro.kernels.geometry.LeafGeometry`
plus the exact configuration that produced it.  Saving and reloading
one must be *bit-identical*: the geometry arrays round-trip as raw
little-endian float64 bytes, so a prediction from a loaded model equals
a prediction from the fitted one to the last bit (the
persistence-equality contract, in the spirit of error-bounded index
artifacts a la FITing-Tree: a saved model is a verifiable contract, not
a cache you hope is right).

The on-disk format is deliberately paranoid, because a warm-start
artifact is exactly the kind of file that silently rots in a model
store and then serves wrong answers for weeks:

* magic ``RPRO`` + explicit format version -- a version this build does
  not speak raises :class:`~repro.errors.ArtifactCorruptError`
  (``reason="version"``), it is never "probably close enough";
* a JSON metadata section and one binary section per geometry array,
  each carrying its own CRC32, verified on load *before* anything is
  returned;
* a whole-file CRC32 footer catching truncation and any flip the
  section checks might miss.

Loading stops at the first failed check; the caller (usually an
:class:`ArtifactStore`) rebuilds from data and overwrites the bad file.
"""

from __future__ import annotations

import io
import json
import struct
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.counting import (
    PredictionResult,
    count_accesses,
    count_grid_accesses,
)
from ..core.minindex import MiniIndexModel
from ..errors import ArtifactCorruptError, InputValidationError
from ..kernels.batch import BatchPlan
from ..kernels.geometry import LeafGeometry
from ..kernels.registry import get_kernel
from ..workload.queries import KNNWorkload, RangeWorkload

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactStore",
    "FittedModel",
    "fit_model",
    "load_artifact",
    "save_artifact",
]

_MAGIC = b"RPRO"
#: bump on any incompatible layout change; loaders refuse other versions
ARTIFACT_VERSION = 1

#: geometry arrays in serialization order: (attribute, stored dtype)
_ARRAYS = (
    ("lower", "<f8"),
    ("upper", "<f8"),
    ("n_points", "<i8"),
    ("virtual_n", "<i8"),
)


@dataclass(frozen=True)
class FittedModel:
    """A fitted predictor: frozen geometry plus its fitting record.

    ``geometry`` is the compensation-grown leaf-page layout predictions
    count against; ``meta`` records how it was fitted (dataset shape,
    page capacities, memory budget, sampling seed, zeta, ...) so a
    loaded artifact is auditable and a cache key can be validated.
    ``predict`` is pure counting -- no disk, no randomness -- which is
    what makes warm serving cheap and the reload guarantee exact.
    """

    geometry: LeafGeometry
    meta: dict = field(default_factory=dict)

    def predict(
        self,
        workload: KNNWorkload | RangeWorkload,
        *,
        kernel: str | None = None,
    ) -> PredictionResult:
        """Count the workload against the fitted geometry.

        ``kernel`` overrides the counting backend recorded at fit time;
        all kernels count bit-identically, so this never changes the
        estimate.
        """
        backend = kernel if kernel is not None else self.meta.get("kernel")
        per_query = count_accesses(self.geometry, workload, kernel=backend)
        return PredictionResult(
            per_query=per_query,
            detail={
                "warm": True,
                "n_mini_leaves": self.geometry.k,
                "kernel": get_kernel(backend).name,
            },
        )

    def predict_many(
        self,
        workloads: "list[KNNWorkload] | list[RangeWorkload]",
        *,
        kernel: str | None = None,
    ) -> list[PredictionResult]:
        """One fused kernel dispatch answering several workloads.

        The service coalescer's fast path: the members' queries are
        concatenated under a :class:`~repro.kernels.batch.BatchPlan`,
        counted in a *single* kernel call, and carved back per member.
        Every kernel counts each query independently of its neighbours,
        so member ``m``'s counts are bit-identical to a stand-alone
        ``predict(workloads[m])`` -- and the fused dispatch's charged
        cost (zero here: warm counting touches no disk) is attributed
        across members exactly via ``BatchPlan.attribute``.  Workloads
        must all be k-NN or all be range: mixed shapes cannot share a
        kernel call.
        """
        if not workloads:
            return []
        if len({isinstance(w, KNNWorkload) for w in workloads}) > 1:
            raise InputValidationError(
                "predict_many cannot mix k-NN and range workloads in "
                "one fused dispatch"
            )
        backend = kernel if kernel is not None else self.meta.get("kernel")
        impl = get_kernel(backend)
        plan = BatchPlan.for_members(
            [str(m) for m in range(len(workloads))],
            [w.n_queries for w in workloads],
            kernel=impl.name,
            n_leaves=self.geometry.k,
        )
        if isinstance(workloads[0], KNNWorkload):
            fused = impl.count_knn(
                self.geometry,
                np.concatenate([w.queries for w in workloads], axis=0),
                np.concatenate([w.radii for w in workloads]),
            )
        else:
            fused = impl.count_range(
                self.geometry,
                np.concatenate([w.lower for w in workloads], axis=0),
                np.concatenate([w.upper for w in workloads], axis=0),
            )
        detail = {
            "warm": True,
            "n_mini_leaves": self.geometry.k,
            "kernel": impl.name,
        }
        return [
            PredictionResult(per_query=part, detail=dict(detail))
            for part in plan.split(fused)
        ]

    def predict_grid(
        self,
        workload: KNNWorkload,
        radii_grid: np.ndarray,
        *,
        kernel: str | None = None,
    ) -> list[PredictionResult]:
        """Probe the fitted geometry at many radius rows, fused.

        One ``count_grid`` dispatch answers every row of ``radii_grid``
        (``(g, q)`` per-query radii or ``(g,)`` constant rows); result
        ``r``'s ``per_query`` is bit-identical to
        ``predict(workload.with_radii(radii_grid[r]))``.
        """
        backend = kernel if kernel is not None else self.meta.get("kernel")
        grid = count_grid_accesses(
            self.geometry, workload, radii_grid, kernel=backend
        )
        name = get_kernel(backend).name
        return [
            PredictionResult(
                per_query=grid[r],
                detail={
                    "warm": True,
                    "n_mini_leaves": self.geometry.k,
                    "kernel": name,
                    "grid_row": r,
                    "grid_rows": grid.shape[0],
                },
            )
            for r in range(grid.shape[0])
        ]


def fit_model(
    points: np.ndarray,
    *,
    c_data: int,
    c_dir: int,
    memory: int = 10_000,
    seed: int = 0,
    config=None,
    kernel: str | None = None,
) -> FittedModel:
    """Fit a warm-start model: sample, build, compensate, freeze.

    The sampling fraction is ``min(1, memory / n)`` -- the same default
    the facade uses for its mini method -- and the RNG is seeded
    explicitly, so fitting twice with the same arguments yields
    bit-identical geometry (and therefore bit-identical artifacts).
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise InputValidationError(
            f"points must be a non-empty (n, d) matrix, got {points.shape}"
        )
    n, dim = points.shape
    fraction = min(1.0, memory / n)
    model = MiniIndexModel(c_data, c_dir, config=config, kernel=kernel)
    geometry, detail = model.fit_geometry(
        points, fraction, np.random.default_rng(seed)
    )
    meta = {
        "n": int(n),
        "dim": int(dim),
        "c_data": int(c_data),
        "c_dir": int(c_dir),
        "memory": int(memory),
        "seed": int(seed),
        "kernel": kernel,
        **detail,
    }
    return FittedModel(geometry=geometry, meta=meta)


# ----------------------------------------------------------------------
# Binary format
# ----------------------------------------------------------------------

def _pack_section(name: str, payload: bytes) -> bytes:
    """``name | length | payload | crc32(payload)`` with fixed-width
    little-endian framing."""
    name_bytes = name.encode("utf-8")
    return (
        struct.pack("<I", len(name_bytes))
        + name_bytes
        + struct.pack("<Q", len(payload))
        + payload
        + struct.pack("<I", zlib.crc32(payload) & 0xFFFFFFFF)
    )


class _Reader:
    """Cursor over artifact bytes; every read is bounds-checked so a
    truncated file fails as ``reason="header"``, never as an
    :class:`IndexError` escaping to the caller."""

    def __init__(self, data: bytes, path: str):
        self.data = data
        self.offset = 0
        self.path = path

    def take(self, n: int, what: str) -> bytes:
        if self.offset + n > len(self.data):
            raise ArtifactCorruptError(
                self.path, "header",
                detail=f"truncated while reading {what} "
                       f"({self.offset + n} needed, {len(self.data)} present)",
            )
        chunk = self.data[self.offset:self.offset + n]
        self.offset += n
        return chunk

    def take_u32(self, what: str) -> int:
        return struct.unpack("<I", self.take(4, what))[0]

    def take_u64(self, what: str) -> int:
        return struct.unpack("<Q", self.take(8, what))[0]

    def take_section(self) -> tuple[str, bytes]:
        name_len = self.take_u32("section name length")
        if name_len > 4096:
            raise ArtifactCorruptError(
                self.path, "header",
                detail=f"implausible section name length {name_len}",
            )
        name = self.take(name_len, "section name").decode(
            "utf-8", errors="replace"
        )
        payload_len = self.take_u64(f"section {name!r} length")
        if payload_len > len(self.data):
            raise ArtifactCorruptError(
                self.path, "header", section=name,
                detail=f"section claims {payload_len} bytes but the file "
                       f"holds {len(self.data)}",
            )
        payload = self.take(payload_len, f"section {name!r} payload")
        stored = self.take_u32(f"section {name!r} crc")
        actual = zlib.crc32(payload) & 0xFFFFFFFF
        if stored != actual:
            raise ArtifactCorruptError(
                self.path, "checksum", section=name,
                detail=f"stored crc32 {stored:#010x}, payload reads "
                       f"{actual:#010x}",
            )
        return name, payload


def _array_payload(array: np.ndarray, dtype: str) -> bytes:
    """Shape-framed little-endian bytes: ndim | dims... | raw data."""
    cast = np.ascontiguousarray(array, dtype=np.dtype(dtype))
    out = struct.pack("<I", cast.ndim)
    for size in cast.shape:
        out += struct.pack("<Q", size)
    return out + cast.tobytes()


def _payload_array(payload: bytes, dtype: str, path: str,
                   name: str) -> np.ndarray:
    reader = _Reader(payload, path)
    ndim = reader.take_u32(f"{name} ndim")
    if ndim > 4:
        raise ArtifactCorruptError(
            path, "header", section=name,
            detail=f"implausible array rank {ndim}",
        )
    shape = tuple(reader.take_u64(f"{name} dim {i}") for i in range(ndim))
    itemsize = np.dtype(dtype).itemsize
    expected = itemsize * int(np.prod(shape, dtype=np.int64)) if shape else itemsize
    remaining = len(payload) - reader.offset
    if remaining != expected:
        raise ArtifactCorruptError(
            path, "header", section=name,
            detail=f"array of shape {shape} needs {expected} bytes, "
                   f"section holds {remaining}",
        )
    flat = np.frombuffer(payload, dtype=np.dtype(dtype), offset=reader.offset)
    return flat.reshape(shape)


def save_artifact(path: str | Path, model: FittedModel) -> Path:
    """Serialize a fitted model; returns the path written.

    The write goes through a temporary sibling file and an atomic
    rename, so a crash mid-save leaves either the old artifact or none
    -- never a half-written file that the next load would have to
    distrust.
    """
    path = Path(path)
    buffer = io.BytesIO()
    buffer.write(_MAGIC)
    buffer.write(struct.pack("<I", ARTIFACT_VERSION))
    meta_bytes = json.dumps(model.meta, sort_keys=True).encode("utf-8")
    buffer.write(_pack_section("meta", meta_bytes))
    for attr, dtype in _ARRAYS:
        buffer.write(_pack_section(
            attr, _array_payload(getattr(model.geometry, attr), dtype)
        ))
    body = buffer.getvalue()
    footer = struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(body + footer)
    tmp.replace(path)
    return path


def load_artifact(path: str | Path) -> FittedModel:
    """Deserialize and *verify* a fitted model.

    Raises :class:`~repro.errors.ArtifactCorruptError` on the first
    failed check -- bad magic, unknown version, malformed or truncated
    framing, any section CRC mismatch, or a whole-file CRC mismatch.
    Returns only a fully verified model.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as error:
        raise ArtifactCorruptError(
            str(path), "header", detail=f"unreadable: {error}"
        ) from error
    if len(data) < len(_MAGIC) + 8:
        raise ArtifactCorruptError(
            str(path), "magic",
            detail=f"file holds {len(data)} bytes, smaller than any artifact",
        )
    body, stored_footer = data[:-4], struct.unpack("<I", data[-4:])[0]
    if (zlib.crc32(body) & 0xFFFFFFFF) != stored_footer:
        raise ArtifactCorruptError(
            str(path), "checksum", section="file",
            detail="whole-file crc32 mismatch (truncated or flipped)",
        )
    reader = _Reader(body, str(path))
    if reader.take(len(_MAGIC), "magic") != _MAGIC:
        raise ArtifactCorruptError(
            str(path), "magic", detail="not a repro model artifact"
        )
    version = reader.take_u32("format version")
    if version != ARTIFACT_VERSION:
        raise ArtifactCorruptError(
            str(path), "version",
            detail=f"artifact is format v{version}, this build speaks "
                   f"v{ARTIFACT_VERSION}",
        )
    sections: dict[str, bytes] = {}
    while reader.offset < len(body):
        name, payload = reader.take_section()
        sections[name] = payload
    if "meta" not in sections:
        raise ArtifactCorruptError(
            str(path), "header", detail="missing meta section"
        )
    try:
        meta = json.loads(sections["meta"].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ArtifactCorruptError(
            str(path), "header", section="meta",
            detail=f"metadata is not valid JSON: {error}",
        ) from error
    arrays = {}
    for attr, dtype in _ARRAYS:
        if attr not in sections:
            raise ArtifactCorruptError(
                str(path), "header", detail=f"missing section {attr!r}"
            )
        arrays[attr] = _payload_array(sections[attr], dtype, str(path), attr)
    try:
        geometry = LeafGeometry(
            arrays["lower"], arrays["upper"],
            arrays["n_points"], arrays["virtual_n"],
        )
    except ValueError as error:
        raise ArtifactCorruptError(
            str(path), "header", detail=f"inconsistent geometry: {error}"
        ) from error
    return FittedModel(geometry=geometry, meta=meta)


# ----------------------------------------------------------------------
# Keyed store
# ----------------------------------------------------------------------

class ArtifactStore:
    """A directory of artifacts keyed by name, with rebuild-on-corrupt.

    ``load_or_fit(key, fit)`` is the warm-start entry point the service
    uses: a verified artifact loads instantly; a missing, corrupt, or
    version-skewed one triggers ``fit()`` and the result is saved over
    whatever was there.  The outcome of every lookup is recorded in
    ``events`` (``"hit"``, ``"miss"``, ``"rebuilt"``, ``"adopted"``) so
    healing is never invisible.

    Lookups are serialized per key: two threads racing
    :meth:`load_or_fit` on the same corrupt artifact perform exactly one
    rebuild -- the loser of the race loads the winner's healed file and
    gets a bit-identical model, instead of fitting again or reading a
    half-written artifact.  The anti-entropy path of the cluster relies
    on this (a scrubber healing a key while a request warm-starts it).
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        #: lookup history: list of (key, outcome, detail)
        self.events: list[tuple[str, str, str]] = []
        self._guard = threading.Lock()
        self._key_locks: dict[str, threading.Lock] = {}

    def _lock_for(self, key: str) -> threading.Lock:
        with self._guard:
            return self._key_locks.setdefault(key, threading.Lock())

    def path_for(self, key: str) -> Path:
        safe = "".join(
            ch if ch.isalnum() or ch in "-_." else "_" for ch in key
        )
        return self.directory / f"{safe}.rpro"

    def load_or_fit(self, key: str, fit) -> FittedModel:
        """A verified cached model, or a freshly fitted and saved one."""
        path = self.path_for(key)
        with self._lock_for(key):
            if path.exists():
                try:
                    model = load_artifact(path)
                    self.events.append((key, "hit", str(path)))
                    return model
                except ArtifactCorruptError as error:
                    # The artifact lied; rebuild from data and overwrite.
                    self.events.append((key, "rebuilt", str(error)))
                    model = fit()
                    save_artifact(path, model)
                    return model
            self.events.append((key, "miss", str(path)))
            model = fit()
            save_artifact(path, model)
            return model

    def verify(self, key: str) -> FittedModel:
        """Load and fully verify ``key``'s artifact (no rebuild).

        Raises :class:`~repro.errors.ArtifactCorruptError` on any failed
        check and ``reason="header"`` when the file is missing -- the
        anti-entropy scrubber treats both as "this copy needs healing".
        """
        with self._lock_for(key):
            return load_artifact(self.path_for(key))

    def adopt(self, key: str, data: bytes) -> FittedModel:
        """Install verified peer bytes as this store's copy of ``key``.

        The cluster's anti-entropy pass heals a corrupt artifact from a
        replica peer by copying the peer's file *bytes* -- artifacts of
        the same fit are bit-identical, so adoption preserves the
        bit-identical-reload contract without refitting.  The bytes are
        written to a temporary sibling and **verified before** the
        atomic rename: corrupt donor bytes raise
        :class:`~repro.errors.ArtifactCorruptError` and leave the
        existing file untouched.
        """
        path = self.path_for(key)
        tmp = path.with_name(path.name + ".adopt")
        with self._lock_for(key):
            tmp.write_bytes(data)
            try:
                model = load_artifact(tmp)
            except ArtifactCorruptError:
                tmp.unlink(missing_ok=True)
                raise
            tmp.replace(path)
            self.events.append((key, "adopted", str(path)))
            return model

    def rebuilds(self) -> int:
        return sum(1 for _, outcome, _ in self.events if outcome == "rebuilt")
