"""Per-tenant quotas, ledgers, and isolation primitives.

Multi-tenancy here means *isolation by accounting*: every tenant owns
its quota, its charged-op ledger, and its circuit breaker, and every
admission decision reads only that tenant's state.  A tenant that
floods the service is refused at its own quota
(:class:`~repro.errors.TenantQuotaExceededError`) while its neighbours'
admissions are untouched; a tenant whose dataset sits on a failing disk
trips its own breaker without poisoning anyone else's fast path.

The ledger is the reconciliation anchor: the sum of charged I/O ops
over a tenant's responses must equal the ops folded into the tenant's
:class:`~repro.runtime.governor.Governor` -- the service chaos harness
asserts exactly this, so cross-tenant budget leakage is a test failure,
not a production surprise.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..errors import InputValidationError, TenantQuotaExceededError
from ..runtime.breaker import CircuitBreaker
from ..runtime.budget import Budget
from ..runtime.governor import Governor

__all__ = ["TenantQuota", "TenantLedger"]


@dataclass(frozen=True)
class TenantQuota:
    """What one tenant may consume, enforced at admission.

    ``max_inflight`` caps this tenant's concurrently admitted requests
    (queued plus executing); ``max_io_ops`` is a *lifetime* charged-op
    allowance across all of the tenant's requests (``None``:
    unmetered); ``deadline_s`` is the default per-request deadline
    (``None``: requests run without one unless they ask);
    ``max_retries`` / ``backoff_s`` shape the request-level retry loop.
    """

    max_inflight: int = 4
    max_io_ops: int | None = None
    deadline_s: float | None = None
    max_retries: int = 0
    backoff_s: float = 0.0

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise InputValidationError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.max_io_ops is not None and self.max_io_ops < 0:
            raise InputValidationError(
                f"max_io_ops must be non-negative, got {self.max_io_ops}"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise InputValidationError(
                f"deadline_s must be positive, got {self.deadline_s}"
            )
        if self.max_retries < 0 or self.backoff_s < 0:
            raise InputValidationError(
                "max_retries and backoff_s must be non-negative"
            )


class TenantLedger:
    """One tenant's live accounting: slots, ops, breaker, counters.

    Thread-safe by construction -- admission and release are called
    from the submitting thread, spend folding from worker threads.
    The governor enforces the lifetime op allowance (its budget is the
    quota's ``max_io_ops``); ``charged_ops`` mirrors the same total as
    a plain sum over responses so the two can be reconciled
    independently.
    """

    def __init__(self, name: str, quota: TenantQuota):
        self.name = name
        self.quota = quota
        self.governor = Governor(Budget(max_io_ops=quota.max_io_ops))
        self.breaker = CircuitBreaker()
        self._lock = threading.Lock()
        self._inflight = 0
        #: charged ops summed over finished responses (reconciliation)
        self.charged_ops = 0
        #: admission / outcome counters
        self.submitted = 0
        self.refused_quota = 0
        self.completed = 0
        self.degraded = 0
        self.errors = 0

    # ------------------------------------------------------------------

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight

    def remaining_ops(self) -> int | None:
        return self.governor.remaining_ops()

    def admit(self) -> None:
        """Take one in-flight slot, or refuse with the typed error.

        Checks are strictly per-tenant: the in-flight cap and the
        lifetime op allowance.  Refusal costs nothing and releases
        nothing.
        """
        with self._lock:
            if self._inflight >= self.quota.max_inflight:
                self.refused_quota += 1
                raise TenantQuotaExceededError(
                    self.name, "inflight",
                    self._inflight + 1, self.quota.max_inflight,
                )
            remaining = self.governor.remaining_ops()
            if remaining is not None and remaining <= 0:
                self.refused_quota += 1
                raise TenantQuotaExceededError(
                    self.name, "io_ops",
                    self.governor.spent_ops, self.quota.max_io_ops,
                )
            self._inflight += 1
            self.submitted += 1

    def release(self) -> None:
        """Return the in-flight slot taken by :meth:`admit`."""
        with self._lock:
            self._inflight = max(0, self._inflight - 1)

    def settle(self, io_ops: int, status: str) -> None:
        """Fold one finished request's spend and verdict into the books.

        ``io_ops`` is the request's charged total (whatever the
        response reports -- the reconciliation invariant is that these
        sums match the governor's).  ``status`` is the response status
        (``"ok"`` / ``"degraded"`` / ``"error"``).
        """
        from ..disk.accounting import IOCost

        with self._lock:
            # observe/end_attempt is a set-then-fold pair on the
            # governor's attempt slot; two workers interleaving it
            # would overwrite each other's charge, so the ledger lock
            # serializes the whole settle.
            self.governor.observe(
                "request", IOCost(seeks=0, transfers=io_ops)
            )
            self.governor.end_attempt()
            self.charged_ops += io_ops
            if status == "ok":
                self.completed += 1
            elif status == "degraded":
                self.degraded += 1
            else:
                self.errors += 1

    def snapshot(self) -> dict:
        """The tenant's books as one dict (responses, CLI tables)."""
        with self._lock:
            return {
                "tenant": self.name,
                "inflight": self._inflight,
                "submitted": self.submitted,
                "completed": self.completed,
                "degraded": self.degraded,
                "errors": self.errors,
                "refused_quota": self.refused_quota,
                "charged_ops": self.charged_ops,
                "governor_ops": self.governor.spent_ops,
                "remaining_ops": self.governor.remaining_ops(),
                "breaker_state": self.breaker.state,
            }
