"""Sustained-throughput and tail-latency measurement for the service.

One closed-loop client thread per tenant hammers the service for a
fixed wall-clock window; every resolved response contributes its
submit-to-resolution latency.  The committed ``BENCH_service.json``
is the :meth:`LoadTestResult.as_dict` of one such run (via
``repro loadtest``), so the repository carries an auditable record of
what the service sustains: requests per second, p50/p95/p99 latency,
and how much load was shed at which gate.

Closed-loop means each client waits for its response before submitting
again -- offered load scales with ``n_tenants``, and the bounded queue
plus per-tenant quotas (not client politeness) are what keep the tail
bounded when offered load exceeds capacity.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import ServiceOverloadedError, TenantQuotaExceededError
from .server import PredictionService
from .tenancy import TenantQuota

__all__ = ["LoadTestResult", "run_loadtest"]


@dataclass
class LoadTestResult:
    """One load-test window, summarized.

    Latency percentiles are milliseconds over *resolved* requests
    (refused admissions cost microseconds and would flatter the tail);
    ``throughput_rps`` counts resolved responses per second of the
    measurement window.
    """

    duration_s: float
    n_tenants: int
    workers: int
    method: str
    requests_sent: int = 0
    resolved: int = 0
    ok: int = 0
    degraded: int = 0
    errors: int = 0
    shed_overload: int = 0
    refused_quota: int = 0
    throughput_rps: float = 0.0
    p50_ms: float = 0.0
    p95_ms: float = 0.0
    p99_ms: float = 0.0
    mean_ms: float = 0.0
    max_ms: float = 0.0
    #: pipelined submissions per client iteration (1 = strict closed loop)
    burst: int = 1
    #: the service's batch-occupancy snapshot (all-zero with coalesce off)
    batching: dict = field(default_factory=dict)
    tenants: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "duration_s": self.duration_s,
            "n_tenants": self.n_tenants,
            "workers": self.workers,
            "method": self.method,
            "requests_sent": self.requests_sent,
            "resolved": self.resolved,
            "ok": self.ok,
            "degraded": self.degraded,
            "errors": self.errors,
            "shed_overload": self.shed_overload,
            "refused_quota": self.refused_quota,
            "throughput_rps": round(self.throughput_rps, 1),
            "latency_ms": {
                "p50": round(self.p50_ms, 3),
                "p95": round(self.p95_ms, 3),
                "p99": round(self.p99_ms, 3),
                "mean": round(self.mean_ms, 3),
                "max": round(self.max_ms, 3),
            },
            "burst": self.burst,
            "batching": dict(self.batching),
            "tenants": self.tenants,
        }


def run_loadtest(
    *,
    n_tenants: int = 8,
    workers: int = 4,
    duration_s: float = 2.0,
    max_queue: int = 64,
    n_points: int = 1_200,
    dim: int = 8,
    memory: int = 300,
    n_queries: int = 32,
    k: int = 5,
    method: str = "warm",
    seed: int = 0,
    max_inflight: int = 8,
    artifact_dir: str | None = None,
    coalesce: bool = False,
    coalesce_window_ms: float = 2.0,
    burst: int = 1,
) -> LoadTestResult:
    """Hammer a fresh service with ``n_tenants`` closed-loop clients.

    Each tenant gets its own seeded gaussian dataset and density-biased
    k-NN workload; clients run until the window closes, counting every
    admission refusal and classifying every response.  ``method`` is
    what the clients request -- ``"warm"`` measures the amortized
    serving fast path, a full method (``"resampled"`` etc.) measures
    the governed prediction pipeline under contention.

    ``coalesce``/``coalesce_window_ms`` thread straight into the
    service's batched execution plane.  ``burst`` pipelines that many
    submissions per client iteration (bounded by ``max_inflight``)
    before waiting for them all -- the closed loop still bounds offered
    load, but a queue depth exists for the coalescer to find; use the
    same burst on both sides when comparing coalesced vs uncoalesced.
    """
    if burst < 1:
        raise ValueError("burst must be >= 1")
    burst = min(burst, max_inflight)
    rng = np.random.default_rng(seed)
    service = PredictionService(
        workers=workers, max_queue=max_queue, memory=memory,
        artifact_dir=artifact_dir,
        default_quota=TenantQuota(max_inflight=max_inflight),
        coalesce=coalesce, coalesce_window_ms=coalesce_window_ms,
    )
    workloads = {}
    for i in range(n_tenants):
        name = f"tenant-{i}"
        points = rng.normal(size=(n_points, dim))
        service.register_tenant(name, points)
        workloads[name] = service.tenant(name).predictor.make_workload(
            points, n_queries=n_queries, k=k, seed=seed + i
        )

    result = LoadTestResult(
        duration_s=duration_s, n_tenants=n_tenants, workers=workers,
        method=method, burst=burst,
    )
    latencies: list[float] = []
    lock = threading.Lock()

    def client(name: str) -> None:
        sent = resolved = ok = degraded = errors = 0
        refused = shed = 0
        local_latencies = []
        stop_at = time.monotonic() + duration_s
        while time.monotonic() < stop_at:
            pendings = []
            for _ in range(burst):
                try:
                    pendings.append(service.submit(name, workloads[name],
                                                   method=method))
                except TenantQuotaExceededError:
                    refused += 1
                    break
                except ServiceOverloadedError:
                    shed += 1
                    break
            if not pendings:
                time.sleep(0.001)
                continue
            sent += len(pendings)
            for pending in pendings:
                response = pending.result(timeout=60.0)
                resolved += 1
                local_latencies.append(response.latency_s)
                if response.status == "ok":
                    ok += 1
                elif response.status == "degraded":
                    degraded += 1
                else:
                    errors += 1
        with lock:
            result.requests_sent += sent
            result.resolved += resolved
            result.ok += ok
            result.degraded += degraded
            result.errors += errors
            result.refused_quota += refused
            result.shed_overload += shed
            latencies.extend(local_latencies)

    with service:
        threads = [
            threading.Thread(target=client, args=(name,), daemon=True)
            for name in workloads
        ]
        started = time.monotonic()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.monotonic() - started

    if latencies:
        lat_ms = np.asarray(latencies) * 1e3
        result.p50_ms = float(np.percentile(lat_ms, 50))
        result.p95_ms = float(np.percentile(lat_ms, 95))
        result.p99_ms = float(np.percentile(lat_ms, 99))
        result.mean_ms = float(lat_ms.mean())
        result.max_ms = float(lat_ms.max())
    result.throughput_rps = result.resolved / max(elapsed, 1e-9)
    result.batching = service.metrics()["batching"]
    result.tenants = {
        name: service.tenant(name).ledger.snapshot() for name in workloads
    }
    return result
