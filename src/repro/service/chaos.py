"""Chaos harness for the multi-tenant prediction service.

The service's contract is stronger than "usually works": **every
admitted request terminates**, and it terminates in one of exactly
three ways -- bit-identical to an unloaded run (warm requests),
degraded with a causal record (the facade's chain ran), or a typed
error response.  Never hung, never silently wrong, and never billed to
the wrong tenant.  This module turns that sentence into an executable
sweep:

* worker threads are killed mid-request (``WorkerDeath`` injected via
  the service's pre-request hook) and must answer their request before
  dying; the supervisor must respawn them;
* one tenant's warm-start artifact is corrupted on disk between runs
  and must be detected (CRC) and rebuilt, never trusted;
* one tenant is *slow* (its requests sleep past their deadline) and
  must get typed deadline errors without delaying anyone else's
  verdicts;
* one tenant's dataset sits on a faulty disk and must ride the
  degradation chain with ``cause`` attribution;
* one tenant has a starvation-level I/O allowance and must be refused
  or budget-degraded -- out of *its own* allowance only.

After the storm, :func:`assert_service_invariant` reconciles each
tenant's ledger three ways (sum of response ops == ledger counter ==
governor spend) so cross-tenant budget leakage is a hard failure.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from ..errors import (
    ReproError,
    ServiceOverloadedError,
    TenantQuotaExceededError,
)
from .server import PredictionService, WorkerDeath
from .tenancy import TenantQuota

__all__ = [
    "ServiceChaosOutcome",
    "ServiceChaosScenario",
    "assert_service_invariant",
    "run_service_chaos",
]

#: error types an "error" response may legitimately carry -- anything
#: else is an untyped leak and fails the invariant
_TYPED_ERRORS = frozenset({
    "WorkerDeath",
    "DeadlineExceededError",
    "BudgetExceededError",
    "PredictionError",
    "TransientReadError",
    "TornWriteError",
    "ChecksumError",
    "UnrecoverableCorruptionError",
    "CircuitOpenError",
    "ServiceOverloadedError",
})

#: how long a response may take before the sweep calls it hung; chaos
#: workloads here run in milliseconds, so 30 s is not a tight race
_HANG_TIMEOUT_S = 30.0


@dataclass(frozen=True)
class ServiceChaosScenario:
    """One deterministic service storm.

    ``seed`` drives everything random: datasets, request mix, and which
    request ids draw a worker kill.  ``worker_death_rate`` is the
    per-request kill probability; ``corrupt_artifact`` flips a byte in
    one tenant's saved model between registrations (needs the sweep to
    run with an artifact directory).  The special tenants (slow, faulty
    disk, starved allowance) are always present -- chaos without them
    would only exercise the happy path.
    """

    seed: int = 0
    n_tenants: int = 4
    requests_per_tenant: int = 12
    workers: int = 4
    max_queue: int = 64
    worker_death_rate: float = 0.1
    corrupt_artifact: bool = True
    n_points: int = 600
    dim: int = 6
    memory: int = 200
    #: run the storm over the batched execution plane -- the invariant
    #: (warm bit-identity against the unloaded reference, three-way
    #: per-tenant op reconciliation of the split attributions) must
    #: hold unchanged with fused dispatches on
    coalesce: bool = False
    coalesce_window_ms: float = 2.0


@dataclass
class ServiceChaosOutcome:
    """What one chaos sweep observed, classified request by request.

    ``classified`` counts terminal states: ``identical`` (warm response
    bit-equal to the unloaded reference), ``served`` (full method, ok),
    ``degraded`` (fallback with record), ``typed_error`` (an allowed
    error type), ``refused_quota`` / ``shed_overload`` (admission).
    ``violations`` lists everything the invariant forbids: hangs,
    bit-mismatches, untyped errors, degradations without a causal
    record.  ``reconciliation`` holds the three per-tenant op sums that
    must agree.
    """

    scenario: ServiceChaosScenario
    classified: Counter = field(default_factory=Counter)
    violations: list[str] = field(default_factory=list)
    reconciliation: dict = field(default_factory=dict)
    workers_respawned: int = 0
    artifact_rebuilds: int = 0
    causes_seen: Counter = field(default_factory=Counter)
    #: the service's batch-occupancy snapshot (fused dispatches, mean/
    #: max batch size, window hit rate) -- all-zero with coalesce off
    batching: dict = field(default_factory=dict)

    @property
    def total_requests(self) -> int:
        return sum(self.classified.values())

    def summary(self) -> dict:
        return {
            "seed": self.scenario.seed,
            "requests": self.total_requests,
            "classified": dict(self.classified),
            "causes_seen": dict(self.causes_seen),
            "violations": list(self.violations),
            "workers_respawned": self.workers_respawned,
            "artifact_rebuilds": self.artifact_rebuilds,
            "batching": dict(self.batching),
            "reconciliation": self.reconciliation,
        }


def _tenant_points(rng: np.random.Generator, scenario: ServiceChaosScenario
                   ) -> np.ndarray:
    return rng.normal(size=(scenario.n_points, scenario.dim))


def run_service_chaos(
    scenario: ServiceChaosScenario,
    *,
    artifact_dir: str | None = None,
) -> ServiceChaosOutcome:
    """Run one seeded storm against a fresh service; classify everything.

    With ``artifact_dir`` set the sweep also exercises the warm-start
    path end to end: tenants are registered twice (fit-and-save, then
    verified-load) and, when the scenario asks, one artifact is
    corrupted in between and must be rebuilt.
    """
    rng = np.random.default_rng(scenario.seed)
    outcome = ServiceChaosOutcome(scenario=scenario)

    # --- tenants: regular ones plus the three adversarial specials ---
    datasets = {
        f"tenant-{i}": _tenant_points(rng, scenario)
        for i in range(scenario.n_tenants)
    }
    datasets["slow"] = _tenant_points(rng, scenario)
    datasets["faulty-disk"] = _tenant_points(rng, scenario)
    datasets["starved"] = _tenant_points(rng, scenario)
    quotas = {
        "slow": TenantQuota(max_inflight=4, deadline_s=0.01),
        "faulty-disk": TenantQuota(max_inflight=4),
        "starved": TenantQuota(max_inflight=4, max_io_ops=5),
    }
    predictor_kwargs = {"faulty-disk": {"fault_rate": 0.35, "fault_seed": 3}}

    # Which request ids a worker dies on, fixed up front so the decision
    # is deterministic and safe to read from any worker thread.
    max_ids = (scenario.n_tenants + 3) * scenario.requests_per_tenant + 64
    kill_ids = frozenset(
        int(i) for i in range(1, max_ids + 1)
        if rng.random() < scenario.worker_death_rate
    )

    def hook(item) -> None:
        if item.tenant.name == "slow":
            time.sleep(0.03)  # past the 10 ms deadline, every time
        if item.pending.request_id in kill_ids:
            raise WorkerDeath(f"chaos kill of request "
                              f"{item.pending.request_id}")

    service = PredictionService(
        workers=scenario.workers,
        max_queue=scenario.max_queue,
        artifact_dir=artifact_dir,
        memory=scenario.memory,
        pre_request_hook=hook,
        coalesce=scenario.coalesce,
        coalesce_window_ms=scenario.coalesce_window_ms,
    )

    for name, points in datasets.items():
        service.register_tenant(
            name, points, quota=quotas.get(name),
            **predictor_kwargs.get(name, {}),
        )

    # --- artifact corruption between registrations -------------------
    if artifact_dir is not None and scenario.corrupt_artifact:
        victim = "tenant-0"
        path = service.store.path_for(victim)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        service.register_tenant(victim, datasets[victim])  # must rebuild

    # --- unloaded references for the bit-identity check --------------
    references = {}
    workloads = {}
    for name, points in datasets.items():
        tenant = service.tenant(name)
        workload = tenant.predictor.make_workload(
            points, n_queries=16, k=5, seed=scenario.seed + 1
        )
        workloads[name] = workload
        references[name] = tenant.model.predict(workload).per_query.copy()

    # --- the storm ----------------------------------------------------
    pending = []
    with service:
        submit_rng = np.random.default_rng(scenario.seed + 2)
        for round_i in range(scenario.requests_per_tenant):
            for name in datasets:
                if name == "faulty-disk":
                    method = "resampled"
                elif name in ("slow", "starved"):
                    method = "cutoff"
                else:
                    method = ("warm" if submit_rng.random() < 0.7
                              else "resampled")
                try:
                    pending.append((name, method, service.submit(
                        name, workloads[name], method=method,
                        seed=round_i,
                    )))
                except TenantQuotaExceededError:
                    outcome.classified["refused_quota"] += 1
                except ServiceOverloadedError:
                    outcome.classified["shed_overload"] += 1
                except ReproError as error:  # untyped leak = violation
                    outcome.violations.append(
                        f"submit({name}) raised unexpected "
                        f"{type(error).__name__}: {error}"
                    )

        responses = []
        for name, method, future in pending:
            try:
                response = future.result(timeout=_HANG_TIMEOUT_S)
            except TimeoutError:
                outcome.classified["hung"] += 1
                outcome.violations.append(
                    f"request {future.request_id} of {name!r} "
                    f"({method}) HUNG past {_HANG_TIMEOUT_S:g} s"
                )
                continue
            responses.append((name, method, response))
            _classify(outcome, name, method, response, references)

    outcome.workers_respawned = service.workers_respawned
    outcome.artifact_rebuilds = (service.store.rebuilds()
                                 if service.store else 0)
    outcome.batching = service.metrics()["batching"]

    # --- reconciliation: three sums per tenant must agree -------------
    for name in datasets:
        ledger = service.tenant(name).ledger
        from_responses = sum(
            r.io_ops for (t, _, r) in responses if t == name
        )
        snapshot = ledger.snapshot()
        outcome.reconciliation[name] = {
            "response_ops": from_responses,
            "ledger_ops": snapshot["charged_ops"],
            "governor_ops": snapshot["governor_ops"],
        }
    return outcome


def _classify(outcome, name, method, response, references) -> None:
    """File one response under its terminal state (or violation)."""
    if response.cause:
        outcome.causes_seen[response.cause] += 1
    if response.status == "ok":
        if method == "warm":
            if np.array_equal(response.result.per_query, references[name]):
                outcome.classified["identical"] += 1
            else:
                outcome.classified["mismatch"] += 1
                outcome.violations.append(
                    f"warm request {response.request_id} of {name!r} "
                    f"diverged from the unloaded reference"
                )
        else:
            outcome.classified["served"] += 1
    elif response.status == "degraded":
        if response.attempts and response.result is not None:
            outcome.classified["degraded"] += 1
        else:
            outcome.classified["mismatch"] += 1
            outcome.violations.append(
                f"degraded request {response.request_id} of {name!r} "
                f"carries no causal record"
            )
    elif response.status == "error":
        if response.error_type in _TYPED_ERRORS:
            outcome.classified["typed_error"] += 1
        else:
            outcome.classified["untyped_error"] += 1
            outcome.violations.append(
                f"request {response.request_id} of {name!r} failed with "
                f"untyped {response.error_type}: {response.error}"
            )
    else:
        outcome.violations.append(
            f"request {response.request_id} of {name!r} ended in unknown "
            f"status {response.status!r}"
        )


def assert_service_invariant(outcome: ServiceChaosOutcome) -> None:
    """The service invariant, as one assertion.

    Every request terminated (no hangs), every terminal state was one
    of the allowed three, and every tenant's three op sums agree --
    i.e. no charge leaked across tenants and none went missing.
    """
    assert not outcome.violations, (
        "service invariant violated:\n  " + "\n  ".join(outcome.violations)
    )
    assert outcome.classified.get("hung", 0) == 0
    for name, sums in outcome.reconciliation.items():
        assert (sums["response_ops"] == sums["ledger_ops"]
                == sums["governor_ops"]), (
            f"tenant {name!r} ledger does not reconcile: {sums} "
            f"(cross-tenant leakage or lost charges)"
        )
