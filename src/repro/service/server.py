"""The threaded multi-tenant prediction service.

A :class:`PredictionService` is a long-lived front end over the
facade: tenants register a dataset (and optionally a warm-start
artifact), then submit prediction requests that worker threads execute
concurrently.  Under load or failure the service never hangs and never
lies -- every request terminates in exactly one of three ways:

* **served** -- a :class:`ServiceResponse` with status ``"ok"``
  (bit-identical to an unloaded single-caller run for warm requests)
  or ``"degraded"`` (the facade's degradation chain ran; the response
  carries the full causal attribution: methods attempted, the error
  that forced each downgrade, and whether the cause was ``budget``,
  ``fault``, ``media``, or ``deadline``);
* **refused at admission** -- a typed
  :class:`~repro.errors.TenantQuotaExceededError` (this tenant's own
  in-flight slots or lifetime op allowance are spent) or
  :class:`~repro.errors.ServiceOverloadedError` (the shared bounded
  queue is full: load is shed, not buffered into unbounded latency);
* **failed with a typed error response** -- status ``"error"`` naming
  the exception class, including the case of a worker thread dying
  mid-request (the dying worker answers its request first, then the
  supervisor respawns the thread).

Isolation is per-tenant by construction: quotas, ledgers, circuit
breakers, and warm models are keyed by tenant, and a request's I/O
budget is capped by *its own tenant's* remaining allowance -- the
chaos harness reconciles each tenant's ledger against its responses to
prove no spend leaks across tenants.

Clocks and sleeps are injectable so deadline and backoff behavior is
testable without real time passing.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field
from queue import Empty, Full, Queue
from typing import Callable

import numpy as np

from ..core.counting import PredictionResult
from ..core.predictor import IndexCostPredictor
from ..errors import (
    DeadlineExceededError,
    InputValidationError,
    ReproError,
    ServiceOverloadedError,
    validate_points,
)
from ..runtime.budget import Budget
from ..workload.queries import KNNWorkload, RangeWorkload
from .artifacts import ArtifactStore, FittedModel, fit_model
from .tenancy import TenantLedger, TenantQuota

__all__ = [
    "PendingPrediction",
    "PredictionService",
    "ServiceResponse",
    "WorkerDeath",
]

#: full prediction methods a request may ask the facade for
_FULL_METHODS = ("resampled", "cutoff", "mini")


class WorkerDeath(Exception):
    """A worker thread was killed mid-request (chaos injection).

    Deliberately *not* a :class:`~repro.errors.ReproError`: nothing in
    the library throws it for real -- the service chaos harness does,
    to prove that a dying worker answers its in-flight request with a
    typed error response and is respawned, instead of leaving a future
    that never resolves.
    """


@dataclass
class ServiceResponse:
    """The terminal verdict of one admitted request.

    ``status`` is ``"ok"`` (the requested path completed),
    ``"degraded"`` (a cheaper method answered; ``attempts`` carries the
    facade's causal record), or ``"error"`` (a typed failure;
    ``error_type`` names the class).  ``cause`` is the dominant causal
    attribution: ``None`` for clean requests, else ``budget`` /
    ``fault`` / ``media`` / ``deadline`` / ``worker`` / ``internal``.
    ``io_ops`` is the charged spend this response settles against its
    tenant's ledger; ``latency_s`` spans submit to resolution and
    ``queue_wait_s`` the bounded-queue residency inside it.
    """

    tenant: str
    request_id: int
    status: str
    result: PredictionResult | None = None
    method_requested: str = "warm"
    method_used: str | None = None
    error: str | None = None
    error_type: str | None = None
    cause: str | None = None
    attempts: list = field(default_factory=list)
    retries: int = 0
    io_ops: int = 0
    latency_s: float = 0.0
    queue_wait_s: float = 0.0
    worker: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def mean_accesses(self) -> float | None:
        return None if self.result is None else self.result.mean_accesses


class PendingPrediction:
    """A submitted request's future response; always resolves.

    The service guarantees resolution -- served, degraded, typed error,
    or shutdown -- so :meth:`result` with a generous timeout is safe.
    A ``timeout`` expiry raises :class:`TimeoutError` *without*
    cancelling the request (Python threads cannot be killed); the
    response still lands here when the worker finishes.
    """

    def __init__(self, tenant: str, request_id: int):
        self.tenant = tenant
        self.request_id = request_id
        self._done = threading.Event()
        self._response: ServiceResponse | None = None

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> ServiceResponse:
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request {self.request_id} of tenant {self.tenant!r} "
                f"not resolved within {timeout:g} s"
            )
        assert self._response is not None
        return self._response

    def _resolve(self, response: ServiceResponse) -> None:
        if self._done.is_set():  # first verdict wins; never overwrite
            return
        self._response = response
        self._done.set()


@dataclass
class _Tenant:
    """One registered tenant: data, facade, warm model, books."""

    name: str
    points: np.ndarray
    predictor: IndexCostPredictor
    ledger: TenantLedger
    model: FittedModel | None = None
    fit_seed: int = 0


@dataclass
class _Item:
    """One queued request."""

    tenant: _Tenant
    workload: KNNWorkload | RangeWorkload
    pending: PendingPrediction
    method: str
    seed: int
    deadline_s: float | None
    max_retries: int
    backoff_s: float
    submitted_at: float
    started_at: float = 0.0


_STOP = object()


class PredictionService:
    """Threaded, quota-isolated, load-shedding prediction server.

    ``workers`` is the execution parallelism; ``max_queue`` bounds the
    shared request queue (the backpressure point -- a full queue sheds
    with :class:`~repro.errors.ServiceOverloadedError`).
    ``default_quota`` applies to tenants registered without their own.
    ``artifact_dir`` enables warm-start persistence: fitted models are
    saved there and verified-loaded on re-registration; corrupt files
    are rebuilt.  ``clock`` must be monotonic; ``sleeper`` performs
    retry backoff -- both injectable for deterministic tests.

    ``coalesce=True`` turns on the batched execution plane: a worker
    that picks up a request waits up to ``coalesce_window_ms`` for more
    queued work (at most ``coalesce_max_batch`` items), then serves the
    claim as a batch -- compatible warm requests (same tenant model,
    hence same geometry and kernel, same workload shape) fuse into one
    kernel dispatch whose answers and charged-op attribution are split
    back per request.  Responses stay bit-identical to uncoalesced
    serving and every member settles its own tenant ledger, so the
    chaos reconciliation invariant holds with the knob on or off; it
    defaults off (the identity configuration) and the serving entry
    points (CLI ``serve``/``loadtest``, the cluster's replicas) opt in.
    """

    def __init__(
        self,
        *,
        workers: int = 4,
        max_queue: int = 32,
        default_quota: TenantQuota | None = None,
        artifact_dir: str | None = None,
        memory: int = 2_000,
        kernel: str | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleeper: Callable[[float], None] = time.sleep,
        pre_request_hook: Callable[["_Item"], None] | None = None,
        coalesce: bool = False,
        coalesce_window_ms: float = 2.0,
        coalesce_max_batch: int = 32,
    ):
        if workers < 1:
            raise InputValidationError("workers must be positive")
        if max_queue < 1:
            raise InputValidationError("max_queue must be positive")
        if coalesce_window_ms < 0:
            raise InputValidationError(
                "coalesce_window_ms must be non-negative"
            )
        if coalesce_max_batch < 1:
            raise InputValidationError("coalesce_max_batch must be positive")
        self.workers = workers
        self.max_queue = max_queue
        self.default_quota = default_quota or TenantQuota()
        self.memory = memory
        self.kernel = kernel
        self.store = ArtifactStore(artifact_dir) if artifact_dir else None
        self._clock = clock
        self._sleeper = sleeper
        self._pre_request_hook = pre_request_hook
        self._queue: Queue = Queue(maxsize=max_queue)
        self._tenants: dict[str, _Tenant] = {}
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._running = False
        self._request_ids = itertools.count(1)
        #: monotonic start/stop marks for the uptime gauge
        self._started_at: float | None = None
        self._stopped_at: float | None = None
        #: lifetime service counters (mutated under ``_lock`` so
        #: :meth:`metrics` can snapshot them consistently)
        self.shed_overload = 0
        self.workers_respawned = 0
        self.requests_resolved = 0
        #: request coalescing (off by default: the identity-preserving
        #: configuration; serving entry points turn it on)
        self.coalesce = coalesce
        self.coalesce_window_ms = coalesce_window_ms
        self.coalesce_max_batch = coalesce_max_batch
        #: batch-occupancy counters, mutated under ``_lock``
        self.batches_dispatched = 0
        self.batched_requests = 0
        self.batch_max = 0
        self.coalesce_windows = 0
        self.coalesce_window_hits = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "PredictionService":
        with self._lock:
            if self._running:
                return self
            self._running = True
            self._started_at = self._clock()
            self._stopped_at = None
            for i in range(self.workers):
                self._spawn_worker(i)
        return self

    def _spawn_worker(self, index: int) -> None:
        thread = threading.Thread(
            target=self._worker_main, name=f"predict-worker-{index}",
            daemon=True,
        )
        self._threads.append(thread)
        thread.start()

    def _maintain_workers(self) -> None:
        """Respawn dead workers -- the supervisor half of worker death.

        Called on every submit (and by :meth:`stop`), so a killed
        worker is replaced before the queue can back up behind the
        corpse.
        """
        with self._lock:
            if not self._running:
                return
            for i, thread in enumerate(self._threads):
                if not thread.is_alive():
                    self.workers_respawned += 1
                    replacement = threading.Thread(
                        target=self._worker_main,
                        name=f"{thread.name}-r{self.workers_respawned}",
                        daemon=True,
                    )
                    self._threads[i] = replacement
                    replacement.start()

    def stop(self, *, timeout_s: float = 10.0) -> None:
        """Stop workers and resolve anything still queued -- no hangs.

        Queued-but-unserved requests resolve with a typed
        ``ServiceOverloadedError`` response (the service is shedding
        its whole queue); worker threads get a stop sentinel each and
        are joined under ``timeout_s``.  Idempotent: a second (or
        concurrent) call, or a call on a never-started service, is a
        no-op -- signal handlers and context-manager exits may both
        reach here for the same shutdown.
        """
        with self._lock:
            if not self._running:
                return
            self._running = False
            self._stopped_at = self._clock()
        while True:
            try:
                item = self._queue.get_nowait()
            except Empty:
                break
            if item is _STOP:
                continue
            self._finish(item, self._error_response(
                item, ServiceOverloadedError(self.max_queue, self.max_queue),
                cause="shutdown", worker=None,
            ))
        for _ in self._threads:
            self._queue.put(_STOP)
        deadline = time.monotonic() + timeout_s
        for thread in self._threads:
            thread.join(max(0.0, deadline - time.monotonic()))
        self._threads.clear()

    def __enter__(self) -> "PredictionService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Tenancy
    # ------------------------------------------------------------------

    def register_tenant(
        self,
        name: str,
        points: np.ndarray,
        *,
        quota: TenantQuota | None = None,
        warm: bool = True,
        fit_seed: int = 0,
        **predictor_kwargs,
    ) -> dict:
        """Register (or replace) a tenant and optionally warm its model.

        ``predictor_kwargs`` flow into the tenant's own
        :class:`~repro.core.predictor.IndexCostPredictor` (fault rates,
        redundancy, checksums, ...), so per-tenant failure injection is
        first-class.  With ``warm=True`` the fitted model comes from
        the artifact store when one is configured -- a verified cached
        artifact loads instantly, a corrupt one is rebuilt and
        overwritten -- else it is fitted in process.  Returns the
        tenant's opening snapshot.
        """
        points = validate_points(points, name=f"tenant {name!r} points")
        predictor = IndexCostPredictor(
            dim=points.shape[1],
            memory=predictor_kwargs.pop("memory", self.memory),
            kernel=predictor_kwargs.pop("kernel", self.kernel),
            **predictor_kwargs,
        )
        ledger = TenantLedger(name, quota or self.default_quota)
        predictor.breaker = ledger.breaker
        tenant = _Tenant(
            name=name, points=points, predictor=predictor, ledger=ledger,
            fit_seed=fit_seed,
        )
        if warm:
            tenant.model = self._warm_model(tenant)
        with self._lock:
            self._tenants[name] = tenant
        return ledger.snapshot()

    def _warm_model(self, tenant: _Tenant) -> FittedModel:
        def fit() -> FittedModel:
            return fit_model(
                tenant.points,
                c_data=tenant.predictor.c_data,
                c_dir=tenant.predictor.c_dir,
                memory=tenant.predictor.memory,
                seed=tenant.fit_seed,
                config=tenant.predictor.config,
                kernel=tenant.predictor.kernel,
            )

        if self.store is None:
            return fit()
        return self.store.load_or_fit(tenant.name, fit)

    def tenant(self, name: str) -> _Tenant:
        try:
            return self._tenants[name]
        except KeyError:
            raise InputValidationError(
                f"unknown tenant {name!r}; registered: "
                f"{sorted(self._tenants)}"
            ) from None

    def tenants(self) -> list[str]:
        return sorted(self._tenants)

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self,
        tenant_name: str,
        workload: KNNWorkload | RangeWorkload,
        *,
        method: str = "warm",
        seed: int = 0,
        deadline_s: float | None = None,
        max_retries: int | None = None,
        backoff_s: float | None = None,
    ) -> PendingPrediction:
        """Admit one request; returns its future response.

        Admission is two typed gates in order: the tenant's own quota
        (:class:`~repro.errors.TenantQuotaExceededError`) and the
        shared bounded queue
        (:class:`~repro.errors.ServiceOverloadedError`).  Past both,
        the request *will* resolve -- that is the no-hang invariant.
        ``method`` is ``"warm"`` (count against the tenant's fitted
        model -- cheap, zero charged I/O) or one of the facade methods
        (``"resampled"`` / ``"cutoff"`` / ``"mini"`` -- charged,
        governed, degradable).  Deadline, retries, and backoff default
        to the tenant's quota.
        """
        if not self._running:
            raise InputValidationError(
                "service is not running; call start() first"
            )
        if method != "warm" and method not in _FULL_METHODS:
            raise InputValidationError(
                f"unknown method {method!r}; options: "
                f"{('warm',) + _FULL_METHODS}"
            )
        tenant = self.tenant(tenant_name)
        self._maintain_workers()
        quota = tenant.ledger.quota
        tenant.ledger.admit()
        pending = PendingPrediction(tenant_name, next(self._request_ids))
        item = _Item(
            tenant=tenant,
            workload=workload,
            pending=pending,
            method=method,
            seed=seed,
            deadline_s=deadline_s if deadline_s is not None
            else quota.deadline_s,
            max_retries=max_retries if max_retries is not None
            else quota.max_retries,
            backoff_s=backoff_s if backoff_s is not None
            else quota.backoff_s,
            submitted_at=self._clock(),
        )
        try:
            self._queue.put_nowait(item)
        except Full:
            tenant.ledger.release()
            with self._lock:
                self.shed_overload += 1
            raise ServiceOverloadedError(
                self.max_queue, self.max_queue
            ) from None
        return pending

    def request(
        self,
        tenant_name: str,
        workload: KNNWorkload | RangeWorkload,
        *,
        timeout: float | None = 60.0,
        **kwargs,
    ) -> ServiceResponse:
        """Submit and block for the response (the simple client path)."""
        return self.submit(tenant_name, workload, **kwargs).result(timeout)

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------

    def _worker_main(self) -> None:
        name = threading.current_thread().name
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            if self.coalesce:
                died = self._serve_claimed(self._claim_batch(item), name)
            else:
                died = self._serve_one(item, name)
            if died is not None:
                # The worker answered its request (and, when
                # coalescing, every other member it had claimed); now
                # it actually dies -- but first it spawns its own
                # replacement, so the pool never shrinks even when no
                # submit (the other respawn trigger) ever comes again.
                # A thread cannot see itself as dead via is_alive(),
                # hence the explicit hand-off rather than
                # _maintain_workers().
                self._respawn_self()
                return

    def _serve_one(self, item: "_Item", worker: str,
                   *, admitted: bool = False) -> WorkerDeath | None:
        """Serve one request end to end, always answering it.

        Returns the :class:`WorkerDeath` when the request killed this
        worker (the caller respawns), else ``None``.  ``admitted=True``
        skips the pre-request hook and queue-deadline check -- the
        coalesced path already ran them via :meth:`_admit_member`.
        """
        response: ServiceResponse | None = None
        died: WorkerDeath | None = None
        try:
            if admitted:
                queue_wait = item.started_at - item.submitted_at
                if item.method == "warm":
                    response = self._serve_warm(item, worker, queue_wait)
                else:
                    response = self._serve_full(item, worker, queue_wait)
            else:
                response = self._serve(item, worker=worker)
        except WorkerDeath as death:
            died = death
            response = self._error_response(
                item, death, cause="worker", worker=worker
            )
        except BaseException as error:  # noqa: BLE001 - typed response
            response = self._error_response(
                item, error, cause="internal", worker=worker
            )
        finally:
            if response is None:  # unreachable belt-and-braces
                response = self._error_response(
                    item, RuntimeError("worker produced no response"),
                    cause="internal", worker=worker,
                )
            self._finish(item, response)
        return died

    # ------------------------------------------------------------------
    # Coalescing
    # ------------------------------------------------------------------

    def _claim_batch(self, first: "_Item") -> "list[_Item]":
        """Drain more queued requests behind ``first``, bounded.

        The worker holds its first request and waits up to the coalesce
        window for additional queued work, claiming at most
        ``coalesce_max_batch`` items in arrival order.  Claiming is
        tenant-blind -- compatibility is decided later, per group, by
        :meth:`_serve_claimed` -- so one claim can carry many tenants'
        requests (the cross-tenant batch).  A stop sentinel ends the
        drain and is handed back so shutdown still reaches its worker.
        """
        claimed = [first]
        if self.coalesce_max_batch <= 1 or not self._running:
            return claimed
        deadline = time.monotonic() + self.coalesce_window_ms / 1_000.0
        while len(claimed) < self.coalesce_max_batch:
            timeout = deadline - time.monotonic()
            try:
                if timeout > 0:
                    extra = self._queue.get(timeout=timeout)
                else:
                    extra = self._queue.get_nowait()
            except Empty:
                break
            if extra is _STOP:
                try:
                    self._queue.put_nowait(_STOP)
                except Full:  # pragma: no cover - queue full of requests
                    threading.Thread(
                        target=self._queue.put, args=(_STOP,), daemon=True
                    ).start()
                break
            claimed.append(extra)
        with self._lock:
            self.coalesce_windows += 1
            if len(claimed) > 1:
                self.coalesce_window_hits += 1
        return claimed

    def _serve_claimed(self, claimed: "list[_Item]",
                       worker: str) -> WorkerDeath | None:
        """Serve a claimed batch: admit each member, fuse the compatible.

        Every member is admitted individually first (pre-request hook,
        queue-deadline check), so a member that errors here -- a chaos
        kill, an expired deadline -- is answered with its own typed
        response and *never poisons the batch*.  Survivors are grouped
        by compatibility (same tenant model, hence same geometry and
        kernel, and same workload shape); each group of two or more
        warm requests becomes one fused dispatch, everything else is
        served alone.  Each member is settled through :meth:`_finish`
        on its own tenant ledger, exactly as if served alone.
        """
        died: WorkerDeath | None = None
        admitted: list[_Item] = []
        for item in claimed:
            verdict: ServiceResponse | None = None
            try:
                verdict = self._admit_member(item, worker=worker)
            except WorkerDeath as death:
                died = death if died is None else died
                verdict = self._error_response(
                    item, death, cause="worker", worker=worker
                )
            except BaseException as error:  # noqa: BLE001 - typed response
                verdict = self._error_response(
                    item, error, cause="internal", worker=worker
                )
            if verdict is None:
                admitted.append(item)
            else:
                self._finish(item, verdict)
        groups: dict = {}
        order = []
        for item in admitted:
            if item.method == "warm":
                key = (item.tenant.name, type(item.workload))
            else:
                # full methods run the governed chain; never fused
                key = ("solo", id(item))
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(item)
        for key in order:
            group = groups[key]
            if group[0].method == "warm":
                with self._lock:
                    self.batches_dispatched += 1
                    self.batched_requests += len(group)
                    self.batch_max = max(self.batch_max, len(group))
            if len(group) > 1:
                self._serve_warm_fused(group, worker)
            else:
                solo_died = self._serve_one(group[0], worker, admitted=True)
                died = died if died is not None else solo_died
        return died

    def _serve_warm_fused(self, group: "list[_Item]", worker: str) -> None:
        """One fused kernel dispatch answering a whole compatible group.

        The answers and the charged-op attribution are split back per
        request: each member's response carries exactly its own slice
        (bit-identical to an uncoalesced serve) and settles its own
        tenant ledger via :meth:`_finish`.  If the fused dispatch
        itself fails, every member receives the typed error it would
        have gotten alone.
        """
        tenant = group[0].tenant
        try:
            if tenant.model is None:
                tenant.model = self._warm_model(tenant)
            results = tenant.model.predict_many(
                [item.workload for item in group]
            )
        except BaseException as error:  # noqa: BLE001 - typed response
            for item in group:
                self._finish(item, self._error_response(
                    item, error, cause="internal", worker=worker
                ))
            return
        now = self._clock()
        for item, result in zip(group, results):
            self._finish(item, ServiceResponse(
                tenant=tenant.name,
                request_id=item.pending.request_id,
                status="ok",
                result=result,
                method_requested="warm",
                method_used="warm",
                io_ops=result.io_cost.ops,
                latency_s=now - item.submitted_at,
                queue_wait_s=item.started_at - item.submitted_at,
                worker=worker,
            ))

    def _respawn_self(self) -> None:
        me = threading.current_thread()
        with self._lock:
            if not self._running:
                return
            self.workers_respawned += 1
            replacement = threading.Thread(
                target=self._worker_main,
                name=f"{me.name}-r{self.workers_respawned}",
                daemon=True,
            )
            for i, thread in enumerate(self._threads):
                if thread is me:
                    self._threads[i] = replacement
                    break
            else:
                self._threads.append(replacement)
            replacement.start()

    def _finish(self, item: _Item, response: ServiceResponse) -> None:
        item.tenant.ledger.settle(response.io_ops, response.status)
        item.pending._resolve(response)
        item.tenant.ledger.release()
        with self._lock:
            self.requests_resolved += 1

    def _error_response(
        self, item: _Item, error: BaseException, *, cause: str,
        worker: str | None,
    ) -> ServiceResponse:
        now = self._clock()
        return ServiceResponse(
            tenant=item.tenant.name,
            request_id=item.pending.request_id,
            status="error",
            method_requested=item.method,
            error=f"{type(error).__name__}: {error}",
            error_type=type(error).__name__,
            cause=cause,
            latency_s=now - item.submitted_at,
            queue_wait_s=(item.started_at or now) - item.submitted_at,
            worker=worker,
        )

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------

    def _admit_member(
        self, item: _Item, *, worker: str
    ) -> ServiceResponse | None:
        """Pre-serve admission: hook, then the queued-deadline check.

        Returns ``None`` when the request may proceed to serving, or
        the refusal response when its deadline already expired in the
        queue: the tenant asked for an answer by then, and burning I/O
        on a request nobody is waiting for anymore is pure waste.
        """
        item.started_at = self._clock()
        queue_wait = item.started_at - item.submitted_at
        if self._pre_request_hook is not None:
            self._pre_request_hook(item)
        if item.deadline_s is not None and queue_wait > item.deadline_s:
            error = DeadlineExceededError(
                queue_wait, item.deadline_s, phase="queue"
            )
            return self._error_response(
                item, error, cause="deadline", worker=worker
            )
        return None

    def _serve(self, item: _Item, *, worker: str) -> ServiceResponse:
        refused = self._admit_member(item, worker=worker)
        if refused is not None:
            return refused
        queue_wait = item.started_at - item.submitted_at
        if item.method == "warm":
            return self._serve_warm(item, worker, queue_wait)
        return self._serve_full(item, worker, queue_wait)

    def _serve_warm(
        self, item: _Item, worker: str, queue_wait: float
    ) -> ServiceResponse:
        tenant = item.tenant
        if tenant.model is None:
            tenant.model = self._warm_model(tenant)
        result = tenant.model.predict(item.workload)
        return ServiceResponse(
            tenant=tenant.name,
            request_id=item.pending.request_id,
            status="ok",
            result=result,
            method_requested="warm",
            method_used="warm",
            io_ops=result.io_cost.ops,
            latency_s=self._clock() - item.submitted_at,
            queue_wait_s=queue_wait,
            worker=worker,
        )

    def _serve_full(
        self, item: _Item, worker: str, queue_wait: float
    ) -> ServiceResponse:
        """One governed facade prediction with request-level retry.

        The request's I/O budget is capped by *its own tenant's*
        remaining lifetime allowance, so a single request can never
        overdraw its tenant (and by construction never touches another
        tenant's allowance).  Retries re-enter the whole governed chain
        with exponential backoff, but only while the deadline allows.
        """
        tenant = item.tenant
        retries = 0
        last_error: BaseException | None = None
        while True:
            remaining_s = None
            if item.deadline_s is not None:
                remaining_s = item.deadline_s - (
                    self._clock() - item.submitted_at
                )
                if remaining_s <= 0:
                    break
            remaining_ops = tenant.ledger.remaining_ops()
            budget = None
            if remaining_ops is not None or remaining_s is not None:
                budget = Budget(
                    max_io_ops=remaining_ops, max_seconds=remaining_s
                )
            try:
                result = tenant.predictor.predict(
                    tenant.points, item.workload, method=item.method,
                    seed=item.seed, budget=budget, degrade=True,
                )
            except ReproError as error:
                last_error = error
                if retries >= item.max_retries:
                    break
                retries += 1
                if item.backoff_s:
                    self._sleeper(item.backoff_s * (2 ** (retries - 1)))
                continue
            record = result.detail.get("degradation")
            degraded = (
                record is not None
                and record.get("method_used") != item.method
            )
            cause = None
            attempts = []
            if record is not None:
                attempts = list(record.get("attempts", ()))
                if attempts:
                    cause = attempts[-1].get("cause")
            return ServiceResponse(
                tenant=tenant.name,
                request_id=item.pending.request_id,
                status="degraded" if degraded else "ok",
                result=result,
                method_requested=item.method,
                method_used=(record or {}).get("method_used", item.method),
                cause=cause,
                attempts=attempts,
                retries=retries,
                io_ops=result.io_cost.ops,
                latency_s=self._clock() - item.submitted_at,
                queue_wait_s=queue_wait,
                worker=worker,
            )
        if last_error is None:
            last_error = DeadlineExceededError(
                self._clock() - item.submitted_at, item.deadline_s,
                phase="retry",
            )
        cause = ("deadline"
                 if isinstance(last_error, DeadlineExceededError)
                 else "fault")
        response = self._error_response(
            item, last_error, cause=cause, worker=worker
        )
        response.retries = retries
        response.queue_wait_s = queue_wait
        return response

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def metrics(self) -> dict:
        """One *consistent* snapshot of the whole service's books.

        Every service-level counter is read in a single critical
        section under the service lock -- workers mutate them under the
        same lock, so the returned numbers describe one moment, never a
        mid-update mix (``requests_resolved`` from before a settle,
        ``shed_overload`` from after).  ``uptime_s`` is monotonic time
        since :meth:`start` (frozen at :meth:`stop`, ``0.0`` before the
        first start), and ``worker_liveness`` maps each worker thread's
        name to whether it is currently alive -- the cluster health
        probe keys off both.
        """
        with self._lock:
            tenants = {
                name: tenant.ledger.snapshot()
                for name, tenant in self._tenants.items()
            }
            liveness = {t.name: t.is_alive() for t in self._threads}
            if self._started_at is None:
                uptime = 0.0
            else:
                end = (self._stopped_at if self._stopped_at is not None
                       else self._clock())
                uptime = max(0.0, end - self._started_at)
            return {
                "running": self._running,
                "uptime_s": uptime,
                "workers": self.workers,
                "workers_alive": sum(liveness.values()),
                "worker_liveness": liveness,
                "workers_respawned": self.workers_respawned,
                "queue_depth": self._queue.qsize(),
                "max_queue": self.max_queue,
                "shed_overload": self.shed_overload,
                "requests_resolved": self.requests_resolved,
                "artifact_rebuilds": (self.store.rebuilds()
                                      if self.store else 0),
                "batching": {
                    "enabled": self.coalesce,
                    "window_ms": self.coalesce_window_ms,
                    "max_batch": self.coalesce_max_batch,
                    "batches_dispatched": self.batches_dispatched,
                    "batched_requests": self.batched_requests,
                    "mean_batch_size": (
                        self.batched_requests / self.batches_dispatched
                        if self.batches_dispatched else 0.0
                    ),
                    "max_batch_size": self.batch_max,
                    "window_hit_rate": (
                        self.coalesce_window_hits / self.coalesce_windows
                        if self.coalesce_windows else 0.0
                    ),
                },
                "tenants": tenants,
            }
