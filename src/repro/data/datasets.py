"""Synthetic analogues of the paper's experimental datasets (Table 1).

The originals (color histograms from a commercial CD-ROM, Corel and
Landsat texture features, ISOLET speech features, stock price series)
are not redistributable; each analogue below matches the original's
cardinality and dimensionality and reproduces the *properties the cost
model is sensitive to* -- clustering, variance concentration after
KLT/DFT, and the N << d regime of the two very-high-dimensional sets.
See DESIGN.md Section 4 for the substitution rationale.

All loaders are deterministic for a given ``seed`` and accept a
``scale`` in ``(0, 1]`` that shrinks the cardinality proportionally
(benchmarks use reduced scales to keep wall-clock time sane; the paper's
full sizes are the defaults).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from . import generators, transforms

__all__ = ["DatasetSpec", "DATASETS", "load", "color64", "texture48", "texture60", "isolet617", "stock360"]


@dataclass(frozen=True)
class DatasetSpec:
    """Cardinality/dimensionality of one Table 1 dataset and its builder."""

    name: str
    n_points: int
    dim: int
    description: str
    build: Callable[[int, int, np.random.Generator], np.ndarray]

    def generate(self, *, scale: float = 1.0, seed: int = 0) -> np.ndarray:
        """The analogue point matrix, ``round(scale * n_points)`` rows."""
        if not 0 < scale <= 1:
            raise ValueError("scale must be in (0, 1]")
        n = max(2, math.ceil(self.n_points * scale))
        rng = np.random.default_rng(seed)
        points = self.build(n, self.dim, rng)
        if points.shape != (n, self.dim):
            raise AssertionError(
                f"builder for {self.name} returned {points.shape}, expected {(n, self.dim)}"
            )
        return points


def _clustered_klt(n_clusters: int, cluster_std: float) -> Callable:
    def build(n: int, dim: int, rng: np.random.Generator) -> np.ndarray:
        raw = generators.gaussian_mixture(
            n, dim, rng, n_clusters=n_clusters, cluster_std=cluster_std
        )
        return transforms.klt(raw)

    return build


def _isolet_like(n: int, dim: int, rng: np.random.Generator) -> np.ndarray:
    # 52 letter classes, tight within-class spread, N << d regime.
    raw = generators.gaussian_mixture(
        n,
        dim,
        rng,
        n_clusters=52,
        cluster_std=0.03,
        weights=np.full(52, 1.0 / 52),
    )
    return transforms.klt(raw)


def _stock_like(n: int, dim: int, rng: np.random.Generator) -> np.ndarray:
    series = generators.random_walk_series(n, dim, rng)
    return transforms.dft_features(series)


COLOR64 = DatasetSpec(
    name="COLOR64",
    n_points=112_361,
    dim=64,
    description="color-histogram analogue: 40-cluster KLT-rotated mixture",
    build=_clustered_klt(n_clusters=40, cluster_std=0.04),
)

TEXTURE48 = DatasetSpec(
    name="TEXTURE48",
    n_points=26_697,
    dim=48,
    description="Corel texture analogue: 30-cluster KLT-rotated mixture",
    build=_clustered_klt(n_clusters=30, cluster_std=0.05),
)

TEXTURE60 = DatasetSpec(
    name="TEXTURE60",
    n_points=275_465,
    dim=60,
    description="Landsat texture analogue: 35-cluster KLT-rotated mixture",
    build=_clustered_klt(n_clusters=35, cluster_std=0.05),
)

ISOLET617 = DatasetSpec(
    name="ISOLET617",
    n_points=7_800,
    dim=617,
    description="spoken-letter analogue: 52 equal classes, N << d",
    build=_isolet_like,
)

STOCK360 = DatasetSpec(
    name="STOCK360",
    n_points=6_500,
    dim=360,
    description="stock-series analogue: random walks, DFT-transformed",
    build=_stock_like,
)

DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec for spec in (COLOR64, TEXTURE48, TEXTURE60, ISOLET617, STOCK360)
}


def load(name: str, *, scale: float = 1.0, seed: int = 0) -> np.ndarray:
    """Generate the named analogue (see :data:`DATASETS` for names)."""
    try:
        spec = DATASETS[name.upper()]
    except KeyError:
        raise KeyError(f"unknown dataset {name!r}; options: {sorted(DATASETS)}") from None
    return spec.generate(scale=scale, seed=seed)


def color64(*, scale: float = 1.0, seed: int = 0) -> np.ndarray:
    return COLOR64.generate(scale=scale, seed=seed)


def texture48(*, scale: float = 1.0, seed: int = 0) -> np.ndarray:
    return TEXTURE48.generate(scale=scale, seed=seed)


def texture60(*, scale: float = 1.0, seed: int = 0) -> np.ndarray:
    return TEXTURE60.generate(scale=scale, seed=seed)


def isolet617(*, scale: float = 1.0, seed: int = 0) -> np.ndarray:
    return ISOLET617.generate(scale=scale, seed=seed)


def stock360(*, scale: float = 1.0, seed: int = 0) -> np.ndarray:
    return STOCK360.generate(scale=scale, seed=seed)
