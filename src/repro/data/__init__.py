"""Datasets: generators, transforms, and the paper's analogues."""

from . import datasets, generators, transforms
from .datasets import DATASETS, DatasetSpec, load

__all__ = ["datasets", "generators", "transforms", "DATASETS", "DatasetSpec", "load"]
