"""Synthetic point-cloud generators.

The paper's datasets are real feature-vector collections whose defining
properties -- for the purposes of index cost prediction -- are (a) high
embedding dimensionality, (b) strong clustering, and (c) low intrinsic
dimensionality after a KLT/DFT transform.  These generators produce
seeded synthetic clouds with exactly those properties; the named
analogues in :mod:`repro.data.datasets` are built on top of them.

Every generator takes a ``numpy.random.Generator`` so callers control
determinism end to end.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "uniform",
    "gaussian_mixture",
    "hierarchical_clusters",
    "embedded_manifold",
    "random_walk_series",
]


def uniform(n: int, dim: int, rng: np.random.Generator) -> np.ndarray:
    """``n`` points uniform in the unit hypercube ``[0, 1]^dim``."""
    _check(n, dim)
    return rng.random((n, dim))


def gaussian_mixture(
    n: int,
    dim: int,
    rng: np.random.Generator,
    *,
    n_clusters: int = 20,
    cluster_std: float = 0.05,
    std_spread: float = 0.5,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """A clustered cloud: Gaussian blobs with random centers in [0, 1]^dim.

    ``cluster_std`` is the typical per-axis standard deviation; each
    cluster's actual std is jittered by up to ``std_spread`` (relative)
    so clusters differ in tightness, as real feature data does.
    ``weights`` (optional, normalized internally) skews cluster sizes.
    """
    _check(n, dim)
    if n_clusters < 1:
        raise ValueError("n_clusters must be >= 1")
    if weights is None:
        # Heavier-tailed sizes than equal shares: real clusters are skewed.
        weights = rng.dirichlet(np.full(n_clusters, 0.7))
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (n_clusters,) or np.any(weights < 0) or weights.sum() == 0:
            raise ValueError("weights must be n_clusters non-negative values")
        weights = weights / weights.sum()
    centers = rng.random((n_clusters, dim))
    stds = cluster_std * (1.0 + std_spread * (rng.random(n_clusters) - 0.5) * 2.0)
    assignment = rng.choice(n_clusters, size=n, p=weights)
    points = centers[assignment] + rng.standard_normal((n, dim)) * stds[assignment, None]
    return points


def hierarchical_clusters(
    n: int,
    dim: int,
    rng: np.random.Generator,
    *,
    branching: tuple[int, ...] = (8, 6, 4),
    scale_ratio: float = 0.12,
    leaf_std: float = 0.004,
) -> np.ndarray:
    """Self-similar clustered data: clusters of clusters of clusters.

    Real feature datasets (color histograms, texture vectors) are not
    flat mixtures -- they cluster at *every* scale, which is why the
    paper measures near-zero fractal dimensions on them (Section 5.3:
    ``D0 = 0.094`` for TEXTURE60).  This generator reproduces that
    regime: level ``l`` places ``branching[l]`` sub-centers around each
    center, offset by a Gaussian of scale ``scale_ratio ** l``
    (relative to the unit cube), with points jittered by ``leaf_std``
    around their finest-level center.  Cluster sizes are skewed by a
    Dirichlet draw, as in :func:`gaussian_mixture`.
    """
    _check(n, dim)
    if not branching or any(b < 1 for b in branching):
        raise ValueError("branching must be a non-empty tuple of positive ints")
    if not 0 < scale_ratio < 1:
        raise ValueError("scale_ratio must be in (0, 1)")
    centers = rng.random((1, dim))
    spread = 0.25
    for branches in branching:
        spread *= scale_ratio
        offsets = rng.standard_normal((centers.shape[0], branches, dim)) * spread
        centers = (centers[:, None, :] + offsets).reshape(-1, dim)
    weights = rng.dirichlet(np.full(centers.shape[0], 0.5))
    assignment = rng.choice(centers.shape[0], size=n, p=weights)
    return centers[assignment] + rng.standard_normal((n, dim)) * leaf_std


def embedded_manifold(
    n: int,
    dim: int,
    rng: np.random.Generator,
    *,
    intrinsic_dim: int = 5,
    noise: float = 0.01,
) -> np.ndarray:
    """Points on a random ``intrinsic_dim``-flat in ``dim`` dimensions.

    Models the low-intrinsic-dimensionality regime where fractal
    estimates collapse toward the intrinsic dimension; ``noise`` adds
    isotropic full-dimensional jitter.
    """
    _check(n, dim)
    if not 1 <= intrinsic_dim <= dim:
        raise ValueError("intrinsic_dim must be in [1, dim]")
    basis, _ = np.linalg.qr(rng.standard_normal((dim, intrinsic_dim)))
    latent = rng.random((n, intrinsic_dim)) - 0.5
    points = latent @ basis.T + 0.5
    if noise > 0:
        points = points + rng.standard_normal((n, dim)) * noise
    return points


def random_walk_series(
    n: int,
    length: int,
    rng: np.random.Generator,
    *,
    drift_std: float = 0.05,
    step_std: float = 0.02,
) -> np.ndarray:
    """``n`` random-walk price series of the given ``length``.

    A synthetic stand-in for the STOCK360 dataset: each series is a
    geometric-free additive random walk with a per-series drift, giving
    DFT energy concentrated in the low frequencies (the property that
    makes the transformed dataset low-intrinsic-dimensional).
    """
    _check(n, length)
    drifts = rng.standard_normal(n)[:, None] * drift_std
    steps = rng.standard_normal((n, length)) * step_std + drifts / length
    return np.cumsum(steps, axis=1)


def _check(n: int, dim: int) -> None:
    if n < 1 or dim < 1:
        raise ValueError(f"need n >= 1 and dim >= 1, got n={n}, dim={dim}")
