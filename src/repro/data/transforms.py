"""Feature transforms applied to the paper's datasets.

All of the paper's dense-feature datasets are stored *transformed*:
COLOR64/TEXTURE48/TEXTURE60 via the Karhunen-Loeve transform (KLT, i.e.
a PCA rotation onto decorrelated axes sorted by decreasing variance)
and STOCK360 via the discrete Fourier transform.  The transforms matter
for reproduction because they concentrate variance in a few leading
dimensions -- which is what makes maximum-variance splitting effective
and what drives Figure 14's dimension-prefix experiment.
"""

from __future__ import annotations

import numpy as np

__all__ = ["klt", "dft_features"]


def klt(points: np.ndarray, *, center: bool = True) -> np.ndarray:
    """Karhunen-Loeve transform: rotate onto variance-sorted principal axes.

    Returns the transformed points; column ``j`` has the ``j``-th
    largest variance.  The rotation is orthonormal, so all Euclidean
    distances -- and hence k-NN results and sphere intersections -- are
    preserved exactly.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] < 2:
        raise ValueError("klt needs an (n >= 2, d) point matrix")
    data = points - points.mean(axis=0) if center else points
    covariance = np.cov(data, rowvar=False)
    covariance = np.atleast_2d(covariance)
    eigenvalues, eigenvectors = np.linalg.eigh(covariance)
    order = np.argsort(eigenvalues)[::-1]
    return data @ eigenvectors[:, order]


def dft_features(series: np.ndarray) -> np.ndarray:
    """DFT feature vectors of real-valued series, energy-compacted.

    Maps each length-``L`` series to ``L`` real features: interleaved
    real/imaginary parts of the one-sided DFT, ordered from low to high
    frequency (DC first).  Parseval's identity makes this an isometry up
    to a constant factor, so neighborhood structure is preserved while
    the energy concentrates in the leading coordinates.
    """
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 2:
        raise ValueError("series must be (n, length)")
    n, length = series.shape
    spectrum = np.fft.rfft(series, axis=1) / np.sqrt(length)
    # One-sided spectrum: double the shared bins so the map is an isometry.
    scale = np.full(spectrum.shape[1], np.sqrt(2.0))
    scale[0] = 1.0
    if length % 2 == 0:
        scale[-1] = 1.0
    spectrum = spectrum * scale
    features = np.empty((n, 2 * spectrum.shape[1]))
    features[:, 0::2] = spectrum.real
    features[:, 1::2] = spectrum.imag
    # Drop always-zero imaginary parts (DC and, for even length, Nyquist)
    # so the output has exactly ``length`` informative coordinates.
    keep = np.ones(features.shape[1], dtype=bool)
    keep[1] = False
    if length % 2 == 0:
        keep[-1] = False
    return features[:, keep]
