"""External bulk loading of the on-disk index, with charged I/O.

This is the comparison baseline of Section 4.1: the same top-down
recursion as the in-memory loader, but operating on a paged file.  A
region that fits in memory (``<= M`` points) is read once, its whole
subtree is built in memory, and the reordered points are written back
once.  Larger regions are divided by *external quickselect* (Hoare's
find on disk): each pass streams the active subregion through memory,
three-way-partitions it around a sampled pivot, writes it back, and
recurses into the side containing the target rank.  The split dimension
is the maximum-variance dimension, computed in one additional streaming
pass.

Because pass counts depend on the real pivot behavior on the real data,
the measured build cost lands well above the best-case analytical
formula (Eq. 1) -- the paper observes the same 5-10x gap on real data
(Section 4.1).

The result keeps the physical layout: every leaf's points occupy a
contiguous range of the file, so query measurement can charge the exact
pages of each accessed leaf.

Crash consistency: a build killed at an arbitrary charged operation
(:class:`~repro.errors.CrashPoint`) can be *resumed* instead of
restarted.  Pass a :class:`BuildLog` -- a durable log of completed
build units (external partition passes and in-memory region builds) --
and re-invoke :meth:`OnDiskBuilder.build` with the same log after
recovery: logged units are skipped wholesale (their effects are already
on disk), the interrupted unit is redone idempotently, and the
remaining units run as usual.  Region write-backs go through
``file.write_range_atomic``, so with a journal attached a crash
mid-write-back is replayed or rolled back by ``journal.recover()``
before the resume.  The resumed result is bit-identical to the
fault-free build (same leaf point sets, hence the same MBRs and the
same query leaf accesses) as long as point coordinates are distinct per
split dimension -- re-partitioning a partially partitioned range can
permute ties.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.topology import Topology, split_child_counts, subtree_capacity
from ..disk.accounting import IOCost
from ..disk.pagefile import PointFile
from ..rtree.bulkload import BulkLoadConfig, build_subtree
from ..rtree.node import InternalNode, LeafNode, Node
from ..rtree.tree import RTree

__all__ = ["BuildLog", "OnDiskIndex", "OnDiskBuilder"]

_PIVOT_SAMPLE = 1024


class BuildLog:
    """Durable log of completed build units, enabling crash resume.

    Each completed unit appends one record -- a single-page charged
    write to a dedicated log page, atomic by construction (torn writes
    need two pages).  The record payload (the unit key, and for region
    units the serialized subtree layout) is held in process memory, as
    all simulated-disk payloads are; the charged write is what makes
    the record's durability *cost* honest.

    The charge lands before the in-memory record is added, so a crash
    during the log write simply redoes the unit on resume -- every
    unit is idempotent.
    """

    def __init__(self, disk):
        self.disk = disk
        self.start_page = disk.allocate(1)
        self._done: dict[tuple, Node | None] = {}

    def __contains__(self, key: tuple) -> bool:
        return key in self._done

    def __len__(self) -> int:
        return len(self._done)

    def node(self, key: tuple) -> Node | None:
        """The subtree recorded for a completed region unit."""
        return self._done[key]

    def record(self, key: tuple, node: Node | None = None) -> None:
        self.disk.drop_head()
        self.disk.write(self.start_page, 1)
        self._done[key] = node


@dataclass
class OnDiskIndex:
    """A built on-disk index: the queryable tree, its file, build cost."""

    tree: RTree
    file: PointFile
    build_cost: IOCost

    def __post_init__(self) -> None:
        self._leaf_pages: dict[int, tuple[int, int]] | None = None

    def leaf_page_span(self, leaf: LeafNode) -> tuple[int, int]:
        """(first absolute page, page count) of a leaf's data pages.

        Index data pages are *leaf-aligned*: every leaf starts its own
        page (pages are left partially empty at ``C_eff < C_max``),
        exactly as the real index stores them -- which is why the
        paper's query I/O shows a seek-to-transfer ratio near 1.
        """
        if leaf.n_points == 0:
            raise ValueError("empty leaf has no pages")
        if self._leaf_pages is None:
            table: dict[int, tuple[int, int]] = {}
            page = self.file.start_page
            per_page = self.file.points_per_page
            for node in self.tree.leaves:
                pages = max(1, math.ceil(node.n_points / per_page))
                table[id(node)] = (page, pages)
                page += pages
            self._leaf_pages = table
        return self._leaf_pages[id(leaf)]


class OnDiskBuilder:
    """Bulk loads an index on a :class:`PointFile` under memory ``M``."""

    def __init__(
        self,
        c_data: int,
        c_dir: int,
        memory: int,
        *,
        config: BulkLoadConfig | None = None,
        pivot_seed: int = 0,
    ):
        if memory < c_data:
            raise ValueError(
                f"memory M={memory} must hold at least one data page (C={c_data})"
            )
        self.c_data = c_data
        self.c_dir = c_dir
        self.memory = memory
        self.config = config or BulkLoadConfig()
        self._pivot_rng = np.random.default_rng(pivot_seed)

    def build(self, file: PointFile, *, log: BuildLog | None = None) -> OnDiskIndex:
        """Build the index over the file's points, reordering them.

        With a :class:`BuildLog`, completed units found in the log are
        skipped (no I/O, the stored subtree is reused), making the call
        a crash *resume*: after ``journal.recover()`` and a fault-layer
        reboot, re-invoking ``build`` with the same log finishes the
        interrupted build.  ``build_cost`` then covers only the resumed
        portion.
        """
        if file.n_points < 1:
            raise ValueError("cannot index an empty file")
        start_cost = file.disk.cost
        topology = Topology(file.n_points, self.c_data, self.c_dir)
        root = self._build_region(
            file, 0, file.n_points, topology.height, topology, log
        )
        file.disk.drop_head()
        build_cost = file.disk.cost - start_cost
        tree = RTree(file.peek(0, file.n_points).copy(), root, topology)
        return OnDiskIndex(tree=tree, file=file, build_cost=build_cost)

    # ------------------------------------------------------------------

    def _build_region(
        self,
        file: PointFile,
        start: int,
        stop: int,
        level: int,
        topology: Topology,
        log: BuildLog | None,
    ) -> Node:
        n = stop - start
        if n <= self.memory:
            return self._build_in_memory(file, start, stop, level, topology, log)
        if level == 1:
            raise AssertionError("a leaf region cannot exceed memory")
        children: list[Node] = []
        for child_start, child_stop in self._external_divide(
            file, start, stop, level, topology, log
        ):
            children.append(
                self._build_region(
                    file, child_start, child_stop, level - 1, topology, log
                )
            )
        mbr = None
        for child in children:
            if child.mbr is not None:
                mbr = child.mbr if mbr is None else mbr.union(child.mbr)
        return InternalNode(children=children, mbr=mbr, level=level, n_points=n)

    def _build_in_memory(
        self,
        file: PointFile,
        start: int,
        stop: int,
        level: int,
        topology: Topology,
        log: BuildLog | None,
    ) -> Node:
        """Read a memory-sized region, build its subtree, write it back.

        The write-back is atomic when the file has a journal: a crash
        between "subtree decided" and "reorder durable" is repaired by
        ``journal.recover()``, never leaving a half-reordered region.
        """
        key = ("region", start, stop, level)
        if log is not None and key in log:
            node = log.node(key)
            assert node is not None
            return node
        points = file.read_range(start, stop)
        n = stop - start
        local_root = build_subtree(
            points, np.arange(n, dtype=np.int64), level, n, topology, self.config
        )
        reordered = np.empty_like(points)
        global_root, cursor = self._materialize(
            local_root, points, reordered, start, start
        )
        assert cursor == stop
        file.write_range_atomic(start, reordered)
        if log is not None:
            log.record(key, global_root)
        return global_root

    def _materialize(
        self,
        node: Node,
        points: np.ndarray,
        reordered: np.ndarray,
        region_start: int,
        cursor: int,
    ) -> tuple[Node, int]:
        """Renumber a local subtree to global, physically ordered ids."""
        if node.is_leaf:
            count = node.n_points
            offset = cursor - region_start
            reordered[offset : offset + count] = points[node.point_ids]
            ids = np.arange(cursor, cursor + count, dtype=np.int64)
            return (
                LeafNode(point_ids=ids, mbr=node.mbr, level=node.level,
                         virtual_n=node.virtual_n),
                cursor + count,
            )
        children: list[Node] = []
        for child in node.children:
            new_child, cursor = self._materialize(
                child, points, reordered, region_start, cursor
            )
            children.append(new_child)
        return (
            InternalNode(children=children, mbr=node.mbr, level=node.level,
                         n_points=node.n_points),
            cursor,
        )

    # ------------------------------------------------------------------

    def _external_divide(
        self,
        file: PointFile,
        start: int,
        stop: int,
        level: int,
        topology: Topology,
        log: BuildLog | None,
    ) -> list[tuple[int, int]]:
        """Divide a region into its children's subranges on disk.

        The division schedule -- which (subrange, rank) pairs get
        partitioned, in which order -- is a pure function of the region
        shape, so unit keys are stable across a crash and resume: a
        logged partition is skipped together with its variance scan.
        """
        child_cap = subtree_capacity(level - 1, self.c_data, self.c_dir)
        n = stop - start
        fanout = max(1, math.ceil(n / child_cap))
        parts: list[tuple[int, int]] = []
        pending = [(start, stop, fanout)]
        while pending:
            p_start, p_stop, p_fanout = pending.pop()
            if p_fanout == 1:
                parts.append((p_start, p_stop))
                continue
            n_left, _ = split_child_counts(p_stop - p_start, p_fanout, child_cap)
            rank = p_start + n_left
            key = ("part", p_start, p_stop, rank)
            if log is None or key not in log:
                dim = self._external_variance_dim(file, p_start, p_stop)
                self._external_partition(file, p_start, p_stop, rank, dim)
                if log is not None:
                    log.record(key)
            f_left = p_fanout // 2
            pending.append((rank, p_stop, p_fanout - f_left))
            pending.append((p_start, rank, f_left))
        return parts

    def _external_variance_dim(self, file: PointFile, start: int, stop: int) -> int:
        """Max-variance dimension of a region via one streaming pass."""
        self._charge(file, start, stop)  # read pass
        region = file.peek(start, stop)
        return self.config.dimension_rule(region)

    def _external_partition(
        self, file: PointFile, start: int, stop: int, rank: int, dim: int
    ) -> None:
        """External quickselect: partition the region at ``rank``.

        Each pass over the active subregion is charged as one sequential
        read plus one sequential write; the recursion narrows to the side
        containing ``rank`` until it fits in memory.
        """
        lo, hi = start, stop
        while rank > lo and rank < hi:
            n = hi - lo
            if n <= self.memory:
                # Final in-memory selection: read, select, write back.
                self._charge(file, lo, hi)
                block = file.peek(lo, hi).copy()
                order = np.argpartition(block[:, dim], rank - lo - 1)
                file.place(lo, block[order])
                self._charge(file, lo, hi)
                return
            coords = file.peek(lo, hi)[:, dim]
            pivot = self._choose_pivot(coords)
            less = coords < pivot
            equal = coords == pivot
            n_less = int(np.count_nonzero(less))
            n_equal = int(np.count_nonzero(equal))
            if n_equal == n:
                return  # all keys identical: any cut is a valid partition
            # One partitioning pass: stream through memory, write back
            # in three runs (less | equal | greater).
            self._charge(file, lo, hi)  # read pass
            block = file.peek(lo, hi).copy()
            file.place(lo, block[less])
            file.place(lo + n_less, block[equal])
            file.place(lo + n_less + n_equal, block[~(less | equal)])
            self._charge(file, lo, hi)  # write pass
            if rank <= lo + n_less:
                hi = lo + n_less
            elif rank <= lo + n_less + n_equal:
                return  # rank falls inside the equal run: done
            else:
                lo = lo + n_less + n_equal

    def _choose_pivot(self, coords: np.ndarray) -> float:
        sample_size = min(_PIVOT_SAMPLE, coords.shape[0])
        sample = self._pivot_rng.choice(coords, size=sample_size, replace=False)
        return float(np.median(sample))

    def _charge(self, file: PointFile, start: int, stop: int) -> IOCost:
        first, count = file.page_span(start, stop)
        file.disk.drop_head()
        return file.disk.access(first, count)
