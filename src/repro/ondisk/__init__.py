"""The on-disk index: external bulk loading and measured query cost."""

from .builder import OnDiskBuilder, OnDiskIndex
from .measure import MeasurementResult, measure_knn, sphere_accesses

__all__ = [
    "OnDiskBuilder",
    "OnDiskIndex",
    "MeasurementResult",
    "measure_knn",
    "sphere_accesses",
]
