"""Measured query cost on the on-disk index -- the ground truth.

The paper's reference numbers come from actually running the k-NN
queries on the bulk-loaded on-disk index and counting leaf-page
accesses plus the disk operations they cause.  ``measure_knn`` performs
the optimal best-first search per query and charges each visited leaf's
data pages to the simulated disk (leaf visits in search order are
almost never adjacent, which is why the paper observes a seek-to-
transfer ratio near 1 for queries).

``sphere_accesses`` is the cheap equivalent for benchmarks that only
need access *counts*: an optimal k-NN search reads exactly the leaves
whose MBR intersects the final k-NN sphere, a property the test suite
verifies against the real search.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..disk.accounting import IOCost
from ..workload.queries import KNNWorkload
from .builder import OnDiskIndex

__all__ = ["MeasurementResult", "measure_knn", "sphere_accesses"]


@dataclass(frozen=True)
class MeasurementResult:
    """Measured per-query leaf accesses and the I/O they cost."""

    per_query: np.ndarray
    io_cost: IOCost

    @property
    def mean_accesses(self) -> float:
        return float(np.mean(self.per_query))


def measure_knn(index: OnDiskIndex, workload: KNNWorkload) -> MeasurementResult:
    """Run the workload's k-NN queries on disk, charging leaf reads."""
    disk = index.file.disk
    start_cost = disk.cost
    per_query = np.zeros(workload.n_queries, dtype=np.int64)
    for i, query in enumerate(workload.queries):
        result = index.tree.knn(query, workload.k, collect_leaves=True)
        per_query[i] = result.leaf_accesses
        assert result.accessed_leaves is not None
        for leaf in result.accessed_leaves:
            first, count = index.leaf_page_span(leaf)
            disk.read(first, count)
        disk.drop_head()
    return MeasurementResult(per_query=per_query, io_cost=disk.cost - start_cost)


def sphere_accesses(
    index: OnDiskIndex, workload: KNNWorkload, *, kernel: str | None = None
) -> np.ndarray:
    """Per-query leaf accesses via sphere intersection (no I/O charged)."""
    return index.tree.leaf_accesses_for_radius(
        workload.queries, workload.radii, kernel=kernel
    )
