"""Command-line interface: ``python -m repro <command>``.

Thin wrappers over the library for the workflows the paper motivates:

``predict``        estimate leaf accesses for a workload without
                   building the index (mini / cutoff / resampled)
``measure``        build the on-disk index on the simulated disk and
                   run the workload for real (the ground truth)
``compare``        the Table 4 shoot-out: uniform vs. fractal vs.
                   resampled vs. measured
``tune-pagesize``  the Section 6.1 application: sweep page sizes
``costs``          evaluate the analytical Eqs. 1-5 for a dataset shape
``scrub``          sweep the dataset file for at-rest corruption,
                   repairing from replicas/parity where provisioned
``serve``          run a bounded multi-tenant serving session against
                   the threaded prediction service (warm artifacts,
                   quotas, backpressure) and print the per-tenant books
``loadtest``       hammer the service with closed-loop clients and
                   report sustained throughput and p50/p95/p99 latency
                   (writes ``BENCH_service.json`` with ``--output``;
                   with ``--replicas N`` the routed cluster is measured
                   against an equal-worker single service instead)
``cluster``        build a sharded, replicated prediction cluster
                   (similarity partition, per-shard page-size tuning,
                   failure-aware routing), walk it through a kill /
                   failover / heal cycle, or run the seeded chaos storm
                   with ``--chaos``

Data comes from a named synthetic analogue (``--dataset TEXTURE60
--scale 0.1``) or any ``.npy`` file holding an ``(n, d)`` float matrix
(``--input features.npy``).
"""

from __future__ import annotations

import argparse
import signal
import sys
import textwrap
from typing import Sequence

import numpy as np

from .apps.pagesize import sweep_page_sizes
from .cluster import (
    ClusterChaosScenario,
    PredictionCluster,
    assert_cluster_invariant,
    run_cluster_chaos,
    run_cluster_loadtest,
)
from .baselines.fractal import FractalCostModel, FractalEstimationError
from .baselines.uniform_model import UniformCostModel
from .core.costmodel import AnalyticalCostModel
from .core.predictor import IndexCostPredictor
from .data import datasets
from .errors import (
    EXIT_CODES,
    ArtifactCorruptError,
    BudgetExceededError,
    ChecksumError,
    CrashPoint,
    DeadlineExceededError,
    DiskError,
    InputValidationError,
    PredictionError,
    ReplicaUnavailableError,
    ReproError,
    ServiceOverloadedError,
    StaleRoutingEpochError,
    TenantQuotaExceededError,
    TornWriteError,
    TransientReadError,
    UnknownKernelError,
    UnrecoverableCorruptionError,
    exit_code_for,
)
from .experiments.tables import format_signed_percent, format_table
from .kernels.registry import KERNEL_ENV_VAR, available_kernels
from .runtime.budget import Budget
from .service import PredictionService, TenantQuota, run_loadtest
from .workload.queries import density_biased_knn_workload

__all__ = ["main"]

# Exit codes live with the error hierarchy (``errors.EXIT_CODES``) so
# a new error class cannot ship without deciding its code; the CLI
# renders the table into the --help epilog and resolves raised errors
# through ``errors.exit_code_for``.  Codes 0/2/130 are process-level
# outcomes with no exception class, so they are appended here.
_STATIC_EXIT_CODES: tuple[tuple[int, str], ...] = (
    (0, "success"),
    (2, "argument error (argparse)"),
    (130, "interrupted: SIGINT/SIGTERM during a serving session; "
          "queued requests were drained with typed shutdown responses "
          "before exit"),
)


def _render_exit_code_help() -> str:
    entries = {code: desc for _, code, desc in EXIT_CODES}
    entries.update(dict(_STATIC_EXIT_CODES))
    lines = ["exit codes:"]
    for code in sorted(entries):
        wrapped = textwrap.wrap(entries[code], width=64)
        lines.append(f"  {code:<3} {wrapped[0]}")
        lines.extend(f"      {cont}" for cont in wrapped[1:])
    return "\n".join(lines) + "\n"


_EXIT_CODE_HELP = _render_exit_code_help()


def _exit_code(error: ReproError) -> int:
    return exit_code_for(error)


def _version() -> str:
    """The installed distribution's version, or the source tree's."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # noqa: BLE001 - not installed: fall back to source
        from . import __version__

        return __version__


def _add_data_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group()
    source.add_argument(
        "--dataset", default="TEXTURE60",
        help=f"synthetic analogue name ({', '.join(sorted(datasets.DATASETS))})",
    )
    source.add_argument("--input", help="path to an (n, d) .npy file")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="analogue scale in (0, 1] (default 0.05)")
    parser.add_argument("--seed", type=int, default=0)


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--queries", type=int, default=100,
                        help="number of density-biased queries")
    parser.add_argument("--k", type=int, default=21, help="k for k-NN")
    parser.add_argument("--memory", type=int, default=2_000,
                        help="memory budget M in points")
    parser.add_argument("--fault-rate", type=float, default=0.0,
                        dest="fault_rate",
                        help="transient read fault rate in [0, 1] injected "
                             "on the simulated disk (default 0: no faults)")
    parser.add_argument("--fault-seed", type=int, default=0,
                        dest="fault_seed",
                        help="seed of the deterministic fault injector")
    parser.add_argument("--corruption-rate", type=float, default=0.0,
                        dest="corruption_rate",
                        help="silent in-transit bit-flip rate in [0, 1] "
                             "(default 0; pair with --verify-checksums)")
    parser.add_argument("--verify-checksums", action="store_true",
                        dest="verify_checksums",
                        help="verify per-page CRC32 checksums on every "
                             "charged read (catches silent corruption as "
                             "a retryable error)")
    parser.add_argument("--crash-at", type=int, default=None,
                        dest="crash_at",
                        help="simulate a crash before the N-th charged "
                             "disk operation (1-based; the process exits "
                             "with code 10)")
    parser.add_argument("--at-rest-rate", type=float, default=0.0,
                        dest="at_rest_rate",
                        help="at-rest bit-rot rate in [0, 1]: pages decay "
                             "persistently on the platter (default 0; "
                             "pair with --replication-factor/--parity "
                             "so repair-on-read can heal them)")
    parser.add_argument("--replication-factor", type=int, default=1,
                        dest="replication_factor",
                        help="copies kept of every page, primary included "
                             "(default 1: no replicas); extra copies feed "
                             "repair-on-read and are billed separately")
    parser.add_argument("--parity", action="store_true",
                        help="keep XOR parity stripes as a single-failure "
                             "fallback (cheaper than a full replica)")
    parser.add_argument("--scrub", action="store_true",
                        help="sweep the file for rot after a successful "
                             "prediction and print the scrub report")
    parser.add_argument("--kernel", default=None,
                        help="counting kernel backend "
                             f"({', '.join(available_kernels())}; default "
                             f"from ${KERNEL_ENV_VAR}, then numba if "
                             "installed, else numpy_batched); all kernels "
                             "count identically, this only changes speed")


def _load_points(args: argparse.Namespace) -> np.ndarray:
    if args.input:
        points = np.load(args.input)
        if points.ndim != 2:
            raise SystemExit(f"{args.input}: expected an (n, d) array, "
                             f"got shape {points.shape}")
        return np.asarray(points, dtype=np.float64)
    return datasets.load(args.dataset, scale=args.scale, seed=args.seed)


def _context(args: argparse.Namespace):
    points = _load_points(args)
    predictor = IndexCostPredictor(
        dim=points.shape[1], memory=args.memory,
        fault_rate=getattr(args, "fault_rate", 0.0),
        fault_seed=getattr(args, "fault_seed", 0),
        silent_corruption_rate=getattr(args, "corruption_rate", 0.0),
        at_rest_corruption_rate=getattr(args, "at_rest_rate", 0.0),
        replication_factor=getattr(args, "replication_factor", 1),
        parity=getattr(args, "parity", False),
        scrub=getattr(args, "scrub", False),
        verify_checksums=getattr(args, "verify_checksums", False),
        crash_at=getattr(args, "crash_at", None),
        kernel=getattr(args, "kernel", None),
    )
    workload = predictor.make_workload(points, args.queries, args.k,
                                       seed=args.seed)
    return points, predictor, workload


def _cmd_predict(args: argparse.Namespace) -> int:
    points, predictor, workload = _context(args)
    budget = None
    if args.max_io_ops is not None or args.deadline_s is not None:
        budget = Budget(max_io_ops=args.max_io_ops,
                        max_seconds=args.deadline_s)
    result = predictor.predict(
        points, workload, method=args.method, h_upper=args.h_upper,
        sampling_fraction=args.fraction, seed=args.seed,
        budget=budget, hedge=args.hedge,
        degrade=not args.strict_budget,
    )
    print(f"dataset: {points.shape[0]:,} x {points.shape[1]}-d, "
          f"C_data={predictor.c_data}, C_dir={predictor.c_dir}")
    print(f"method: {args.method}  detail: {result.detail}")
    print(f"predicted leaf accesses per query: {result.mean_accesses:.2f}")
    print(f"prediction I/O: {result.io_cost.seeks:,} seeks, "
          f"{result.io_cost.transfers:,} transfers "
          f"({result.io_cost.seconds():.3f} s)")
    degradation = result.detail.get("degradation")
    if degradation:
        print(f"resilience: method used {degradation['method_used']!r} "
              f"(requested {degradation['method_requested']!r}), "
              f"{degradation['faults_seen']} faults seen, "
              f"{degradation['retries']} retries charged")
    spend = result.detail.get("budget")
    if spend:
        print(f"budget: {spend['spent_io_ops']} charged ops"
              + (f" of {spend['max_io_ops']}"
                 if spend['max_io_ops'] is not None else "")
              + f", {spend['elapsed_s']:.3f} s elapsed"
              + (f" of {spend['max_seconds']:g}"
                 if spend['max_seconds'] is not None else "")
              + f"; within budget: {spend['within_budget']}")
    hedge = result.detail.get("hedge")
    if hedge:
        print(f"hedge: {hedge['winner']} path answered in "
              f"{hedge['elapsed_s']:.3f} s (primary completed: "
              f"{hedge['primary_completed']}, hedge completed: "
              f"{hedge['hedge_completed']})")
    redundancy = result.detail.get("redundancy")
    if redundancy:
        print(f"redundancy: {redundancy['replication_factor']}-way"
              + (" + parity" if redundancy["parity"] else "")
              + f", {redundancy['repairs']} page"
              + ("s" if redundancy["repairs"] != 1 else "")
              + f" repaired on read; upkeep "
              + f"{redundancy['redundancy_seeks']:,} seeks, "
              + f"{redundancy['redundancy_transfers']:,} transfers")
    scrub = result.detail.get("scrub")
    if scrub:
        print(_format_scrub(scrub))
    return 0


def _format_scrub(report: dict) -> str:
    line = (f"scrub: {report['pages_scanned']}/{report['pages_total']} "
            f"pages scanned, {report['repaired']} repaired, "
            f"{report['copies_repaired']} redundant cop"
            f"{'y' if report['copies_repaired'] == 1 else 'ies'} rewritten")
    if report["unrecoverable"]:
        line += (f"; UNRECOVERABLE pages: "
                 f"{', '.join(map(str, report['unrecoverable']))}")
    if not report["completed"]:
        line += " (stopped early: budget exhausted)"
    return line


def _cmd_measure(args: argparse.Namespace) -> int:
    points, predictor, workload = _context(args)
    index = predictor.build_ondisk(points)
    measurement = predictor.measure(points, workload, index=index)
    total = index.build_cost + measurement.io_cost
    print(f"dataset: {points.shape[0]:,} x {points.shape[1]}-d; tree height "
          f"{index.tree.height}, {index.tree.n_leaves:,} leaves")
    print(f"measured leaf accesses per query: {measurement.mean_accesses:.2f}")
    print(f"build I/O: {index.build_cost.seconds():.3f} s; query I/O: "
          f"{measurement.io_cost.seconds():.3f} s; total {total.seconds():.3f} s")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    points, predictor, workload = _context(args)
    topology = predictor.topology(points.shape[0])
    measurement = predictor.measure(points, workload)
    measured = measurement.mean_accesses

    rows = []
    uniform = UniformCostModel(
        points.shape[0], points.shape[1], topology.c_eff_data
    ).predict_knn_accesses(workload.k)
    rows.append(["uniform", f"{uniform:.1f}",
                 format_signed_percent((uniform - measured) / measured)])
    try:
        fractal = FractalCostModel.from_points(
            points, topology.c_eff_data, np.random.default_rng(args.seed)
        ).predict_knn_accesses(workload.k)
        rows.append(["fractal", f"{fractal:.1f}",
                     format_signed_percent((fractal - measured) / measured)])
    except FractalEstimationError as error:
        rows.append(["fractal", "n/a", str(error)])
    resampled = predictor.predict(points, workload, method="resampled",
                                  seed=args.seed)
    rows.append(["resampled", f"{resampled.mean_accesses:.1f}",
                 format_signed_percent(resampled.relative_error(measured))])
    rows.append(["measured", f"{measured:.1f}", "0%"])
    print(format_table(["model", "pages", "rel. error"], rows))
    return 0


def _cmd_tune_pagesize(args: argparse.Namespace) -> int:
    points, _, workload = _context(args)
    sweep = sweep_page_sizes(
        points, workload, memory=args.memory, measure=args.verify,
        seed=args.seed, kernel=getattr(args, "kernel", None),
    )
    rows = []
    for p in sweep.points:
        row = [f"{p.page_bytes // 1024} KB", f"{p.predicted_accesses:.1f}",
               f"{p.predicted_seconds * 1000:.1f} ms"]
        if args.verify:
            row.extend([f"{p.measured_accesses:.1f}",
                        f"{p.measured_seconds * 1000:.1f} ms"])
        rows.append(row)
    headers = ["page", "pred accesses", "pred cost"]
    if args.verify:
        headers.extend(["meas accesses", "meas cost"])
    print(format_table(headers, rows))
    optimum = sweep.predicted_optimum
    if optimum is not None:
        print(f"predicted optimum: {optimum.page_bytes // 1024} KB")
    if args.verify and sweep.measured_optimum is not None:
        print(f"measured optimum:  "
              f"{sweep.measured_optimum.page_bytes // 1024} KB")
    return 0


def _cmd_scrub(args: argparse.Namespace) -> int:
    points = _load_points(args)
    predictor = IndexCostPredictor(
        dim=points.shape[1], memory=args.memory,
        fault_rate=args.fault_rate,
        fault_seed=args.fault_seed,
        silent_corruption_rate=args.corruption_rate,
        at_rest_corruption_rate=args.at_rest_rate,
        replication_factor=args.replication_factor,
        parity=args.parity,
        scrub=True,
        crash_at=args.crash_at,
        kernel=getattr(args, "kernel", None),
    )
    file = predictor.new_file(points)
    report = file.scrub()
    print(f"dataset: {points.shape[0]:,} x {points.shape[1]}-d on "
          f"{file.n_pages:,} pages")
    print(_format_scrub(report.as_dict()))
    print(f"scrub I/O: {report.io_cost.seeks:,} seeks, "
          f"{report.io_cost.transfers:,} transfers; redundancy upkeep: "
          f"{report.redundancy_cost.seeks:,} seeks, "
          f"{report.redundancy_cost.transfers:,} transfers")
    if report.unrecoverable and args.strict:
        print(f"repro: {len(report.unrecoverable)} page"
              f"{'s' if len(report.unrecoverable) != 1 else ''} "
              f"unrecoverable under --strict", file=sys.stderr)
        return 13
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    quota = TenantQuota(
        max_inflight=args.max_inflight,
        max_io_ops=args.max_io_ops,
        deadline_s=args.deadline_s,
        max_retries=args.retries,
    )
    service = PredictionService(
        workers=args.workers, max_queue=args.max_queue,
        memory=args.memory, default_quota=quota,
        artifact_dir=args.artifact_dir,
        kernel=getattr(args, "kernel", None),
        coalesce=args.coalesce,
        coalesce_window_ms=args.coalesce_window_ms,
    )
    rng = np.random.default_rng(args.seed)
    workloads = {}
    served = refused = shed = drained = 0
    interrupted = False

    def _interrupt(signum, frame):  # noqa: ARG001 - signal signature
        raise KeyboardInterrupt

    previous_term = signal.getsignal(signal.SIGTERM)
    signal.signal(signal.SIGTERM, _interrupt)
    futures = []
    try:
        points = _load_points(args)
        for i in range(args.tenants):
            name = f"tenant-{i}"
            # each tenant serves its own resample of the dataset, so
            # the session exercises distinct artifacts and geometry
            subset = points[rng.choice(points.shape[0],
                                       size=min(points.shape[0], 2_000),
                                       replace=False)]
            service.register_tenant(
                name, subset,
                fault_rate=getattr(args, "fault_rate", 0.0),
                fault_seed=getattr(args, "fault_seed", 0),
            )
            workloads[name] = service.tenant(name).predictor.make_workload(
                subset, args.queries, args.k, seed=args.seed + i
            )
        with service:
            for round_i in range(args.requests):
                for name, workload in workloads.items():
                    try:
                        futures.append(service.submit(
                            name, workload, method=args.method,
                            seed=round_i,
                        ))
                    except TenantQuotaExceededError:
                        refused += 1
                    except ServiceOverloadedError:
                        shed += 1
            for future in futures:
                future.result(timeout=120.0)
                served += 1
    except KeyboardInterrupt:
        # Graceful drain instead of a raw traceback: stop() settles
        # every queued request with a typed shutdown response, so every
        # admitted future still resolves and the books still balance.
        interrupted = True
        service.stop()
    finally:
        signal.signal(signal.SIGTERM, previous_term)
    if interrupted:
        served = 0
        for future in futures:
            response = future.result(timeout=120.0)
            if response.status == "error" and response.cause == "shutdown":
                drained += 1
            else:
                served += 1
    rows = []
    for name in sorted(workloads):
        snap = service.tenant(name).ledger.snapshot()
        rows.append([
            name, str(snap["submitted"]), str(snap["completed"]),
            str(snap["degraded"]), str(snap["errors"]),
            str(snap["refused_quota"]), str(snap["charged_ops"]),
            snap["breaker_state"],
        ])
    print(format_table(
        ["tenant", "admitted", "ok", "degraded", "errors", "refused",
         "charged ops", "breaker"],
        rows,
        title=f"serving session: {args.tenants} tenants x {args.requests} "
              f"requests ({args.method}), {args.workers} workers, "
              f"queue {args.max_queue}",
    ))
    metrics = service.metrics()
    print(f"resolved {served} responses; admission refused {refused}, "
          f"shed {shed}; workers respawned "
          f"{metrics['workers_respawned']}, artifact rebuilds "
          f"{metrics['artifact_rebuilds']}")
    if interrupted:
        print(f"interrupted: graceful stop drained {drained} queued "
              f"request{'s' if drained != 1 else ''} with typed shutdown "
              f"responses", file=sys.stderr)
        return 130
    return 0


def _cmd_loadtest(args: argparse.Namespace) -> int:
    if args.replicas:
        return _cmd_cluster_loadtest(args)
    result = run_loadtest(
        n_tenants=args.tenants, workers=args.workers,
        duration_s=args.duration, max_queue=args.max_queue,
        memory=args.memory, method=args.method, seed=args.seed,
        max_inflight=args.max_inflight,
        artifact_dir=args.artifact_dir,
        coalesce=args.coalesce,
        coalesce_window_ms=args.coalesce_window_ms,
        burst=args.burst,
    )
    payload = result.as_dict()
    rows = [
        ["throughput", f"{payload['throughput_rps']:,} req/s"],
        ["p50 latency", f"{payload['latency_ms']['p50']:.3f} ms"],
        ["p95 latency", f"{payload['latency_ms']['p95']:.3f} ms"],
        ["p99 latency", f"{payload['latency_ms']['p99']:.3f} ms"],
        ["resolved", f"{payload['resolved']:,} "
                     f"({payload['ok']:,} ok, {payload['degraded']:,} "
                     f"degraded, {payload['errors']:,} errors)"],
        ["shed / refused", f"{payload['shed_overload']:,} / "
                           f"{payload['refused_quota']:,}"],
    ]
    batching = payload["batching"]
    if batching.get("enabled"):
        rows.extend([
            ["batches", f"{batching['batches_dispatched']:,} "
                        f"({batching['batched_requests']:,} requests)"],
            ["batch size", f"mean {batching['mean_batch_size']:.2f}, "
                           f"max {batching['max_batch_size']}"],
            ["window hit rate", f"{batching['window_hit_rate']:.2f}"],
        ])
    print(format_table(
        ["metric", "value"], rows,
        title=f"load test: {args.tenants} tenants, {args.workers} workers, "
              f"{args.duration:g} s, method {args.method}",
    ))
    if args.output:
        import json

        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    return 0


def _cmd_cluster_loadtest(args: argparse.Namespace) -> int:
    """``loadtest --replicas N``: routed cluster vs equal-worker single."""
    import tempfile

    with tempfile.TemporaryDirectory() as fallback:
        result = run_cluster_loadtest(
            artifact_root=args.artifact_dir or fallback,
            n_shards=args.shards,
            n_replicas=args.replicas,
            replication=min(args.replication, args.replicas),
            workers_per_replica=args.workers,
            duration_s=args.duration,
            memory=args.memory,
            seed=args.seed,
        )
    payload = result.as_dict()
    routed, single = payload["cluster"], payload["single"]
    rows = [
        ["routed throughput", f"{routed['throughput_rps']:,} req/s"],
        ["single throughput", f"{single['throughput_rps']:,} req/s"],
        ["routed p50 / p99", f"{routed['latency_ms']['p50']:.3f} / "
                             f"{routed['latency_ms']['p99']:.3f} ms"],
        ["failover p99", f"{routed['failover_latency_ms']['p99']:.3f} ms"],
        ["resolved", f"{routed['resolved']:,} ({routed['ok']:,} ok, "
                     f"{routed['failover']:,} failover, "
                     f"{routed['degraded']:,} degraded, "
                     f"{routed['errors']:,} errors)"],
    ]
    print(format_table(
        ["metric", "value"], rows,
        title=f"cluster load test: {args.shards} shards x "
              f"{args.replicas} replicas (replication "
              f"{min(args.replication, args.replicas)}), "
              f"{args.workers} workers each, {args.duration:g} s, "
              f"primary killed and restarted mid-window",
    ))
    if args.output:
        import json

        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import json
    import tempfile

    if args.chaos:
        if args.controller:
            scenario = ClusterChaosScenario(
                seed=args.seed, double_kill=args.double_kill,
                scale_events=args.scale_events,
                n_shards=max(args.shards, 3), controller=True,
                # the storm's kill/restart schedule assumes the merge
                # fires within the first third of the rounds
                controller_dwell=min(args.dwell_epochs, 3),
                merge_when=2.5,
            )
        else:
            scenario = ClusterChaosScenario(
                seed=args.seed, double_kill=args.double_kill,
                scale_events=args.scale_events,
            )
        with tempfile.TemporaryDirectory() as root:
            outcome = run_cluster_chaos(scenario, artifact_root=root)
        print(json.dumps(outcome.summary(), indent=2, sort_keys=True))
        try:
            assert_cluster_invariant(outcome)
        except AssertionError as failure:
            print(f"repro: cluster invariant violated: {failure}",
                  file=sys.stderr)
            return 1
        print("cluster invariant holds")
        return 0

    points = _load_points(args)
    rng = np.random.default_rng(args.seed)
    tuning = density_biased_knn_workload(
        points, max(16, 4 * args.shards), args.k, rng
    )
    with tempfile.TemporaryDirectory() as fallback:
        root = args.artifact_dir or fallback
        with PredictionCluster(
            points, tuning, artifact_root=root,
            n_shards=args.shards, n_replicas=args.replicas,
            replication=min(args.replication, args.replicas),
            memory=args.memory, seed=args.seed,
            kernel=getattr(args, "kernel", None),
            split_when=args.split_when, merge_when=args.merge_when,
        ) as cluster:
            table = cluster.router.table.as_dict()
            rows = []
            for shard in range(cluster.n_shards):
                config = cluster.shard_configs[shard]
                rows.append([
                    str(shard),
                    f"{cluster.shard_points[shard].shape[0]:,}",
                    f"{config.page_bytes // 1024} KB",
                    ", ".join(table["owners"][shard]),
                ])
            print(format_table(
                ["shard", "points", "tuned page", "owners (cheapest first)"],
                rows,
                title=f"cluster: {args.shards} shards on "
                      f"{args.replicas} replicas, routing table "
                      f"v{table['version']}",
            ))
            workload = cluster.make_workload(args.queries, args.k,
                                             seed=args.seed)
            healthy = cluster.predict(workload)
            print(f"healthy: {healthy.per_query.size} queries, mean "
                  f"predicted accesses {healthy.mean_accesses:.2f}")

            primary0 = cluster.router.table.owners_of(0)[0]
            cluster.kill_replica(primary0)
            killed = cluster.predict(workload)
            shard0 = next(r for r in killed.responses if r.shard == 0)
            identical = np.array_equal(killed.per_query,
                                       healthy.per_query)
            print(f"killed {primary0}: shard 0 served by "
                  f"{shard0.served_by or shard0.method_used} "
                  f"(status {shard0.status}, tried {shard0.tried}); "
                  f"answers bit-identical: {identical}")
            cluster.restart_replica(primary0)

            cluster.corrupt_artifact(primary0, 0)
            heal = cluster.anti_entropy()
            print(f"corrupted {primary0}'s shard-0 artifact; "
                  f"anti-entropy healed {heal[0]['healed']}, "
                  f"data rebuild: {heal[0]['rebuilt']}")
            recovered = cluster.predict(workload)
            print(f"recovered: answers bit-identical: "
                  f"{np.array_equal(recovered.per_query, healthy.per_query)}")

            # --- elasticity walkthrough -------------------------------
            scaled: list[str] = []
            if args.scale_out:
                pre_epoch = cluster.router.table.epoch
                for _ in range(args.scale_out):
                    report = cluster.add_replica()
                    scaled.append(report["replica"])
                    vias = {w["shard"]: w["via"] for w in report["warmed"]}
                    print(f"scaled out {report['replica']} under epoch "
                          f"{report['epoch']}: warmed {vias} "
                          f"({report['refits']} refits)")
                probe_shard = cluster.active_shards()[0]
                probe = density_biased_knn_workload(
                    cluster.shard_points[probe_shard], 4, args.k, rng
                )
                try:
                    cluster.request(probe_shard, probe, epoch=pre_epoch)
                    print("stale-epoch pin was NOT refused (bug)")
                except StaleRoutingEpochError as stale:
                    print(f"stale router refused with exit-19 class: "
                          f"{stale}")
                post_scale = cluster.predict(workload)
                print(f"post-scale answers bit-identical: "
                      f"{np.array_equal(post_scale.per_query, healthy.per_query)}")
            candidates = cluster.topology.split_candidates()
            print(f"split candidates at ratio {args.split_when:g}: "
                  f"{candidates or 'none'}")
            if candidates:
                try:
                    children = cluster.split_shard(candidates[0]["shard"])
                except PredictionError as refused:
                    # a sliver refusal is the split validating itself,
                    # not a walkthrough failure -- topology unchanged
                    print(f"split refused (topology unchanged): {refused}")
                else:
                    print(f"split shard {candidates[0]['shard']} -> "
                          f"{list(children)} under epoch "
                          f"{cluster.router.table.epoch}")
                    post_split = cluster.predict(workload)
                    print(f"post-split merged prediction complete: "
                          f"{post_split.complete}")
            if args.controller:
                # deterministic ticks (no background thread): show the
                # hysteresis gauntlet working the current proposals
                controller = cluster.start_controller(
                    autostart=False, dwell_epochs=args.dwell_epochs,
                )
                for _ in range(args.dwell_epochs + 2):
                    record = controller.tick()
                    detail = {k: v for k, v in record.items()
                              if k in ("pair", "shard", "successors",
                                       "ratio", "error")}
                    print(f"controller tick {record['tick']}: "
                          f"{record['action']}"
                          f"{f' {detail}' if detail else ''}")
                report = controller.report()
                print(f"controller: {dict(report['counters'])}, "
                      f"flaps {report['flaps']} (zero proves the "
                      f"no-flap rule held), active shards "
                      f"{cluster.active_shards()}")
            if args.scale_in:
                if not scaled:
                    print("--scale-in: nothing was scaled out; skipping")
                for name in reversed(scaled):
                    report = cluster.remove_replica(name)
                    print(f"scaled in {name} under epoch "
                          f"{report['epoch']}: drained and folded "
                          f"retired ops {report['retired_ops']}")
            router = cluster.router.metrics()
            print(f"router: {router['dispatches']} dispatches, "
                  f"{router['failovers']} failovers, "
                  f"{router['hedges']} hedges, "
                  f"{router['degraded_served']} degraded, "
                  f"{router['unavailable']} unavailable")
    return 0


def _cmd_costs(args: argparse.Namespace) -> int:
    model = AnalyticalCostModel(n_queries=args.queries)
    ondisk = model.ondisk(args.n, args.dim, args.memory)
    resampled = model.resampled(args.n, args.dim, args.memory)
    cutoff = model.cutoff(args.n, args.dim, args.memory)
    rows = [
        ["on-disk build (Eq. 1)", f"{ondisk.seeks:,}",
         f"{ondisk.transfers:,}", f"{model.seconds(ondisk):,.1f} s"],
        ["resampled (Eq. 5)", f"{resampled.seeks:,}",
         f"{resampled.transfers:,}", f"{model.seconds(resampled):,.1f} s"],
        ["cutoff (Eq. 3)", f"{cutoff.seeks:,}",
         f"{cutoff.transfers:,}", f"{model.seconds(cutoff):,.1f} s"],
    ]
    print(format_table(["approach", "seeks", "transfers", "cost"], rows,
                       title=f"analytical I/O for N={args.n:,}, d={args.dim}, "
                             f"M={args.memory:,}"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sampling-based index cost prediction "
                    "(Lang & Singh, SIGMOD 2001)",
        epilog=_EXIT_CODE_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {_version()}")
    commands = parser.add_subparsers(dest="command", required=True)

    predict = commands.add_parser("predict", help="predict leaf accesses")
    _add_data_arguments(predict)
    _add_workload_arguments(predict)
    predict.add_argument("--method", default="resampled",
                         choices=("mini", "cutoff", "resampled"))
    predict.add_argument("--h-upper", type=int, default=None, dest="h_upper")
    predict.add_argument("--fraction", type=float, default=None,
                         help="sampling fraction for --method mini")
    predict.add_argument("--max-io-ops", type=int, default=None,
                         dest="max_io_ops",
                         help="charged I/O op budget (seeks + transfers) "
                              "across all fallback attempts; exhaustion "
                              "degrades to cheaper methods")
    predict.add_argument("--deadline-s", type=float, default=None,
                         dest="deadline_s",
                         help="wall-clock deadline in seconds (monotonic "
                              "clock); exceeded deadlines degrade to "
                              "cheaper methods")
    predict.add_argument("--hedge", action="store_true",
                         help="race the prediction against a cheap "
                              "concurrent estimate and serve whichever "
                              "lands inside --deadline-s (requires it)")
    predict.add_argument("--strict-budget", action="store_true",
                         dest="strict_budget",
                         help="exit with code 11/12 on budget/deadline "
                              "exhaustion instead of degrading (disables "
                              "fault degradation too)")
    predict.set_defaults(run=_cmd_predict)

    measure = commands.add_parser("measure", help="measured ground truth")
    _add_data_arguments(measure)
    _add_workload_arguments(measure)
    measure.set_defaults(run=_cmd_measure)

    compare = commands.add_parser("compare", help="baseline shoot-out")
    _add_data_arguments(compare)
    _add_workload_arguments(compare)
    compare.set_defaults(run=_cmd_compare)

    tune = commands.add_parser("tune-pagesize", help="optimal page size")
    _add_data_arguments(tune)
    _add_workload_arguments(tune)
    tune.add_argument("--verify", action="store_true",
                      help="also measure with fully built indexes")
    tune.set_defaults(run=_cmd_tune_pagesize)

    scrub = commands.add_parser(
        "scrub", help="sweep the dataset file for at-rest corruption"
    )
    _add_data_arguments(scrub)
    _add_workload_arguments(scrub)
    scrub.add_argument("--strict", action="store_true",
                       help="exit with code 13 if any page is "
                            "unrecoverable (no clean copy survives)")
    scrub.set_defaults(run=_cmd_scrub)

    serve = commands.add_parser(
        "serve", help="bounded multi-tenant serving session"
    )
    _add_data_arguments(serve)
    _add_workload_arguments(serve)
    serve.add_argument("--tenants", type=int, default=4,
                       help="tenants to register (default 4)")
    serve.add_argument("--requests", type=int, default=8,
                       help="requests submitted per tenant (default 8)")
    serve.add_argument("--workers", type=int, default=4,
                       help="worker threads (default 4)")
    serve.add_argument("--max-queue", type=int, default=32,
                       dest="max_queue",
                       help="bounded request queue size (default 32)")
    serve.add_argument("--max-inflight", type=int, default=8,
                       dest="max_inflight",
                       help="per-tenant in-flight request cap (default 8)")
    serve.add_argument("--max-io-ops", type=int, default=None,
                       dest="max_io_ops",
                       help="per-tenant lifetime charged-op allowance "
                            "(default unmetered)")
    serve.add_argument("--deadline-s", type=float, default=None,
                       dest="deadline_s",
                       help="per-request deadline in seconds")
    serve.add_argument("--retries", type=int, default=0,
                       help="request-level retries on retryable faults")
    serve.add_argument("--method", default="warm",
                       choices=("warm", "mini", "cutoff", "resampled"),
                       help="prediction method requests ask for "
                            "(default warm: the amortized fast path)")
    serve.add_argument("--coalesce", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="coalesce compatible queued warm requests into "
                            "fused kernel batches (default on for serving; "
                            "responses are bit-identical either way)")
    serve.add_argument("--coalesce-window-ms", type=float, default=2.0,
                       dest="coalesce_window_ms",
                       help="how long a worker lingers on the queue to grow "
                            "a batch once it holds a request (default 2.0)")
    serve.add_argument("--artifact-dir", default=None, dest="artifact_dir",
                       help="directory for checksummed warm-start "
                            "artifacts (persist/reuse across sessions)")
    serve.set_defaults(run=_cmd_serve)

    loadtest = commands.add_parser(
        "loadtest", help="sustained-throughput / tail-latency measurement"
    )
    loadtest.add_argument("--tenants", type=int, default=8,
                          help="closed-loop client tenants (default 8)")
    loadtest.add_argument("--workers", type=int, default=4,
                          help="worker threads (default 4)")
    loadtest.add_argument("--duration", type=float, default=2.0,
                          help="measurement window in seconds (default 2)")
    loadtest.add_argument("--max-queue", type=int, default=64,
                          dest="max_queue",
                          help="bounded request queue size (default 64)")
    loadtest.add_argument("--max-inflight", type=int, default=8,
                          dest="max_inflight",
                          help="per-tenant in-flight cap (default 8)")
    loadtest.add_argument("--memory", type=int, default=300,
                          help="fitting memory budget M in points")
    loadtest.add_argument("--method", default="warm",
                          choices=("warm", "mini", "cutoff", "resampled"))
    loadtest.add_argument("--seed", type=int, default=0)
    loadtest.add_argument("--coalesce", action=argparse.BooleanOptionalAction,
                          default=False,
                          help="coalesce compatible queued warm requests "
                               "into fused kernel batches (default off so "
                               "the measurement matches the committed "
                               "baseline; responses are bit-identical "
                               "either way)")
    loadtest.add_argument("--coalesce-window-ms", type=float, default=2.0,
                          dest="coalesce_window_ms",
                          help="how long a worker lingers on the queue to "
                               "grow a batch once it holds a request "
                               "(default 2.0)")
    loadtest.add_argument("--burst", type=int, default=1,
                          help="pipelined submissions per client iteration "
                               "(clamped to --max-inflight); >1 creates "
                               "queue depth for the coalescer to find "
                               "(default 1)")
    loadtest.add_argument("--artifact-dir", default=None,
                          dest="artifact_dir",
                          help="warm-start artifact directory")
    loadtest.add_argument("--output", default=None,
                          help="write the result as JSON "
                               "(e.g. BENCH_service.json)")
    loadtest.add_argument("--replicas", type=int, default=0,
                          help="measure a routed cluster of N replicas "
                               "against an equal-worker single service "
                               "instead (--workers then counts per "
                               "replica; a mid-window kill/restart of "
                               "shard 0's primary populates the "
                               "failover percentiles)")
    loadtest.add_argument("--shards", type=int, default=2,
                          help="similarity shards with --replicas "
                               "(default 2)")
    loadtest.add_argument("--replication", type=int, default=2,
                          help="owners per shard with --replicas "
                               "(default 2)")
    loadtest.set_defaults(run=_cmd_loadtest)

    cluster = commands.add_parser(
        "cluster",
        help="sharded replicated serving: kill/failover/heal walkthrough "
             "or the seeded chaos storm (--chaos)",
    )
    _add_data_arguments(cluster)
    cluster.add_argument("--queries", type=int, default=24,
                         help="demo workload size (default 24)")
    cluster.add_argument("--k", type=int, default=5, help="k for k-NN")
    cluster.add_argument("--memory", type=int, default=500,
                         help="per-replica memory budget M in points")
    cluster.add_argument("--shards", type=int, default=2,
                         help="similarity shards (default 2)")
    cluster.add_argument("--replicas", type=int, default=3,
                         help="replica processes (default 3)")
    cluster.add_argument("--replication", type=int, default=2,
                         help="owners per shard (default 2): each extra "
                              "owner is a bit-identical failover target")
    cluster.add_argument("--kernel", default=None,
                         help="counting kernel backend")
    cluster.add_argument("--artifact-dir", default=None,
                         dest="artifact_dir",
                         help="root directory for per-replica warm-start "
                              "artifacts (default: a temporary directory)")
    cluster.add_argument("--chaos", action="store_true",
                         help="run the seeded replica storm (kills, "
                              "restarts, corruption, slow and faulty "
                              "replicas, stale routing) and check the "
                              "cluster invariant; non-zero exit on "
                              "violation")
    cluster.add_argument("--double-kill", action="store_true",
                         dest="double_kill",
                         help="with --chaos: also kill shard 0's last "
                              "owner for a window, forcing the "
                              "explicitly-degraded closed-form path")
    cluster.add_argument("--scale-events", action="store_true",
                         dest="scale_events",
                         help="with --chaos: drive the topology axis "
                              "too (mid-storm scale-out with a corrupt "
                              "donor, kill during handoff, shard split, "
                              "stale-epoch probes, graceful scale-in)")
    cluster.add_argument("--scale-out", type=int, default=0,
                         dest="scale_out", metavar="N",
                         help="walkthrough: scale out N extra replicas "
                              "mid-demo, warmed from peer bytes behind "
                              "the epoch fence")
    cluster.add_argument("--scale-in", action="store_true",
                         dest="scale_in",
                         help="walkthrough: gracefully remove the "
                              "scaled-out replicas again (drain, fold "
                              "books, fence)")
    cluster.add_argument("--split-when", type=float, default=3.0,
                         dest="split_when", metavar="RATIO",
                         help="split a shard when its tuned predicted "
                              "cost exceeds RATIO x the sibling median "
                              "(default 3.0); candidates are reported "
                              "and the first one split in the "
                              "walkthrough")
    cluster.add_argument("--merge-when", type=float, default=1.5,
                         dest="merge_when", metavar="RATIO",
                         help="merge a sibling pair when their combined "
                              "tuned cost stays under RATIO x the other "
                              "siblings' median (default 1.5; must be "
                              "below --split-when -- the gap is the "
                              "anti-flap hysteresis band)")
    cluster.add_argument("--controller", action="store_true",
                         help="walkthrough: attach the autonomous "
                              "topology controller and drive "
                              "deterministic ticks (re-tune > split > "
                              "merge behind dwell/cool-down/no-flap "
                              "hysteresis); with --chaos: run the "
                              "controller storm instead (decaying load, "
                              "kill and corruption mid-merge, topology "
                              "must shrink with zero errors)")
    cluster.add_argument("--dwell-epochs", type=int, default=3,
                         dest="dwell_epochs", metavar="N",
                         help="controller hysteresis: a merge pair must "
                              "persist N consecutive ticks before it "
                              "fires, and a surgery may not be inverted "
                              "within N ticks of the shard's birth "
                              "(default 3)")
    cluster.set_defaults(run=_cmd_cluster)

    costs = commands.add_parser("costs", help="analytical Eqs. 1-5")
    costs.add_argument("--n", type=int, default=1_000_000)
    costs.add_argument("--dim", type=int, default=60)
    costs.add_argument("--memory", type=int, default=10_000)
    costs.add_argument("--queries", type=int, default=500)
    costs.set_defaults(run=_cmd_costs)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.run(args)
    except ReproError as error:
        # One-line diagnosis, never a raw traceback; the exit code
        # encodes the failure class for scripting.
        print(f"repro: {type(error).__name__}: {error}", file=sys.stderr)
        return _exit_code(error)


if __name__ == "__main__":
    sys.exit(main())
