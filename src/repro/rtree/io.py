"""Saving and loading built indexes and workloads (``.npz``).

Building a large index -- or the exact k-NN radii of a 500-query
workload over hundreds of thousands of points -- is the expensive part
of an experiment; both are deterministic given their inputs, so a
production workflow snapshots them.  The format is a plain ``numpy``
archive: portable, mmap-able, and free of pickle's code-execution
hazards.

Tree encoding: nodes are flattened in preorder; each node row stores
``(level, n_children, leaf_start, leaf_count)`` where leaf rows index
into a concatenated point-id array.  Region boxes are re-derived from
the points on load (they are minimal bounding boxes by construction),
so the archive stays small and cannot go stale.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core.topology import Topology
from ..workload.queries import KNNWorkload
from .geometry import MBR
from .node import InternalNode, LeafNode, Node
from .tree import RTree

__all__ = ["save_tree", "load_tree", "save_workload", "load_workload"]

_FORMAT_VERSION = 1


def save_tree(tree: RTree, path: str | Path) -> None:
    """Serialize a bulk-loaded tree (points + structure) to ``path``."""
    rows: list[tuple[int, int, int, int]] = []
    leaf_ids: list[np.ndarray] = []
    cursor = 0

    def walk(node: Node) -> None:
        nonlocal cursor
        if node.is_leaf:
            rows.append((node.level, 0, cursor, node.n_points))
            leaf_ids.append(np.asarray(node.point_ids, dtype=np.int64))
            cursor += node.n_points
        else:
            rows.append((node.level, len(node.children), 0, 0))
            for child in node.children:
                walk(child)

    walk(tree.root)
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        points=tree.points,
        nodes=np.asarray(rows, dtype=np.int64),
        leaf_point_ids=(
            np.concatenate(leaf_ids) if leaf_ids else np.empty(0, np.int64)
        ),
        topology=np.asarray(
            [tree.topology.n_points, tree.topology.c_data, tree.topology.c_dir],
            dtype=np.int64,
        ),
    )


def load_tree(path: str | Path) -> RTree:
    """Rebuild a tree saved with :func:`save_tree`."""
    with np.load(path) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported index format version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        points = archive["points"]
        nodes = archive["nodes"]
        leaf_point_ids = archive["leaf_point_ids"]
        n_points, c_data, c_dir = (int(v) for v in archive["topology"])

    position = 0

    def rebuild() -> Node:
        nonlocal position
        level, n_children, leaf_start, leaf_count = nodes[position]
        position += 1
        if n_children == 0:
            ids = leaf_point_ids[leaf_start : leaf_start + leaf_count]
            mbr = MBR.of_points(points[ids]) if leaf_count else None
            return LeafNode(point_ids=ids, mbr=mbr, level=int(level))
        children = [rebuild() for _ in range(n_children)]
        mbr = None
        for child in children:
            if child.mbr is not None:
                mbr = child.mbr if mbr is None else mbr.union(child.mbr)
        return InternalNode(
            children=children,
            mbr=mbr,
            level=int(level),
            n_points=sum(c.n_points for c in children),
        )

    root = rebuild()
    if position != nodes.shape[0]:
        raise ValueError("corrupt index archive: trailing node rows")
    topology = Topology(n_points=n_points, c_data=c_data, c_dir=c_dir)
    return RTree(points, root, topology)


def save_workload(workload: KNNWorkload, path: str | Path) -> None:
    """Serialize a k-NN workload (queries, exact radii) to ``path``."""
    np.savez_compressed(
        path,
        format_version=np.int64(_FORMAT_VERSION),
        k=np.int64(workload.k),
        query_ids=workload.query_ids,
        queries=workload.queries,
        radii=workload.radii,
    )


def load_workload(path: str | Path) -> KNNWorkload:
    """Rebuild a workload saved with :func:`save_workload`."""
    with np.load(path) as archive:
        version = int(archive["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported workload format version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        return KNNWorkload(
            k=int(archive["k"]),
            query_ids=archive["query_ids"],
            queries=archive["queries"],
            radii=archive["radii"],
        )
