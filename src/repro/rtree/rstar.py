"""A dynamic R*-tree (Beckmann, Kriegel, Schneider & Seeger 1990).

Section 4.7 of the paper claims the sampling prediction technique
applies to *any* index that organizes data in fixed-capacity pages --
prominently the R-tree family built by insertion rather than bulk
loading.  This module provides that substrate: a tuple-at-a-time
R*-tree with the classic heuristics --

* **ChooseSubtree**: minimal overlap enlargement at the leaf level,
  minimal area enlargement above (ties by area);
* **forced reinsertion**: on the first overflow per level per
  insertion, the ``p`` entries farthest from the node's center are
  removed and reinserted;
* **R\\*-split**: the split axis minimizes the summed margins over all
  legal distributions; the distribution minimizes overlap, then area.

The tree exposes :meth:`freeze` -- a snapshot as the standard node
graph -- so prediction, counting and best-first search reuse the same
machinery as the bulk-loaded index.  The mini-index construction for a
dynamic tree is the paper's original Section 3 recipe: run the *same*
insertion algorithm on the sample with the data-page capacity scaled
by the sampling fraction (see :class:`repro.core.dynamic`).
"""

from __future__ import annotations

import numpy as np

from .geometry import MBR
from .node import InternalNode, LeafNode, Node
from .tree import TreeQueries

__all__ = ["RStarTree", "FrozenRStarTree"]


class _DynNode:
    """A mutable R*-tree node: entries plus a running bounding box."""

    __slots__ = ("level", "entries", "lower", "upper")

    def __init__(self, level: int):
        self.level = level
        self.entries: list = []  # point ids (level 1) or _DynNode children
        self.lower: np.ndarray | None = None
        self.upper: np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return self.level == 1

    def extend(self, lower: np.ndarray, upper: np.ndarray) -> None:
        if self.lower is None:
            self.lower = lower.copy()
            self.upper = upper.copy()
        else:
            np.minimum(self.lower, lower, out=self.lower)
            np.maximum(self.upper, upper, out=self.upper)

    def recompute_box(self, tree: "RStarTree") -> None:
        lowers, uppers = tree._entry_boxes(self)
        if lowers.shape[0] == 0:
            self.lower = self.upper = None
        else:
            self.lower = lowers.min(axis=0)
            self.upper = uppers.max(axis=0)


def _volumes(lower: np.ndarray, upper: np.ndarray) -> np.ndarray:
    return np.prod(upper - lower, axis=-1)


def _margins(lower: np.ndarray, upper: np.ndarray) -> np.ndarray:
    return np.sum(upper - lower, axis=-1)


def _overlap(a_lo, a_hi, b_lo, b_hi) -> float:
    gap = np.minimum(a_hi, b_hi) - np.maximum(a_lo, b_lo)
    if np.any(gap <= 0):
        return 0.0
    return float(np.prod(gap))


def _overlap_sums(
    q_lo: np.ndarray, q_hi: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> np.ndarray:
    """Row i: total overlap volume of box ``q[i]`` with every box j != i."""
    gap = np.minimum(q_hi[:, None, :], hi[None, :, :]) - np.maximum(
        q_lo[:, None, :], lo[None, :, :]
    )
    np.clip(gap, 0.0, None, out=gap)
    volumes = np.prod(gap, axis=2)
    np.fill_diagonal(volumes, 0.0)
    return volumes.sum(axis=1)


class RStarTree:
    """Dynamic R*-tree over growing point data.

    ``c_data``/``c_dir`` are the page capacities; ``min_fill`` the
    minimum fill fraction used by the split (the classic 40%);
    ``reinsert_fraction`` the share of entries reinserted on first
    overflow (the classic 30%).
    """

    def __init__(
        self,
        dim: int,
        c_data: int,
        c_dir: int,
        *,
        min_fill: float = 0.4,
        reinsert_fraction: float = 0.3,
    ):
        if dim < 1:
            raise ValueError("dim must be >= 1")
        if c_data < 2 or c_dir < 2:
            raise ValueError("capacities must be >= 2")
        if not 0 < min_fill <= 0.5:
            raise ValueError("min_fill must be in (0, 0.5]")
        if not 0 <= reinsert_fraction < 0.5:
            raise ValueError("reinsert_fraction must be in [0, 0.5)")
        self.dim = dim
        self.c_data = c_data
        self.c_dir = c_dir
        self.min_fill = min_fill
        self.reinsert_fraction = reinsert_fraction
        self._buffer = np.empty((256, dim), dtype=np.float64)
        self._n = 0
        self._deleted: set[int] = set()
        self.root = _DynNode(level=1)
        self._reinserted_levels: set[int] = set()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        points: np.ndarray,
        c_data: int,
        c_dir: int,
        *,
        shuffle_seed: int | None = None,
        **kwargs,
    ) -> "RStarTree":
        """Insert all rows of ``points`` (optionally in shuffled order)."""
        points = np.asarray(points, dtype=np.float64)
        tree = cls(points.shape[1], c_data, c_dir, **kwargs)
        order = np.arange(points.shape[0])
        if shuffle_seed is not None:
            np.random.default_rng(shuffle_seed).shuffle(order)
        for i in order:
            tree.insert(points[i], point_id=int(i))
        return tree

    @property
    def n_points(self) -> int:
        return self._n

    @property
    def height(self) -> int:
        return self.root.level

    def insert(self, point: np.ndarray, *, point_id: int | None = None) -> int:
        """Insert one point; returns its id (row in :meth:`points`)."""
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.dim,):
            raise ValueError(f"expected a ({self.dim},) point, got {point.shape}")
        if point_id is None:
            point_id = self._n
        if point_id >= self._buffer.shape[0]:
            grown = np.empty(
                (max(point_id + 1, 2 * self._buffer.shape[0]), self.dim)
            )
            grown[: self._n] = self._buffer[: self._n]
            self._buffer = grown
        self._buffer[point_id] = point
        self._n = max(self._n, point_id + 1)
        self._reinserted_levels = set()
        self._insert_at_level(point_id, point, point, target_level=1)
        return point_id

    def points(self) -> np.ndarray:
        return self._buffer[: self._n]

    @property
    def active_ids(self) -> list[int]:
        """Ids currently stored (inserted and not deleted)."""
        return [i for i in range(self._n) if i not in self._deleted]

    def delete(self, point_id: int) -> None:
        """Remove a point (Guttman's delete with tree condensation).

        The leaf holding the point loses the entry; leaves (and,
        transitively, directory nodes) that underflow are dissolved and
        their remaining entries reinserted; a root left with a single
        directory child is shortened.
        """
        if not 0 <= point_id < self._n or point_id in self._deleted:
            raise KeyError(f"point {point_id} is not in the tree")
        point = self._buffer[point_id]
        path = self._find_leaf_path(self.root, point_id, point)
        if path is None:
            raise KeyError(f"point {point_id} not found (index corrupt?)")
        leaf = path[-1]
        leaf.entries.remove(point_id)
        leaf.recompute_box(self)
        self._deleted.add(point_id)
        self._condense(path)

    def _find_leaf_path(
        self, node: _DynNode, point_id: int, point: np.ndarray
    ) -> list[_DynNode] | None:
        if node.is_leaf:
            return [node] if point_id in node.entries else None
        if node.lower is None:
            return None
        if np.any(point < node.lower) or np.any(point > node.upper):
            return None
        for child in node.entries:
            if child.lower is None:
                continue
            if np.all(child.lower <= point) and np.all(point <= child.upper):
                deeper = self._find_leaf_path(child, point_id, point)
                if deeper is not None:
                    return [node, *deeper]
        return None

    def _condense(self, path: list[_DynNode]) -> None:
        """Dissolve underfull nodes bottom-up, reinserting orphans."""
        orphans: list[tuple[object, np.ndarray, np.ndarray, int]] = []
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            if len(node.entries) < self._min_entries(node):
                parent.entries.remove(node)
                lowers, uppers = self._entry_boxes(node)
                for i, entry in enumerate(node.entries):
                    orphans.append((entry, lowers[i], uppers[i], node.level))
            parent.recompute_box(self)
        for entry, lower, upper, level in orphans:
            self._reinserted_levels = set()
            self._insert_at_level(entry, lower, upper, level)
        # Shorten a root reduced to a single directory child.
        while not self.root.is_leaf and len(self.root.entries) == 1:
            self.root = self.root.entries[0]
        if not self.root.is_leaf and not self.root.entries:
            self.root = _DynNode(level=1)

    def freeze(self) -> "FrozenRStarTree":
        """An immutable snapshot exposing the standard query API."""
        return FrozenRStarTree(self.points(), self._freeze_node(self.root))

    def validate(self) -> None:
        """Structural invariants of the R*-tree (see test suite)."""
        seen: list[int] = []
        min_data = max(1, int(self.min_fill * self.c_data))
        min_dir = max(1, int(self.min_fill * self.c_dir))
        stack: list[tuple[_DynNode, bool]] = [(self.root, True)]
        while stack:
            node, is_root = stack.pop()
            count = len(node.entries)
            if node.is_leaf:
                assert count <= self.c_data
                if not is_root:
                    assert count >= min_data
                seen.extend(node.entries)
                if count:
                    pts = self.points()[node.entries]
                    assert np.allclose(node.lower, pts.min(axis=0))
                    assert np.allclose(node.upper, pts.max(axis=0))
            else:
                assert count <= self.c_dir
                assert count >= (2 if is_root else min_dir)
                for child in node.entries:
                    assert child.level == node.level - 1
                    assert np.all(node.lower <= child.lower + 1e-12)
                    assert np.all(child.upper <= node.upper + 1e-12)
                    stack.append((child, False))
        expected = [i for i in range(self._n) if i not in self._deleted]
        assert sorted(seen) == expected

    # ------------------------------------------------------------------
    # Insertion machinery
    # ------------------------------------------------------------------

    def _capacity(self, node: _DynNode) -> int:
        return self.c_data if node.is_leaf else self.c_dir

    def _min_entries(self, node: _DynNode) -> int:
        return max(1, int(self.min_fill * self._capacity(node)))

    def _entry_boxes(self, node: _DynNode) -> tuple[np.ndarray, np.ndarray]:
        """(lowers, uppers) of a node's entries, stacked."""
        if not node.entries:
            empty = np.empty((0, self.dim))
            return empty, empty
        if node.is_leaf:
            pts = self.points()[node.entries]
            return pts, pts
        lowers = np.stack([child.lower for child in node.entries])
        uppers = np.stack([child.upper for child in node.entries])
        return lowers, uppers

    def _insert_at_level(
        self,
        entry,
        entry_lower: np.ndarray,
        entry_upper: np.ndarray,
        target_level: int,
    ) -> None:
        start_root = self.root
        split = self._descend(start_root, entry, entry_lower, entry_upper,
                              target_level)
        if split is None:
            return
        if self.root is start_root:
            new_root = _DynNode(level=start_root.level + 1)
            new_root.entries = [start_root, split]
            new_root.recompute_box(self)
            self.root = new_root
        else:
            # A forced reinsertion grew a new root above ``start_root``
            # mid-flight; hand the sibling to the *current* root as an
            # ordinary entry at its level.
            self._insert_at_level(
                split, split.lower, split.upper, start_root.level + 1
            )

    def _descend(
        self,
        node: _DynNode,
        entry,
        entry_lower: np.ndarray,
        entry_upper: np.ndarray,
        target_level: int,
    ) -> _DynNode | None:
        """Recursive insert; returns a new sibling if ``node`` split."""
        node.extend(entry_lower, entry_upper)
        if node.level == target_level:
            node.entries.append(entry)
        else:
            child = self._choose_subtree(node, entry_lower, entry_upper)
            split_child = self._descend(child, entry, entry_lower,
                                        entry_upper, target_level)
            if split_child is not None:
                node.entries.append(split_child)
                node.extend(split_child.lower, split_child.upper)
        if len(node.entries) > self._capacity(node):
            return self._overflow(node)
        return None

    def _choose_subtree(
        self, node: _DynNode, entry_lower: np.ndarray, entry_upper: np.ndarray
    ) -> _DynNode:
        children = node.entries
        lowers = np.stack([c.lower for c in children])
        uppers = np.stack([c.upper for c in children])
        grown_lowers = np.minimum(lowers, entry_lower)
        grown_uppers = np.maximum(uppers, entry_upper)
        areas = _volumes(lowers, uppers)
        enlargements = _volumes(grown_lowers, grown_uppers) - areas
        if node.level == 2:
            # Children are leaves: minimize overlap enlargement (R*).
            before = _overlap_sums(lowers, uppers, lowers, uppers)
            after = _overlap_sums(grown_lowers, grown_uppers, lowers, uppers)
            order = np.lexsort((areas, enlargements, after - before))
            return children[order[0]]
        order = np.lexsort((areas, enlargements))
        return children[order[0]]

    def _overflow(self, node: _DynNode) -> _DynNode | None:
        """Handle an overfull node: reinsert once per level, else split."""
        is_root = node is self.root
        if (
            not is_root
            and self.reinsert_fraction > 0
            and node.level not in self._reinserted_levels
        ):
            self._reinserted_levels.add(node.level)
            self._reinsert(node)
            return None
        return self._split(node)

    def _reinsert(self, node: _DynNode) -> None:
        """Forced reinsertion: evict the p entries farthest from the
        node's center and insert them again from the root."""
        lowers, uppers = self._entry_boxes(node)
        centers = (lowers + uppers) / 2.0
        node_center = (node.lower + node.upper) / 2.0
        dists = np.linalg.norm(centers - node_center, axis=1)
        p = max(1, int(self.reinsert_fraction * len(node.entries)))
        order = np.argsort(dists)  # close first; evict the tail
        keep_idx, evict_idx = order[:-p], order[-p:]
        entries = node.entries
        evicted = [entries[i] for i in evict_idx]
        node.entries = [entries[i] for i in keep_idx]
        node.recompute_box(self)
        for i, entry in zip(evict_idx, evicted):
            self._insert_at_level(entry, lowers[i], uppers[i], node.level)

    def _split(self, node: _DynNode) -> _DynNode:
        """R*-split: returns the new sibling; ``node`` keeps one group."""
        lowers, uppers = self._entry_boxes(node)
        n = len(node.entries)
        m = self._min_entries(node)
        best = None  # ((margin_sum, overlap, area), cut, order)
        cuts = np.arange(m, n - m + 1)
        for axis in range(self.dim):
            for use_upper in (False, True):
                keys = uppers[:, axis] if use_upper else lowers[:, axis]
                order = np.argsort(keys, kind="stable")
                sl = lowers[order]
                su = uppers[order]
                # Prefix/suffix running boxes, then all cuts at once.
                pre_lo = np.minimum.accumulate(sl, axis=0)
                pre_hi = np.maximum.accumulate(su, axis=0)
                suf_lo = np.minimum.accumulate(sl[::-1], axis=0)[::-1]
                suf_hi = np.maximum.accumulate(su[::-1], axis=0)[::-1]
                a_lo, a_hi = pre_lo[cuts - 1], pre_hi[cuts - 1]
                b_lo, b_hi = suf_lo[cuts], suf_hi[cuts]
                margin_sum = float(
                    (_margins(a_lo, a_hi) + _margins(b_lo, b_hi)).sum()
                )
                gap = np.minimum(a_hi, b_hi) - np.maximum(a_lo, b_lo)
                np.clip(gap, 0.0, None, out=gap)
                overlaps = np.prod(gap, axis=1)
                group_areas = _volumes(a_lo, a_hi) + _volumes(b_lo, b_hi)
                pick = np.lexsort((group_areas, overlaps))[0]
                key = (margin_sum, float(overlaps[pick]), float(group_areas[pick]))
                if best is None or key < best[0]:
                    best = (key, int(cuts[pick]), order)
        assert best is not None
        _, cut, order = best
        entries = node.entries
        left = [entries[i] for i in order[:cut]]
        right = [entries[i] for i in order[cut:]]
        node.entries = left
        node.recompute_box(self)
        sibling = _DynNode(level=node.level)
        sibling.entries = right
        sibling.recompute_box(self)
        return sibling

    # ------------------------------------------------------------------

    def _freeze_node(self, node: _DynNode) -> Node:
        mbr = (
            MBR(node.lower, node.upper)
            if node.lower is not None
            else None
        )
        if node.is_leaf:
            return LeafNode(
                point_ids=np.asarray(node.entries, dtype=np.int64),
                mbr=mbr,
                level=1,
            )
        children = [self._freeze_node(child) for child in node.entries]
        return InternalNode(
            children=children,
            mbr=mbr,
            level=node.level,
            n_points=sum(c.n_points for c in children),
        )


class FrozenRStarTree(TreeQueries):
    """Immutable snapshot of an R*-tree with the standard query API."""

    def __init__(self, points: np.ndarray, root: Node):
        self.points = np.asarray(points, dtype=np.float64)
        self.root = root
