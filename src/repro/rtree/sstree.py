"""An SS-tree-style index: pages bounded by spheres, not boxes.

Section 4.7 lists the SS-tree and SR-tree among the structures the
sampling technique covers.  Spheres are a genuinely different page
geometry -- a bounding sphere's MINDIST is ``max(0, |q - c| - r)`` and
its sampling shrinkage law differs from Theorem 1's box law -- so this
substrate is the strongest test of the recipe's generality.

The tree reuses the VAMSplit partitioning (page *membership* is
geometry-independent); regions are computed bottom-up: a leaf's sphere
is centered at its centroid with radius the farthest member, a
directory sphere covers its children's spheres.  Best-first k-NN works
unchanged because the search only needs ``mindist_sq``.

Radius compensation: for ``n`` points uniform in a ``d``-ball of
radius ``R``, each point's distance has cdf ``(x / R)^d``, so
``E[max] = R * nd / (nd + 1)``.  Reducing ``C`` points to ``m = C *
zeta`` therefore shrinks the radius by ``(md + 1) Cd / (md (Cd + 1))``
-- the spherical analogue of Theorem 1.  In high dimensions this
factor is close to 1: sphere radii concentrate, which is why sphere
pages barely shrink under sampling (an observation the experiments
confirm).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.topology import Topology
from .bulkload import BulkLoadConfig, build_tree
from .node import LeafNode, Node
from .search import best_first_knn
from .tree import KNNResult

__all__ = ["Sphere", "SSTree", "sphere_radius_compensation"]


@dataclass(frozen=True)
class Sphere:
    """A bounding sphere; duck-compatible with MBR for best-first search."""

    center: np.ndarray
    radius: float

    def __post_init__(self) -> None:
        center = np.asarray(self.center, dtype=np.float64)
        if center.ndim != 1:
            raise ValueError("sphere center must be a 1-d point")
        if self.radius < 0:
            raise ValueError("sphere radius must be non-negative")
        object.__setattr__(self, "center", center)

    def mindist_sq(self, point: np.ndarray) -> float:
        gap = max(0.0, float(np.linalg.norm(point - self.center)) - self.radius)
        return gap * gap

    def intersects_sphere(self, center: np.ndarray, radius: float) -> bool:
        return (
            float(np.linalg.norm(np.asarray(center) - self.center))
            <= radius + self.radius
        )

    def grown(self, factor: float) -> "Sphere":
        if factor < 0:
            raise ValueError("growth factor must be non-negative")
        return Sphere(self.center, self.radius * factor)


def sphere_radius_compensation(capacity: float, zeta: float, dim: int) -> float:
    """Radius growth undoing sampling shrinkage of a uniform-ball page."""
    if capacity <= 1:
        raise ValueError("page capacity must exceed 1 point")
    if not 0 < zeta <= 1:
        raise ValueError("sampling fraction must be in (0, 1]")
    if dim < 1:
        raise ValueError("dim must be >= 1")
    sampled = capacity * zeta
    if sampled <= 0:
        raise ValueError("sampled page must expect at least one point")
    full_term = capacity * dim / (capacity * dim + 1.0)
    mini_term = sampled * dim / (sampled * dim + 1.0)
    return full_term / mini_term


class SSTree:
    """Bulk-loaded sphere-page index over an ``(n, d)`` point matrix."""

    def __init__(self, points: np.ndarray, root: Node, topology: Topology):
        self.points = np.asarray(points, dtype=np.float64)
        self.root = root
        self.topology = topology
        self._leaf_cache: tuple[np.ndarray, np.ndarray] | None = None

    @classmethod
    def bulk_load(
        cls,
        points: np.ndarray,
        c_data: int,
        c_dir: int,
        *,
        virtual_n: int | None = None,
        config: BulkLoadConfig | None = None,
    ) -> "SSTree":
        """Same partitioning as the R-tree, sphere regions bottom-up."""
        points = np.asarray(points, dtype=np.float64)
        n_virtual = virtual_n if virtual_n is not None else points.shape[0]
        topology = Topology(n_points=n_virtual, c_data=c_data, c_dir=c_dir)
        root = build_tree(points, topology, config)
        _attach_spheres(root, points)
        return cls(points, root, topology)

    # ------------------------------------------------------------------

    @property
    def dim(self) -> int:
        return int(self.points.shape[1])

    @property
    def height(self) -> int:
        return self.root.level

    @property
    def leaves(self) -> list[LeafNode]:
        return list(self.root.iter_leaves())

    @property
    def n_leaves(self) -> int:
        return len(self.leaves)

    def leaf_spheres(self) -> tuple[np.ndarray, np.ndarray]:
        """(centers, radii) of all non-empty leaf pages, stacked."""
        if self._leaf_cache is None:
            spheres = [l.mbr for l in self.leaves if l.mbr is not None]
            if not spheres:
                self._leaf_cache = (np.empty((0, self.dim)), np.empty(0))
            else:
                self._leaf_cache = (
                    np.stack([s.center for s in spheres]),
                    np.array([s.radius for s in spheres]),
                )
        return self._leaf_cache

    def grown_leaf_spheres(self, factor: float) -> tuple[np.ndarray, np.ndarray]:
        centers, radii = self.leaf_spheres()
        return centers, radii * factor

    def knn(self, query: np.ndarray, k: int) -> KNNResult:
        """Optimal best-first k-NN search over sphere regions."""
        ids, dists, leaf_accesses, node_accesses, _ = best_first_knn(
            self.points, self.root, query, k
        )
        return KNNResult(ids, dists, leaf_accesses, node_accesses)

    def leaf_accesses_for_radius(
        self, centers: np.ndarray, radii: np.ndarray
    ) -> np.ndarray:
        """Leaf spheres intersected by each query sphere, counted."""
        leaf_centers, leaf_radii = self.leaf_spheres()
        return count_sphere_sphere(centers, radii, leaf_centers, leaf_radii)

    def validate(self) -> None:
        """Every point lies inside its leaf sphere; every child sphere
        inside its parent's."""
        stack: list[Node] = [self.root]
        while stack:
            node = stack.pop()
            if node.mbr is None:
                continue
            sphere: Sphere = node.mbr  # type: ignore[assignment]
            if node.is_leaf:
                if node.n_points:
                    dists = np.linalg.norm(
                        self.points[node.point_ids] - sphere.center, axis=1
                    )
                    assert float(dists.max()) <= sphere.radius + 1e-9
            else:
                for child in node.children:
                    if child.mbr is None:
                        continue
                    child_sphere: Sphere = child.mbr  # type: ignore[assignment]
                    reach = (
                        float(
                            np.linalg.norm(child_sphere.center - sphere.center)
                        )
                        + child_sphere.radius
                    )
                    assert reach <= sphere.radius + 1e-9
                stack.extend(node.children)


def count_sphere_sphere(
    query_centers: np.ndarray,
    query_radii: np.ndarray,
    leaf_centers: np.ndarray,
    leaf_radii: np.ndarray,
) -> np.ndarray:
    """Per-query count of leaf spheres intersecting each query sphere."""
    query_centers = np.atleast_2d(np.asarray(query_centers, dtype=np.float64))
    query_radii = np.atleast_1d(np.asarray(query_radii, dtype=np.float64))
    counts = np.zeros(query_centers.shape[0], dtype=np.int64)
    if leaf_centers.shape[0] == 0:
        return counts
    for i, (center, radius) in enumerate(zip(query_centers, query_radii)):
        dists = np.linalg.norm(leaf_centers - center, axis=1)
        counts[i] = int(np.count_nonzero(dists <= radius + leaf_radii))
    return counts


def _attach_spheres(node: Node, points: np.ndarray) -> Sphere | None:
    """Replace box regions with bounding spheres, bottom-up."""
    if node.is_leaf:
        if node.n_points == 0:
            node.mbr = None
            return None
        members = points[node.point_ids]
        center = members.mean(axis=0)
        radius = float(np.linalg.norm(members - center, axis=1).max())
        sphere = Sphere(center, radius)
        node.mbr = sphere  # type: ignore[assignment]
        return sphere
    child_spheres = [
        s for s in (_attach_spheres(child, points) for child in node.children)
        if s is not None
    ]
    if not child_spheres:
        node.mbr = None
        return None
    weights = np.array(
        [child.n_points for child in node.children if child.mbr is not None],
        dtype=np.float64,
    )
    centers = np.stack([s.center for s in child_spheres])
    center = (centers * weights[:, None]).sum(axis=0) / weights.sum()
    radius = max(
        float(np.linalg.norm(s.center - center)) + s.radius
        for s in child_spheres
    )
    sphere = Sphere(center, radius)
    node.mbr = sphere  # type: ignore[assignment]
    return sphere
