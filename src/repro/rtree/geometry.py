"""Minimal-bounding-rectangle (MBR) geometry.

All index pages in this library are axis-aligned hyperrectangles in
``d``-dimensional space.  Sets of boxes are represented as a pair of
``(n, d)`` float arrays (lower and upper corners) so that the hot
operations of the paper -- MINDIST from a query point to every leaf page
and sphere/box intersection counting -- are single vectorized numpy
expressions.

A small :class:`MBR` value type is provided for code that deals with one
box at a time (tree nodes, upper-tree leaves); it is a thin, immutable
wrapper around the same array representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "MBR",
    "mbr_of_points",
    "volume",
    "margin",
    "union",
    "intersects_box",
    "contains_point",
    "mindist_sq_point_to_boxes",
    "count_sphere_intersections",
    "sphere_intersects_boxes",
    "grow_centered",
    "stack_mbrs",
]


@dataclass(frozen=True)
class MBR:
    """An axis-aligned minimal bounding hyperrectangle.

    ``lower`` and ``upper`` are 1-d float arrays of equal length; the box
    is the closed region ``[lower, upper]``.  Degenerate boxes (zero
    extent in some or all dimensions) are legal -- a page holding a
    single point has a degenerate MBR.
    """

    lower: np.ndarray = field(repr=False)
    upper: np.ndarray = field(repr=False)

    def __post_init__(self) -> None:
        lower = np.asarray(self.lower, dtype=np.float64)
        upper = np.asarray(self.upper, dtype=np.float64)
        if lower.ndim != 1 or lower.shape != upper.shape:
            raise ValueError(
                f"MBR corners must be equal-length 1-d arrays, got "
                f"{lower.shape} and {upper.shape}"
            )
        if np.any(lower > upper):
            raise ValueError("MBR lower corner exceeds upper corner")
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)

    @classmethod
    def of_points(cls, points: np.ndarray) -> "MBR":
        """The minimal bounding box of a non-empty ``(n, d)`` point set."""
        lower, upper = mbr_of_points(points)
        return cls(lower, upper)

    @property
    def dim(self) -> int:
        return self.lower.shape[0]

    @property
    def extents(self) -> np.ndarray:
        return self.upper - self.lower

    @property
    def center(self) -> np.ndarray:
        return (self.lower + self.upper) / 2.0

    def volume(self) -> float:
        return float(np.prod(self.extents))

    def margin(self) -> float:
        return float(np.sum(self.extents))

    def union(self, other: "MBR") -> "MBR":
        return MBR(
            np.minimum(self.lower, other.lower),
            np.maximum(self.upper, other.upper),
        )

    def contains_point(self, point: np.ndarray) -> bool:
        point = np.asarray(point, dtype=np.float64)
        return bool(np.all(self.lower <= point) and np.all(point <= self.upper))

    def intersects_box(self, other: "MBR") -> bool:
        return bool(
            np.all(self.lower <= other.upper) and np.all(other.lower <= self.upper)
        )

    def mindist_sq(self, point: np.ndarray) -> float:
        """Squared MINDIST from ``point`` to this box (0 if inside)."""
        point = np.asarray(point, dtype=np.float64)
        below = np.maximum(self.lower - point, 0.0)
        above = np.maximum(point - self.upper, 0.0)
        gap = below + above
        return float(np.dot(gap, gap))

    def intersects_sphere(self, center: np.ndarray, radius: float) -> bool:
        return self.mindist_sq(center) <= radius * radius

    def grown(self, side_factor: float) -> "MBR":
        """A copy scaled by ``side_factor`` per dimension about the center."""
        lower, upper = grow_centered(
            self.lower[np.newaxis, :], self.upper[np.newaxis, :], side_factor
        )
        return MBR(lower[0], upper[0])


def mbr_of_points(points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Lower and upper corners of the MBR of a non-empty point set."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] == 0:
        raise ValueError(f"expected a non-empty (n, d) array, got {points.shape}")
    return points.min(axis=0), points.max(axis=0)


def volume(lower: np.ndarray, upper: np.ndarray) -> np.ndarray:
    """Volumes of a stacked ``(n, d)`` box set (or a single ``(d,)`` box)."""
    return np.prod(np.asarray(upper) - np.asarray(lower), axis=-1)


def margin(lower: np.ndarray, upper: np.ndarray) -> np.ndarray:
    """Sums of side lengths (the R*-tree margin) of a stacked box set."""
    return np.sum(np.asarray(upper) - np.asarray(lower), axis=-1)


def union(
    a_lower: np.ndarray,
    a_upper: np.ndarray,
    b_lower: np.ndarray,
    b_upper: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Elementwise union of two (broadcastable) box sets."""
    return np.minimum(a_lower, b_lower), np.maximum(a_upper, b_upper)


def intersects_box(
    lower: np.ndarray,
    upper: np.ndarray,
    q_lower: np.ndarray,
    q_upper: np.ndarray,
) -> np.ndarray:
    """Which boxes of a stacked ``(n, d)`` set intersect the query box."""
    return np.logical_and(
        np.all(lower <= q_upper, axis=-1), np.all(q_lower <= upper, axis=-1)
    )


def contains_point(lower: np.ndarray, upper: np.ndarray, point: np.ndarray) -> np.ndarray:
    """Which boxes of a stacked ``(n, d)`` set contain ``point``."""
    return np.logical_and(
        np.all(lower <= point, axis=-1), np.all(point <= upper, axis=-1)
    )


def mindist_sq_point_to_boxes(
    point: np.ndarray, lower: np.ndarray, upper: np.ndarray
) -> np.ndarray:
    """Squared MINDIST from one point to each box of a stacked set.

    This is the classic R-tree MINDIST of Roussopoulos et al.: per
    dimension, the distance to the nearest face if the point lies outside
    the box's extent in that dimension, zero otherwise.
    """
    below = np.maximum(lower - point, 0.0)
    above = np.maximum(point - upper, 0.0)
    gap = below + above
    return np.einsum("...d,...d->...", gap, gap)


def sphere_intersects_boxes(
    center: np.ndarray, radius: float, lower: np.ndarray, upper: np.ndarray
) -> np.ndarray:
    """Boolean mask of boxes intersected by the ball ``B(center, radius)``."""
    return mindist_sq_point_to_boxes(center, lower, upper) <= radius * radius


def count_sphere_intersections(
    center: np.ndarray, radius: float, lower: np.ndarray, upper: np.ndarray
) -> int:
    """Number of boxes in a stacked set intersected by a query sphere.

    This is the paper's page-access estimate: a leaf page must be read by
    an (optimal) k-NN search exactly when its MBR intersects the final
    k-NN sphere of the query.
    """
    return int(np.count_nonzero(sphere_intersects_boxes(center, radius, lower, upper)))


def grow_centered(
    lower: np.ndarray, upper: np.ndarray, side_factor: float
) -> tuple[np.ndarray, np.ndarray]:
    """Scale every box about its center by ``side_factor`` per dimension.

    Used to apply the paper's compensation factor: the *volume* factor
    ``delta`` corresponds to a per-side factor of ``delta ** (1/d)``.
    Factors below 1 shrink; the box center is preserved exactly.
    """
    if side_factor < 0:
        raise ValueError("side_factor must be non-negative")
    center = (lower + upper) / 2.0
    half = (upper - lower) / 2.0 * side_factor
    return center - half, center + half


def stack_mbrs(mbrs: list[MBR]) -> tuple[np.ndarray, np.ndarray]:
    """Stack a non-empty list of MBRs into ``(n, d)`` corner arrays."""
    if not mbrs:
        raise ValueError("cannot stack an empty list of MBRs")
    lower = np.stack([m.lower for m in mbrs])
    upper = np.stack([m.upper for m in mbrs])
    return lower, upper
