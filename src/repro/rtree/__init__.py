"""R-tree substrate: geometry, bulk loading, and search."""

from .bulkload import BulkLoadConfig, build_subtree, build_tree
from .geometry import MBR
from .io import load_tree, load_workload, save_tree, save_workload
from .kdb import KDBTree
from .node import InternalNode, LeafNode, Node
from .rstar import FrozenRStarTree, RStarTree
from .split import max_extent_dimension, max_variance_dimension
from .stats import (
    LeafStatistics,
    leaf_statistics,
    leaf_statistics_from_geometry,
    pairwise_overlap_count,
)
from .search import best_first_knn
from .sstree import Sphere, SSTree, sphere_radius_compensation
from .tree import KNNResult, RTree, TreeQueries

__all__ = [
    "BulkLoadConfig",
    "build_subtree",
    "build_tree",
    "MBR",
    "load_tree",
    "load_workload",
    "save_tree",
    "save_workload",
    "KDBTree",
    "InternalNode",
    "LeafNode",
    "Node",
    "LeafStatistics",
    "leaf_statistics",
    "leaf_statistics_from_geometry",
    "pairwise_overlap_count",
    "max_extent_dimension",
    "max_variance_dimension",
    "FrozenRStarTree",
    "RStarTree",
    "best_first_knn",
    "Sphere",
    "SSTree",
    "sphere_radius_compensation",
    "KNNResult",
    "RTree",
    "TreeQueries",
]
