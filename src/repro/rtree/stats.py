"""Index quality statistics.

The quantities index papers (and index tuners) argue with: page
utilization, page volume and extent distributions, the pairwise
overlap among leaf pages, and dead space.  The paper's narrative --
bulk-loaded VAMSplit layouts beat insertion-built ones, sphere pages
overlap more than boxes in high dimensions -- becomes measurable here,
and the examples use these numbers to explain *why* the access counts
differ.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..kernels.geometry import LeafGeometry
from .geometry import volume

__all__ = [
    "LeafStatistics",
    "leaf_statistics",
    "leaf_statistics_from_geometry",
    "pairwise_overlap_count",
]


@dataclass(frozen=True)
class LeafStatistics:
    """Aggregate statistics over an index's leaf pages."""

    n_leaves: int
    n_points: int
    capacity: int
    mean_occupancy: float
    min_occupancy: int
    max_occupancy: int
    utilization: float
    total_volume: float
    mean_volume: float
    mean_extent: float
    overlap_pairs: int
    overlap_fraction: float

    def summary(self) -> str:
        """A short human-readable report."""
        return (
            f"{self.n_leaves:,} leaves, {self.mean_occupancy:.1f} points "
            f"each ({self.utilization:.0%} of capacity {self.capacity}); "
            f"mean volume {self.mean_volume:.3g}, mean extent/side "
            f"{self.mean_extent:.3g}; {self.overlap_pairs:,} overlapping "
            f"pairs ({self.overlap_fraction:.2%} of all pairs)"
        )


def pairwise_overlap_count(lower: np.ndarray, upper: np.ndarray) -> int:
    """Number of distinct leaf pairs whose boxes overlap (positive
    intersection volume in every dimension).

    Computed blockwise so the ``n^2`` mask never exceeds a few MB.
    """
    n = lower.shape[0]
    if n < 2:
        return 0
    count = 0
    block = max(1, 2**22 // max(1, n))
    for start in range(0, n, block):
        a_lo = lower[start : start + block]
        a_hi = upper[start : start + block]
        strictly = np.logical_and(
            np.all(a_lo[:, None, :] < upper[None, :, :], axis=2),
            np.all(lower[None, :, :] < a_hi[:, None, :], axis=2),
        )
        count += int(strictly.sum())
        # Remove self-pairs counted inside this block.
        for i in range(a_lo.shape[0]):
            if strictly[i, start + i]:
                count -= 1
    return count // 2


def leaf_statistics_from_geometry(
    geometry: LeafGeometry, capacity: int
) -> LeafStatistics:
    """Build :class:`LeafStatistics` straight from a cached geometry.

    Uses the geometry's own per-leaf ``n_points`` as the occupancies,
    so a tree's statistics come from the same stacked arrays its
    counting kernels read.
    """
    return leaf_statistics(
        geometry.lower, geometry.upper, geometry.n_points, capacity
    )


def leaf_statistics(
    lower: np.ndarray,
    upper: np.ndarray,
    occupancies: np.ndarray,
    capacity: int,
) -> LeafStatistics:
    """Build :class:`LeafStatistics` from stacked leaf corners.

    ``occupancies`` holds the point count of each leaf in the same
    order as the corner rows.
    """
    lower = np.asarray(lower, dtype=np.float64)
    upper = np.asarray(upper, dtype=np.float64)
    occupancies = np.asarray(occupancies, dtype=np.int64)
    if lower.shape != upper.shape or lower.ndim != 2:
        raise ValueError("lower/upper must be matching (n, d) arrays")
    if occupancies.shape[0] != lower.shape[0]:
        raise ValueError("occupancies must match the number of leaves")
    if capacity < 1:
        raise ValueError("capacity must be positive")
    n = lower.shape[0]
    if n == 0:
        raise ValueError("no leaves to summarize")
    volumes = volume(lower, upper)
    extents = upper - lower
    pairs = pairwise_overlap_count(lower, upper)
    all_pairs = n * (n - 1) // 2
    return LeafStatistics(
        n_leaves=n,
        n_points=int(occupancies.sum()),
        capacity=capacity,
        mean_occupancy=float(occupancies.mean()),
        min_occupancy=int(occupancies.min()),
        max_occupancy=int(occupancies.max()),
        utilization=float(occupancies.mean() / capacity),
        total_volume=float(volumes.sum()),
        mean_volume=float(volumes.mean()),
        mean_extent=float(extents.mean()),
        overlap_pairs=pairs,
        overlap_fraction=pairs / all_pairs if all_pairs else 0.0,
    )
