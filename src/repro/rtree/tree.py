"""The bulk-loaded R-tree: search, leaf enumeration, validation.

:class:`RTree` wraps the object graph produced by the bulk loader with
the operations the paper needs:

* **best-first k-NN search** (Hjaltason & Samet) with leaf- and
  node-access counting -- the measured "ground truth" of the
  experiments;
* **range search** over box regions;
* **leaf-page enumeration** as stacked corner arrays, the representation
  the sampling predictors consume;
* **sphere-intersection counting** -- the number of leaf pages an
  optimal k-NN search must read equals the number of leaf MBRs
  intersecting the final k-NN sphere, which is how the prediction model
  estimates page accesses;
* **structural validation** used heavily by the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..core.topology import Topology
from ..errors import validate_points
from ..kernels.geometry import LeafGeometry
from ..kernels.registry import get_kernel
from .bulkload import BulkLoadConfig, build_tree
from .node import LeafNode, Node
from .search import best_first_knn

__all__ = ["RTree", "KNNResult", "TreeQueries"]


@dataclass(frozen=True)
class KNNResult:
    """Result of a k-NN search plus its access counts.

    ``accessed_leaves`` is populated only when the search is asked to
    collect them (used by the on-disk measurement to charge the page
    reads of each visited leaf to the simulated disk).
    """

    point_ids: np.ndarray
    distances: np.ndarray
    leaf_accesses: int
    node_accesses: int
    accessed_leaves: tuple[LeafNode, ...] | None = None

    @property
    def radius(self) -> float:
        """The k-NN sphere radius (distance of the k-th neighbor)."""
        return float(self.distances[-1]) if self.distances.size else 0.0


class TreeQueries:
    """Query and enumeration operations shared by every MBR tree.

    Mixin over the attributes ``points`` (an ``(n, d)`` float matrix)
    and ``root`` (a :class:`~repro.rtree.node.Node` graph); used by the
    bulk-loaded :class:`RTree` and the frozen view of the dynamic
    R*-tree.
    """

    points: np.ndarray
    root: Node

    @property
    def height(self) -> int:
        return self.root.level

    @property
    def dim(self) -> int:
        return int(self.points.shape[1])

    @cached_property
    def leaves(self) -> list[LeafNode]:
        return list(self.root.iter_leaves())

    @property
    def n_leaves(self) -> int:
        return len(self.leaves)

    @cached_property
    def leaf_geometry(self) -> LeafGeometry:
        """The canonical stacked leaf-page arrays, built once per tree.

        Every counting path -- predictors, sweeps, measurement -- reads
        this one cached value instead of restacking corners from the
        node graph.  Mutating the node graph requires
        :meth:`invalidate_caches`.
        """
        return LeafGeometry.from_leaves(self.leaves, self.dim)

    @property
    def leaf_corners(self) -> tuple[np.ndarray, np.ndarray]:
        """Stacked ``(lower, upper)`` corners of all *non-empty* leaves."""
        return self.leaf_geometry.corners

    def invalidate_caches(self) -> None:
        """Drop the cached leaf list and geometry after a graph mutation."""
        for name in ("leaves", "leaf_geometry"):
            self.__dict__.pop(name, None)

    def leaf_stats(self, capacity: int) -> "LeafStatistics":
        """Aggregate leaf-page statistics from the cached geometry."""
        from .stats import leaf_statistics_from_geometry

        return leaf_statistics_from_geometry(self.leaf_geometry, capacity)

    def nodes_at_level(self, level: int) -> list[Node]:
        nodes: list[Node] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.level == level:
                nodes.append(node)
            elif not node.is_leaf:
                stack.extend(node.children)
        return nodes

    def knn(self, query: np.ndarray, k: int, *, collect_leaves: bool = False) -> KNNResult:
        """Optimal best-first k-NN search with access counting.

        Reads a node only when its MINDIST does not exceed the current
        k-th-best distance, so leaf accesses are minimal for the layout.
        """
        ids, dists, leaf_accesses, node_accesses, collected = best_first_knn(
            self.points, self.root, query, k, collect_leaves=collect_leaves
        )
        return KNNResult(ids, dists, leaf_accesses, node_accesses, collected)

    def range_query(self, lower: np.ndarray, upper: np.ndarray) -> np.ndarray:
        """Ids of all points inside the closed box ``[lower, upper]``."""
        lower = np.asarray(lower, dtype=np.float64)
        upper = np.asarray(upper, dtype=np.float64)
        hits: list[np.ndarray] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.mbr is None:
                continue
            if not (
                np.all(node.mbr.lower <= upper) and np.all(lower <= node.mbr.upper)
            ):
                continue
            if node.is_leaf:
                pts = self.points[node.point_ids]
                inside = np.all((pts >= lower) & (pts <= upper), axis=1)
                hits.append(node.point_ids[inside])
            else:
                stack.extend(node.children)
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(hits))

    def count_leaves_intersecting_sphere(
        self, center: np.ndarray, radius: float, *, kernel: str | None = None
    ) -> int:
        """Leaf pages an optimal k-NN search with this final sphere reads."""
        center = np.atleast_2d(np.asarray(center, dtype=np.float64))
        counts = get_kernel(kernel).count_knn(
            self.leaf_geometry, center, np.asarray([radius], dtype=np.float64)
        )
        return int(counts[0])

    def leaf_accesses_for_radius(
        self, centers: np.ndarray, radii: np.ndarray, *, kernel: str | None = None
    ) -> np.ndarray:
        """Batched sphere-intersection counts for a query workload."""
        centers = np.atleast_2d(np.asarray(centers, dtype=np.float64))
        radii = np.asarray(radii, dtype=np.float64)
        return get_kernel(kernel).count_knn(self.leaf_geometry, centers, radii)


class RTree(TreeQueries):
    """A bulk-loaded VAMSplit R*-tree over an ``(n, d)`` point matrix."""

    def __init__(self, points: np.ndarray, root: Node, topology: Topology):
        self.points = np.asarray(points, dtype=np.float64)
        self.root = root
        self.topology = topology

    @classmethod
    def bulk_load(
        cls,
        points: np.ndarray,
        c_data: int,
        c_dir: int,
        *,
        virtual_n: int | None = None,
        config: BulkLoadConfig | None = None,
    ) -> "RTree":
        """Build a tree; pass ``virtual_n`` to impose a larger dataset's
        topology on a sample (the mini-index of Section 3.1).

        Rejects NaN/inf coordinates and empty or ragged matrices with
        :class:`~repro.errors.InputValidationError` -- a non-finite
        coordinate would silently poison every MBR above it.
        """
        points = validate_points(points)
        n_virtual = virtual_n if virtual_n is not None else points.shape[0]
        topology = Topology(n_points=n_virtual, c_data=c_data, c_dir=c_dir)
        root = build_tree(points, topology, config)
        return cls(points, root, topology)

    def validate(self) -> None:
        """Check the structural invariants of a bulk-loaded tree.

        Raises ``AssertionError`` on the first violated invariant:
        point partition, MBR minimality/containment, level consistency,
        and capacity bounds (for unsampled trees).
        """
        seen: list[np.ndarray] = []
        unsampled = self.points.shape[0] == self.topology.n_points
        stack: list[Node] = [self.root]
        assert self.root.level == self.topology.height
        while stack:
            node = stack.pop()
            if node.is_leaf:
                assert node.level == 1
                if unsampled:
                    assert node.n_points <= self.topology.c_data
                if node.n_points:
                    seen.append(node.point_ids)
                    pts = self.points[node.point_ids]
                    assert node.mbr is not None
                    assert np.allclose(node.mbr.lower, pts.min(axis=0))
                    assert np.allclose(node.mbr.upper, pts.max(axis=0))
                else:
                    assert node.mbr is None
            else:
                assert 1 <= len(node.children)
                if unsampled:
                    assert len(node.children) <= self.topology.c_dir
                for child in node.children:
                    assert child.level == node.level - 1
                    if child.mbr is not None:
                        assert node.mbr is not None
                        assert np.all(node.mbr.lower <= child.mbr.lower)
                        assert np.all(child.mbr.upper <= node.mbr.upper)
                stack.extend(node.children)
        if seen:
            all_ids = np.sort(np.concatenate(seen))
            assert all_ids.shape[0] == self.points.shape[0], "points lost or duplicated"
            assert np.array_equal(all_ids, np.arange(self.points.shape[0]))
        # Node counts must match the shared topology exactly.
        for level in range(1, self.topology.height + 1):
            assert len(self.nodes_at_level(level)) == self.topology.nodes_at_level(level)
