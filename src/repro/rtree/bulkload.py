"""Top-down bulk loading of VAMSplit R*-tree page layouts.

This is the algorithm of Berchtold, Boehm & Kriegel (EDBT 1998) used by
the paper for both the on-disk index and the in-memory mini-index: the
tree is generated level-wise; at each node the required fanout is
computed from the subtree capacity, and the points are divided among the
children by recursive binary splits along the maximum-variance dimension
(yielding the VAMSplit R*-tree layout of White & Jain).

Mini-index construction (Section 3.1 of the paper) must reproduce the
*full* index's structure -- height, node counts, fanouts -- while
holding only a sample.  We achieve that exactly by threading a *virtual*
point count through the recursion: fanouts and division sizes are
computed on the virtual (full-data) counts from the shared
:class:`~repro.core.topology.Topology`, while the sample points are cut
at proportional ranks.  With ``virtual_n == len(points)`` this reduces
to the ordinary loader.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..core.topology import Topology, split_child_counts, subtree_capacity
from .geometry import MBR
from .node import InternalNode, LeafNode, Node
from .split import (
    DimensionRule,
    max_variance_dimension,
    midpoint_rank,
    partition_ids_at_rank,
)

__all__ = ["BulkLoadConfig", "build_tree", "build_subtree"]


@dataclass(frozen=True)
class BulkLoadConfig:
    """Tunable pieces of the bulk loader.

    ``rank_mode`` selects where each binary split cuts: ``"balanced"``
    is the VAMSplit division (proportional point counts, the paper's
    choice); ``"midpoint"`` cuts at the spatial middle of the split
    dimension, which is what uniform-data cost models assume and is
    provided for the ablation study.
    """

    dimension_rule: DimensionRule = field(default=max_variance_dimension)
    rank_mode: str = "balanced"

    def __post_init__(self) -> None:
        if self.rank_mode not in ("balanced", "midpoint"):
            raise ValueError(f"unknown rank_mode {self.rank_mode!r}")


def build_tree(
    points: np.ndarray,
    topology: Topology,
    config: BulkLoadConfig | None = None,
    *,
    stop_level: int = 1,
) -> Node:
    """Bulk load a tree over ``points`` with the given (virtual) topology.

    ``topology.n_points`` may exceed ``len(points)`` -- that is the
    mini-index case, where the structure of the full index is imposed on
    the sample.  ``stop_level > 1`` stops the recursion early, producing
    the *upper tree* of the phased predictors: nodes at that level
    become leaves holding all their points, with their full-dataset
    point quota recorded in ``virtual_n``.  The returned root is an
    object graph of :class:`~repro.rtree.node.InternalNode` /
    ``LeafNode``.
    """
    config = config or BulkLoadConfig()
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be (n, d), got shape {points.shape}")
    if points.shape[0] > topology.n_points:
        raise ValueError(
            f"{points.shape[0]} points exceed the topology's virtual count "
            f"{topology.n_points}"
        )
    if not 1 <= stop_level <= topology.height:
        raise ValueError(f"stop_level {stop_level} outside [1, {topology.height}]")
    ids = np.arange(points.shape[0], dtype=np.int64)
    return build_subtree(
        points, ids, topology.height, topology.n_points, topology, config,
        stop_level=stop_level,
    )


def build_subtree(
    points: np.ndarray,
    ids: np.ndarray,
    level: int,
    n_virtual: int,
    topology: Topology,
    config: BulkLoadConfig | None = None,
    *,
    stop_level: int = 1,
) -> Node:
    """Bulk load the subtree rooted at ``level`` over the given ids.

    The bulk-loading recursion is self-contained per node, so a lower
    tree (Section 4.4) over a resampled point set is built by calling
    this directly with the upper-tree leaf's level and virtual count.
    """
    config = config or BulkLoadConfig()
    if level == stop_level:
        mbr = MBR.of_points(points[ids]) if ids.shape[0] > 0 else None
        return LeafNode(point_ids=ids, mbr=mbr, level=level, virtual_n=n_virtual)

    children: list[Node] = []
    for part_ids, part_virtual in _divide(
        points, ids, level, n_virtual, topology, config
    ):
        children.append(
            build_subtree(
                points, part_ids, level - 1, part_virtual, topology, config,
                stop_level=stop_level,
            )
        )

    mbr: MBR | None = None
    for child in children:
        if child.mbr is not None:
            mbr = child.mbr if mbr is None else mbr.union(child.mbr)
    n_points = sum(child.n_points for child in children)
    return InternalNode(children=children, mbr=mbr, level=level, n_points=n_points)


def _divide(
    points: np.ndarray,
    ids: np.ndarray,
    level: int,
    n_virtual: int,
    topology: Topology,
    config: BulkLoadConfig,
) -> list[tuple[np.ndarray, int]]:
    """Divide a node's ids into its children's shares by binary splits."""
    child_cap = subtree_capacity(level - 1, topology.c_data, topology.c_dir)
    fanout = max(1, math.ceil(n_virtual / child_cap))
    parts: list[tuple[np.ndarray, int]] = []
    pending: list[tuple[np.ndarray, int, int]] = [(ids, n_virtual, fanout)]
    while pending:
        part_ids, part_virtual, part_fanout = pending.pop()
        if part_fanout == 1:
            parts.append((part_ids, part_virtual))
            continue
        left_virtual, right_virtual = split_child_counts(
            part_virtual, part_fanout, child_cap
        )
        rank = _split_rank(
            points, part_ids, part_virtual, left_virtual, part_fanout, child_cap, config
        )
        dim = config.dimension_rule(points[part_ids])
        left_ids, right_ids = partition_ids_at_rank(points, part_ids, dim, rank)
        if part_ids.shape[0] == part_virtual:
            # Unsampled build: virtual counts must track the actual
            # division (they differ under midpoint splits) so deeper
            # fanouts are computed from the true subtree sizes.
            left_virtual, right_virtual = rank, part_virtual - rank
        elif config.rank_mode == "midpoint" and part_ids.shape[0] > 0:
            # Sampled midpoint build: scale the observed split fraction
            # up to the virtual counts (clamped to the capacity bounds),
            # so the mini-index mirrors the midpoint index's structure
            # instead of VAMSplit's balanced one.
            f_left = part_fanout // 2
            f_right = part_fanout - f_left
            left_virtual = round(part_virtual * rank / part_ids.shape[0])
            left_virtual = min(left_virtual, f_left * child_cap)
            left_virtual = max(left_virtual, part_virtual - f_right * child_cap)
            left_virtual = max(min(left_virtual, part_virtual - f_right), f_left)
            right_virtual = part_virtual - left_virtual
        f_left = part_fanout // 2
        pending.append((right_ids, right_virtual, part_fanout - f_left))
        pending.append((left_ids, left_virtual, f_left))
    return parts


def _split_rank(
    points: np.ndarray,
    ids: np.ndarray,
    n_virtual: int,
    left_virtual: int,
    fanout: int,
    child_cap: int,
    config: BulkLoadConfig,
) -> int:
    """Actual-point rank at which to cut ``ids`` for this binary split."""
    n_actual = ids.shape[0]
    if config.rank_mode == "midpoint" and n_actual > 0:
        dim = config.dimension_rule(points[ids])
        rank = midpoint_rank(points, ids, dim)
    else:
        # Proportional mapping of the virtual division onto the sample.
        rank = round(n_actual * left_virtual / n_virtual)
    if n_actual == n_virtual:
        # Unsampled build: enforce the capacity constraints exactly so
        # no subtree overflows (matters only for midpoint mode; the
        # balanced division already satisfies them).
        f_left = fanout // 2
        f_right = fanout - f_left
        rank = min(rank, f_left * child_cap)
        rank = max(rank, n_actual - f_right * child_cap)
    return max(0, min(rank, n_actual))
