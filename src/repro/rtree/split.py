"""Split strategies for top-down bulk loading.

The VAMSplit R*-tree layout (White & Jain) is obtained by recursively
splitting each partition along its *maximum-variance* dimension at a
balanced rank.  The dimension rule is pluggable so the split-strategy
ablation (DESIGN.md Section 6) can swap in max-extent or round-robin
choices, and the rank rule can be switched from the balanced VAMSplit
division to a spatial midpoint split (the assumption made by the uniform
baseline models).

Rank selection uses ``numpy.argpartition`` -- the vectorized equivalent
of Hoare's *find* (quickselect) that the paper's bulk loader relies on.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "max_variance_dimension",
    "max_extent_dimension",
    "DimensionRule",
    "partition_ids_at_rank",
    "midpoint_rank",
]

DimensionRule = Callable[[np.ndarray], int]


def max_variance_dimension(points: np.ndarray) -> int:
    """The dimension with the largest variance (the VAMSplit choice)."""
    if points.shape[0] == 0:
        return 0
    return int(np.argmax(np.var(points, axis=0)))


def max_extent_dimension(points: np.ndarray) -> int:
    """The dimension with the largest extent (max - min)."""
    if points.shape[0] == 0:
        return 0
    return int(np.argmax(points.max(axis=0) - points.min(axis=0)))


def partition_ids_at_rank(
    points: np.ndarray, ids: np.ndarray, dim: int, rank: int
) -> tuple[np.ndarray, np.ndarray]:
    """Split ``ids`` so the ``rank`` smallest coordinates in ``dim`` go left.

    ``points`` is the global ``(N, d)`` matrix; ``ids`` indexes into it.
    Equivalent to sorting ``ids`` by ``points[ids, dim]`` and cutting at
    ``rank``, but in expected linear time via quickselect.
    """
    n = ids.shape[0]
    if not 0 <= rank <= n:
        raise ValueError(f"rank {rank} outside [0, {n}]")
    if rank == 0:
        return ids[:0], ids
    if rank == n:
        return ids, ids[:0]
    order = np.argpartition(points[ids, dim], rank - 1)
    return ids[order[:rank]], ids[order[rank:]]


def midpoint_rank(points: np.ndarray, ids: np.ndarray, dim: int) -> int:
    """The rank corresponding to a split at the spatial midpoint of ``dim``.

    Used by the midpoint-split ablation: this is what uniform-data cost
    models implicitly assume the index does.
    """
    coords = points[ids, dim]
    mid = (coords.min() + coords.max()) / 2.0
    return int(np.count_nonzero(coords <= mid))
