"""Best-first k-NN search over any MBR node graph.

Both the bulk-loaded tree (:class:`~repro.rtree.tree.RTree`) and the
dynamic R*-tree (:class:`~repro.rtree.rstar.RStarTree`) expose the same
node shape -- ``mbr``, ``is_leaf``, ``children`` / ``point_ids`` -- so
the optimal incremental NN algorithm of Hjaltason & Samet lives here
once.  A node is read only when its MINDIST does not exceed the current
k-th best distance, making leaf accesses minimal for the layout; that
optimality is what ties measured accesses to the paper's
sphere-intersection counts.
"""

from __future__ import annotations

import heapq
import itertools

import numpy as np

from .node import LeafNode, Node

__all__ = ["best_first_knn", "incremental_nn"]


def incremental_nn(points, root, query):
    """Yield ``(point_id, distance)`` in non-decreasing distance order.

    The full incremental variant of Hjaltason & Samet: the priority
    queue mixes nodes and individual points, so neighbors stream out
    lazily -- callers that stop after ``k`` results touch exactly the
    pages an optimal k-NN search would.
    """
    query = np.asarray(query, dtype=np.float64)
    if root is None or root.mbr is None:
        return
    counter = itertools.count()
    # Heap entries: (dist_sq, tiebreak, is_point, payload).
    heap = [(root.mbr.mindist_sq(query), next(counter), False, root)]
    while heap:
        dist_sq, _, is_point, payload = heapq.heappop(heap)
        if is_point:
            yield int(payload), float(np.sqrt(dist_sq))
            continue
        if payload.is_leaf:
            ids = np.asarray(payload.point_ids, dtype=np.int64)
            diffs = points[ids] - query
            dists_sq = np.einsum("nd,nd->n", diffs, diffs)
            for pid, dsq in zip(ids.tolist(), dists_sq.tolist()):
                heapq.heappush(heap, (dsq, next(counter), True, pid))
        else:
            for child in payload.children:
                if child.mbr is None:
                    continue
                heapq.heappush(
                    heap,
                    (child.mbr.mindist_sq(query), next(counter), False, child),
                )


def best_first_knn(
    points: np.ndarray,
    root: Node | None,
    query: np.ndarray,
    k: int,
    *,
    collect_leaves: bool = False,
) -> tuple[np.ndarray, np.ndarray, int, int, tuple[LeafNode, ...] | None]:
    """Optimal k-NN search; returns (ids, distances, leaf_accesses,
    node_accesses, accessed_leaves-or-None)."""
    query = np.asarray(query, dtype=np.float64)
    if k < 1:
        raise ValueError("k must be >= 1")
    collected: list[LeafNode] | None = [] if collect_leaves else None
    if root is None or root.mbr is None:
        return (
            np.empty(0, np.int64),
            np.empty(0),
            0,
            0,
            tuple(collected) if collected is not None else None,
        )

    counter = itertools.count()  # tie-break for the heap
    frontier: list[tuple[float, int, Node]] = [
        (root.mbr.mindist_sq(query), next(counter), root)
    ]
    # Max-heap (by negated distance) of the best k candidates so far.
    best: list[tuple[float, int]] = []
    kth_sq = np.inf
    leaf_accesses = 0
    node_accesses = 0

    while frontier and frontier[0][0] <= kth_sq:
        dist_sq, _, node = heapq.heappop(frontier)
        node_accesses += 1
        if node.is_leaf:
            leaf_accesses += 1
            if collected is not None:
                collected.append(node)
            ids = np.asarray(node.point_ids, dtype=np.int64)
            diffs = points[ids] - query
            dists_sq = np.einsum("nd,nd->n", diffs, diffs)
            for pid, dsq in zip(ids.tolist(), dists_sq.tolist()):
                if len(best) < k:
                    heapq.heappush(best, (-dsq, pid))
                elif dsq < -best[0][0]:
                    heapq.heapreplace(best, (-dsq, pid))
            if len(best) == k:
                kth_sq = -best[0][0]
        else:
            for child in node.children:
                if child.mbr is None:
                    continue
                child_dist = child.mbr.mindist_sq(query)
                if child_dist <= kth_sq:
                    heapq.heappush(frontier, (child_dist, next(counter), child))

    order = sorted((-neg, pid) for neg, pid in best)
    ids = np.array([pid for _, pid in order], dtype=np.int64)
    dists = np.sqrt(np.array([dsq for dsq, _ in order]))
    return (
        ids,
        dists,
        leaf_accesses,
        node_accesses,
        tuple(collected) if collected is not None else None,
    )
