"""A k-d-B-tree: space-partitioning pages (Robinson 1981).

The third member of Section 4.7's list implemented here, and the
sharpest contrast to the R-tree family: a k-d-B-tree's pages are
*disjoint boxes that tile the dataspace*, produced by recursive median
splits -- there is no minimal-bounding step.  That changes what
sampling has to estimate: the page boundaries are split *planes*
(sample medians converge to data medians), not MBRs, so the pages of a
mini k-d-B-tree do not shrink and Theorem 1's compensation is neither
needed nor applicable.  The experiments use this to show that the
compensation factor is specifically an artifact of data-partitioning
(MBR-trimming) indexes.

The implementation reuses the node graph: internal nodes are binary
(each records one split), leaves carry their region box as ``mbr``,
clipped to the dataset's bounding box so the tiling is exact.
"""

from __future__ import annotations

import numpy as np

from ..kernels.geometry import LeafGeometry
from ..kernels.registry import get_kernel
from .geometry import MBR
from .node import InternalNode, LeafNode, Node
from .search import best_first_knn
from .split import max_variance_dimension
from .tree import KNNResult

__all__ = ["KDBTree"]


class KDBTree:
    """Bulk-loaded k-d-B-tree over an ``(n, d)`` point matrix.

    ``c_data`` bounds the points per data page.  ``virtual_n`` imposes a
    larger dataset's split schedule on a sample (the mini-index trick):
    split ranks are chosen proportionally, so the mini tree has exactly
    the page count the full tree would have.
    """

    def __init__(self, points: np.ndarray, root: Node, c_data: int):
        self.points = np.asarray(points, dtype=np.float64)
        self.root = root
        self.c_data = c_data
        self._leaves: list[LeafNode] | None = None
        self._geometry: LeafGeometry | None = None

    @classmethod
    def bulk_load(
        cls,
        points: np.ndarray,
        c_data: int,
        *,
        virtual_n: int | None = None,
        region: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> "KDBTree":
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        if c_data < 1:
            raise ValueError("c_data must be >= 1")
        n_virtual = virtual_n if virtual_n is not None else points.shape[0]
        if n_virtual < points.shape[0]:
            raise ValueError("virtual_n must be >= the sample size")
        if region is None:
            lower = points.min(axis=0)
            upper = points.max(axis=0)
        else:
            lower, upper = (np.asarray(region[0], dtype=np.float64),
                            np.asarray(region[1], dtype=np.float64))
        ids = np.arange(points.shape[0], dtype=np.int64)
        root = _build(points, ids, n_virtual, lower, upper, c_data)
        return cls(points, root, c_data)

    # ------------------------------------------------------------------

    @property
    def dim(self) -> int:
        return int(self.points.shape[1])

    @property
    def leaves(self) -> list[LeafNode]:
        if self._leaves is None:
            self._leaves = list(self.root.iter_leaves())
        return self._leaves

    @property
    def n_leaves(self) -> int:
        return len(self.leaves)

    @property
    def leaf_geometry(self) -> LeafGeometry:
        """Stacked region geometry of every page (pages tile the space,
        so none is skipped -- even empty ones exist as regions)."""
        if self._geometry is None:
            self._geometry = LeafGeometry.from_leaves(self.leaves, self.dim)
        return self._geometry

    def invalidate_caches(self) -> None:
        """Drop the cached leaf list and geometry after a graph mutation."""
        self._leaves = None
        self._geometry = None

    def leaf_corners(self) -> tuple[np.ndarray, np.ndarray]:
        """The stacked ``(lower, upper)`` page corners, for array callers."""
        return self.leaf_geometry.corners

    def knn(self, query: np.ndarray, k: int) -> KNNResult:
        ids, dists, leaf_accesses, node_accesses, _ = best_first_knn(
            self.points, self.root, query, k
        )
        return KNNResult(ids, dists, leaf_accesses, node_accesses)

    def leaf_accesses_for_radius(
        self, centers: np.ndarray, radii: np.ndarray, *, kernel: str | None = None
    ) -> np.ndarray:
        centers = np.atleast_2d(np.asarray(centers, dtype=np.float64))
        radii = np.atleast_1d(np.asarray(radii, dtype=np.float64))
        return get_kernel(kernel).count_knn(self.leaf_geometry, centers, radii)

    def validate(self) -> None:
        """Pages are disjoint, tile the root region, respect capacity
        (for unsampled trees), and contain exactly their points."""
        lower, upper = self.leaf_corners()
        from .geometry import volume

        root_volume = float(volume(self.root.mbr.lower, self.root.mbr.upper))
        tiled = float(volume(lower, upper).sum())
        assert abs(tiled - root_volume) <= 1e-9 * max(1.0, abs(root_volume)), (
            tiled,
            root_volume,
        )
        seen: list[np.ndarray] = []
        for leaf in self.leaves:
            if leaf.n_points:
                members = self.points[leaf.point_ids]
                assert np.all(members >= leaf.mbr.lower - 1e-9)
                assert np.all(members <= leaf.mbr.upper + 1e-9)
                seen.append(leaf.point_ids)
        ids = np.sort(np.concatenate(seen)) if seen else np.empty(0, np.int64)
        assert np.array_equal(ids, np.arange(self.points.shape[0]))


def _build(
    points: np.ndarray,
    ids: np.ndarray,
    n_virtual: int,
    lower: np.ndarray,
    upper: np.ndarray,
    c_data: int,
) -> Node:
    if n_virtual <= c_data:
        return LeafNode(
            point_ids=ids,
            mbr=MBR(lower, upper),
            level=1,
            virtual_n=n_virtual,
        )
    n_actual = ids.shape[0]
    if n_actual > 0:
        dim = max_variance_dimension(points[ids])
        left_virtual = n_virtual // 2
        rank = round(n_actual * left_virtual / n_virtual)
        rank = max(0, min(rank, n_actual))
        order = np.argsort(points[ids, dim], kind="stable")
        sorted_ids = ids[order]
        left_ids, right_ids = sorted_ids[:rank], sorted_ids[rank:]
        # The split plane sits between the two groups (median split).
        if rank == 0:
            cut = float(points[sorted_ids[0], dim])
        elif rank == n_actual:
            cut = float(points[sorted_ids[-1], dim])
        else:
            cut = float(
                (points[sorted_ids[rank - 1], dim]
                 + points[sorted_ids[rank], dim]) / 2.0
            )
        cut = float(np.clip(cut, lower[dim], upper[dim]))
    else:
        # No sample points left: split the region spatially in half.
        dim = int(np.argmax(upper - lower))
        left_virtual = n_virtual // 2
        cut = float((lower[dim] + upper[dim]) / 2.0)
        left_ids = right_ids = ids
    left_upper = upper.copy()
    left_upper[dim] = cut
    right_lower = lower.copy()
    right_lower[dim] = cut
    left = _build(points, left_ids, left_virtual, lower, left_upper, c_data)
    right = _build(
        points, right_ids, n_virtual - left_virtual, right_lower, upper, c_data
    )
    node = InternalNode(
        children=[left, right],
        mbr=MBR(lower, upper),
        level=max(left.level, right.level) + 1,
        n_points=left.n_points + right.n_points,
    )
    return node
