"""Node types of the bulk-loaded R-tree.

The tree is a plain object graph: internal nodes hold children, leaves
hold the ids of the points they store (indices into the tree's point
matrix).  Nodes may be *empty* (no points below them) when a mini-index
is built on a sparse sample while keeping the full index's topology; an
empty node has ``mbr is None`` and is skipped by searches and by
intersection counting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

import numpy as np

from .geometry import MBR

__all__ = ["LeafNode", "InternalNode", "Node"]


@dataclass
class LeafNode:
    """A data page: the ids of its points and their bounding box.

    When the bulk loader is stopped early (``stop_level > 1``, the
    *upper tree* of Section 4.2), leaves sit at that level and
    ``virtual_n`` records how many full-dataset points the subtree
    rooted here would hold -- the quantity the phased predictors need
    for compensation and resampling quotas.
    """

    point_ids: np.ndarray
    mbr: Optional[MBR]
    level: int = 1
    virtual_n: int = 0

    @property
    def n_points(self) -> int:
        return int(self.point_ids.shape[0])

    @property
    def is_leaf(self) -> bool:
        return True

    def iter_leaves(self) -> Iterator["LeafNode"]:
        yield self


@dataclass
class InternalNode:
    """A directory page: children one level down and their union MBR."""

    children: list["Node"]
    mbr: Optional[MBR]
    level: int
    n_points: int = field(default=0)

    @property
    def is_leaf(self) -> bool:
        return False

    @property
    def fanout(self) -> int:
        return len(self.children)

    def iter_leaves(self) -> Iterator[LeafNode]:
        for child in self.children:
            yield from child.iter_leaves()


Node = Union[LeafNode, InternalNode]
