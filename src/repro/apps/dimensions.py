"""Application: determining the optimal indexed dimensionality (§6.2).

Instead of indexing all ``d`` dimensions, the index can store only the
first ``m`` (KLT-sorted, so the most informative) dimensions, with the
full vectors kept in an *object server*.  The optimal multi-step k-NN
algorithm of Seidl & Kriegel then accesses an index page exactly when
its reduced-space MINDIST does not exceed the query's full-space k-NN
distance (reduced-space distances lower-bound full-space ones, so the
filter is lossless).

For each candidate ``m`` this sweep predicts the number of *index* page
accesses (Figure 14): points are projected onto their leading ``m``
dimensions, page capacities grow because projected points are smaller,
and the prediction counts leaf pages whose projected MBR intersects the
sphere with the *full-dimensional* radius.  The number of object-server
candidates (points passing the filter) is predicted from the same
sample, scaled by the sampling ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.predictor import IndexCostPredictor
from ..core.topology import page_capacities
from ..disk.accounting import DiskParameters, IOCost
from ..kernels.geometry import LeafGeometry
from ..kernels.registry import get_kernel
from ..runtime.batch import BatchRunner, BatchTask
from ..runtime.budget import Budget
from ..rtree.tree import RTree
from ..workload.queries import KNNWorkload

__all__ = ["DimensionPoint", "DimensionSweep", "sweep_index_dimensions"]


@dataclass(frozen=True)
class DimensionPoint:
    """Predicted/measured index accesses with ``m`` indexed dimensions.

    ``status`` is ``"ok"`` for a completed cell; budget-governed sweeps
    mark unfinished cells ``"over_budget"`` / ``"rejected"`` /
    ``"failed"`` with NaN accesses (see
    :class:`~repro.runtime.batch.BatchRunner`).
    """

    n_dimensions: int
    c_data: int
    predicted_accesses: float
    measured_accesses: float | None = None
    predicted_candidates: float | None = None
    measured_candidates: float | None = None
    status: str = "ok"
    #: the prediction's charged ledger -- what a budget-governed sweep's
    #: admission control observes between cells
    io_cost: IOCost | None = None


@dataclass(frozen=True)
class DimensionSweep:
    points: tuple[DimensionPoint, ...]

    @property
    def completed(self) -> tuple[DimensionPoint, ...]:
        return tuple(p for p in self.points if p.status == "ok")


def _projected_workload(workload: KNNWorkload, m: int) -> KNNWorkload:
    """The workload in the reduced space, keeping full-space radii."""
    return KNNWorkload(
        k=workload.k,
        query_ids=workload.query_ids,
        queries=workload.queries[:, :m],
        radii=workload.radii,
    )


def _candidate_counts(
    projected: np.ndarray, workload: KNNWorkload, chunk_rows: int = 65536
) -> np.ndarray:
    """Points passing the lower-bound filter, per query (exact)."""
    counts = np.zeros(workload.n_queries, dtype=np.int64)
    radii_sq = workload.radii**2
    queries = workload.queries[:, : projected.shape[1]]
    query_sq = np.einsum("qd,qd->q", queries, queries)
    for start in range(0, projected.shape[0], chunk_rows):
        block = projected[start : start + chunk_rows]
        block_sq = np.einsum("nd,nd->n", block, block)
        dists_sq = query_sq[:, None] + block_sq[None, :] - 2.0 * (queries @ block.T)
        counts += np.count_nonzero(dists_sq <= radii_sq[:, None], axis=1)
    return counts


def sweep_index_dimensions(
    data: np.ndarray,
    workload: KNNWorkload,
    dimensions: tuple[int, ...],
    *,
    memory: int = 10_000,
    disk: DiskParameters | None = None,
    method: str = "resampled",
    measure: bool = False,
    candidates: bool = False,
    seed: int = 0,
    budget: Budget | None = None,
    cell_deadline_s: float | None = None,
    max_workers: int = 4,
    kernel: str | None = None,
    coalesce: bool = False,
) -> DimensionSweep:
    """Predict index page accesses for each candidate prefix length.

    ``data`` must already be KLT-transformed (leading columns carry the
    most variance); ``dimensions`` are the prefix lengths to evaluate.

    ``budget`` / ``cell_deadline_s`` run the sweep through the
    admission-controlled :class:`~repro.runtime.batch.BatchRunner`
    (see :func:`~repro.apps.pagesize.sweep_page_sizes`); unfinished
    cells are reported with a non-``"ok"`` status instead of wedging
    the sweep.  Without either, cells run serially, bit-identical to
    the ungoverned behavior.

    ``coalesce=True`` answers the measured curve through the fused
    ``count_grid`` kernel entry point: every cell sharing a built
    geometry becomes one row of a single grid dispatch, computed up
    front, instead of a per-cell ``count_knn`` re-dispatch.  Rows are
    bit-identical to the per-cell dispatch by the fused-grid contract,
    so the knob only changes speed.
    """
    data = np.asarray(data, dtype=np.float64)
    disk = disk or DiskParameters()
    for m in dimensions:
        if not 1 <= m <= data.shape[1]:
            raise ValueError(f"cannot index {m} of {data.shape[1]} dimensions")

    # Distinct prefixes can still share (m, c_data): the measured tree's
    # cached geometry is reused across such cells.
    measured_geometry: dict[tuple[int, int], LeafGeometry] = {}

    # Coalesced measured pre-pass: the reduced query matrix differs per
    # prefix length, so only cells with the same ``m`` (and hence the
    # same rounded capacities) can share a fused dispatch; each group
    # still goes through count_grid so duplicate prefixes cost one scan.
    fused_rows: dict[int, np.ndarray] = {}
    if measure and coalesce:
        by_key: dict[tuple[int, int, int], list[int]] = {}
        for m in dimensions:
            c_data, c_dir = page_capacities(
                disk.page_bytes, m, bytes_per_value=disk.bytes_per_value
            )
            by_key.setdefault((m, c_data, c_dir), []).append(m)
        for (m, c_data, c_dir), members in by_key.items():
            projected = np.ascontiguousarray(data[:, :m])
            reduced = _projected_workload(workload, m)
            geometry = RTree.bulk_load(projected, c_data, c_dir).leaf_geometry
            measured_geometry[(m, c_data)] = geometry
            grid = np.tile(reduced.radii, (len(members), 1))
            rows = get_kernel(kernel).count_grid(
                geometry, reduced.queries, grid
            )
            for row, member in zip(rows, members):
                fused_rows[member] = row

    def cell(m: int) -> DimensionPoint:
        projected = np.ascontiguousarray(data[:, :m])
        reduced_workload = _projected_workload(workload, m)
        predictor = IndexCostPredictor(
            dim=m, memory=memory, disk_parameters=disk, kernel=kernel
        )
        prediction = predictor.predict(
            projected, reduced_workload, method=method, seed=seed
        )
        measured_accesses: float | None = None
        measured_candidates: float | None = None
        predicted_candidates: float | None = None
        if measure:
            if coalesce:
                counts = fused_rows[m]
            else:
                key = (m, predictor.c_data)
                geometry = measured_geometry.get(key)
                if geometry is None:
                    geometry = RTree.bulk_load(
                        projected, predictor.c_data, predictor.c_dir
                    ).leaf_geometry
                    measured_geometry[key] = geometry
                counts = get_kernel(kernel).count_knn(
                    geometry, reduced_workload.queries, reduced_workload.radii
                )
            measured_accesses = float(np.mean(counts))
        if candidates:
            measured_candidates = float(
                np.mean(_candidate_counts(projected, reduced_workload))
            )
            # Sample-based estimate: candidates among a sample, rescaled.
            rng = np.random.default_rng(seed)
            n_sample = min(memory, projected.shape[0])
            sample_ids = rng.choice(projected.shape[0], n_sample, replace=False)
            sample_counts = _candidate_counts(projected[sample_ids], reduced_workload)
            predicted_candidates = float(
                np.mean(sample_counts) * projected.shape[0] / n_sample
            )
        return DimensionPoint(
            n_dimensions=m,
            c_data=predictor.c_data,
            predicted_accesses=prediction.mean_accesses,
            measured_accesses=measured_accesses,
            predicted_candidates=predicted_candidates,
            measured_candidates=measured_candidates,
            io_cost=prediction.io_cost,
        )

    if budget is None and cell_deadline_s is None:
        return DimensionSweep(points=tuple(cell(m) for m in dimensions))

    runner = BatchRunner(
        budget=budget, task_deadline_s=cell_deadline_s,
        max_workers=max_workers,
    )
    report = runner.run([
        BatchTask(name=str(m), fn=lambda m=m: cell(m)) for m in dimensions
    ])
    points: list[DimensionPoint] = []
    for m, task in zip(dimensions, report.tasks):
        if task.status == "ok":
            points.append(task.result)
        else:
            points.append(DimensionPoint(
                n_dimensions=m, c_data=0,
                predicted_accesses=float("nan"),
                status=task.status,
            ))
    return DimensionSweep(points=tuple(points))
