"""Application: determining the optimal index page size (Section 6.1).

Small pages mean many expensive random seeks; large pages drag
unnecessary points through the disk interface.  The optimum lies in
between, and finding it by building the real index once per candidate
page size takes hours -- the prediction model finds it in seconds
(Figure 13: the model tracks the measured cost closely and identifies
the same optimal page size, 64 KB for the LANDSAT/TEXTURE60 data).

For each candidate page size the sweep derives the page capacities the
geometry dictates, predicts the mean leaf accesses per query with the
chosen sampling predictor, and prices a query as ``accesses * (t_seek +
t_xfer(page))`` -- all accesses random, as the paper confirms they are
on the real index.  Optionally the measured curve (full index, exact
sphere counts) is computed alongside.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.predictor import IndexCostPredictor
from ..disk.accounting import DiskParameters, IOCost
from ..kernels.geometry import LeafGeometry
from ..kernels.registry import get_kernel
from ..core.topology import page_capacities
from ..runtime.batch import BatchRunner, BatchTask
from ..runtime.budget import Budget
from ..rtree.tree import RTree
from ..workload.queries import KNNWorkload

__all__ = ["PageSizePoint", "PageSizeSweep", "sweep_page_sizes"]

DEFAULT_PAGE_SIZES = (4096, 8192, 16384, 32768, 65536, 131072, 262144)


@dataclass(frozen=True)
class PageSizePoint:
    """Predicted (and optionally measured) query cost at one page size.

    ``status`` is ``"ok"`` for a completed cell; a budget-governed sweep
    marks cells it could not finish ``"over_budget"``, ``"rejected"``
    (never admitted -- the global budget was spent), or ``"failed"``,
    with NaN costs.  The optimum properties only consider ``"ok"``
    cells.
    """

    page_bytes: int
    c_data: int
    c_dir: int
    predicted_accesses: float
    predicted_seconds: float
    measured_accesses: float | None = None
    measured_seconds: float | None = None
    status: str = "ok"
    #: the prediction's charged ledger -- what a budget-governed sweep's
    #: admission control observes between cells
    io_cost: IOCost | None = None


@dataclass(frozen=True)
class PageSizeSweep:
    """The full sweep plus the located optima."""

    points: tuple[PageSizePoint, ...]

    @property
    def predicted_optimum(self) -> PageSizePoint | None:
        ok = [p for p in self.points if p.status == "ok"]
        if not ok:
            return None
        return min(ok, key=lambda p: p.predicted_seconds)

    @property
    def measured_optimum(self) -> PageSizePoint | None:
        measured = [
            p for p in self.points
            if p.status == "ok" and p.measured_seconds is not None
        ]
        if not measured:
            return None
        return min(measured, key=lambda p: p.measured_seconds)


def _query_seconds(accesses: float, disk: DiskParameters) -> float:
    """Cost of one query: every leaf access is one random page read."""
    return accesses * (disk.t_seek + disk.t_xfer)


def sweep_page_sizes(
    data: np.ndarray,
    workload: KNNWorkload,
    *,
    memory: int = 10_000,
    page_sizes: tuple[int, ...] = DEFAULT_PAGE_SIZES,
    base_disk: DiskParameters | None = None,
    method: str = "resampled",
    measure: bool = False,
    seed: int = 0,
    budget: Budget | None = None,
    cell_deadline_s: float | None = None,
    max_workers: int = 4,
    kernel: str | None = None,
    coalesce: bool = False,
) -> PageSizeSweep:
    """Predict per-query I/O cost across candidate page sizes.

    ``base_disk`` fixes the physical drive (seek time and bandwidth);
    each candidate page size rescales the transfer time accordingly.
    With ``measure=True`` the exact per-size access counts are computed
    from a fully built index for comparison (slow -- that is the point
    of the application).

    A ``budget`` (global wall-clock and I/O caps across the whole sweep)
    or ``cell_deadline_s`` (per-cell wall-clock cap) runs the sweep
    through the admission-controlled
    :class:`~repro.runtime.batch.BatchRunner` with ``max_workers``
    concurrent cells: pathological cells come back marked
    ``over_budget`` / ``rejected`` / ``failed`` instead of wedging the
    sweep, and :attr:`PageSizeSweep.predicted_optimum` skips them.
    Without either, cells run serially and the sweep is bit-identical to
    the ungoverned behavior.

    ``kernel`` selects the counting backend for both the predictions and
    the measured curve; all kernels count identically, so it only
    changes the sweep's speed.

    ``coalesce=True`` routes the measured curve through the fused
    ``count_grid`` kernel entry point: cells sharing a built geometry
    are answered as the rows of one (queries x radii) grid dispatch
    instead of re-dispatching ``count_knn`` per cell.  The fused-grid
    contract keeps every row bit-identical to the per-cell dispatch,
    so the sweep's numbers cannot change -- off (the identity default)
    and on differ only in speed.
    """
    data = np.asarray(data, dtype=np.float64)
    base_disk = base_disk or DiskParameters()

    # Candidate page sizes frequently round to the same (c_data, c_dir)
    # capacities; the measured path shares one built tree's cached leaf
    # geometry across those cells instead of rebuilding and restacking.
    # (LeafGeometry is immutable, so concurrent cells may share it; a
    # rare duplicate build under races is only wasted work.)
    measured_geometry: dict[tuple[int, int], LeafGeometry] = {}

    def measured_counts(c_data: int, c_dir: int) -> np.ndarray:
        geometry = measured_geometry.get((c_data, c_dir))
        if geometry is None:
            geometry = RTree.bulk_load(data, c_data, c_dir).leaf_geometry
            measured_geometry[(c_data, c_dir)] = geometry
        return get_kernel(kernel).count_knn(
            geometry, workload.queries, workload.radii
        )

    # The coalesced measured path: group the cells by the capacities
    # their page size rounds to, build each distinct geometry once, and
    # answer every member cell as one row of a single fused count_grid
    # dispatch.  Computed up front -- the radius grid is known before
    # any cell runs -- so both the serial and the governed sweep read
    # from it.
    fused_rows: dict[int, np.ndarray] = {}
    if measure and coalesce:
        by_caps: dict[tuple[int, int], list[int]] = {}
        for page_bytes in page_sizes:
            disk = base_disk.with_page_bytes(page_bytes)
            caps = page_capacities(
                disk.page_bytes, data.shape[1],
                bytes_per_value=disk.bytes_per_value,
            )
            by_caps.setdefault(caps, []).append(page_bytes)
        for (c_data, c_dir), members in by_caps.items():
            geometry = RTree.bulk_load(data, c_data, c_dir).leaf_geometry
            measured_geometry[(c_data, c_dir)] = geometry
            grid = np.tile(workload.radii, (len(members), 1))
            rows = get_kernel(kernel).count_grid(
                geometry, workload.queries, grid
            )
            for row, page_bytes in zip(rows, members):
                fused_rows[page_bytes] = row

    def cell(page_bytes: int) -> PageSizePoint:
        disk = base_disk.with_page_bytes(page_bytes)
        predictor = IndexCostPredictor(
            dim=data.shape[1], memory=memory, disk_parameters=disk,
            kernel=kernel,
        )
        prediction = predictor.predict(data, workload, method=method, seed=seed)
        measured_accesses: float | None = None
        measured_seconds: float | None = None
        if measure:
            if coalesce:
                counts = fused_rows[page_bytes]
            else:
                counts = measured_counts(predictor.c_data, predictor.c_dir)
            measured_accesses = float(np.mean(counts))
            measured_seconds = _query_seconds(measured_accesses, disk)
        return PageSizePoint(
            page_bytes=page_bytes,
            c_data=predictor.c_data,
            c_dir=predictor.c_dir,
            predicted_accesses=prediction.mean_accesses,
            predicted_seconds=_query_seconds(prediction.mean_accesses, disk),
            measured_accesses=measured_accesses,
            measured_seconds=measured_seconds,
            io_cost=prediction.io_cost,
        )

    if budget is None and cell_deadline_s is None:
        return PageSizeSweep(
            points=tuple(cell(page_bytes) for page_bytes in page_sizes)
        )

    runner = BatchRunner(
        budget=budget, task_deadline_s=cell_deadline_s,
        max_workers=max_workers,
    )
    report = runner.run([
        BatchTask(name=str(page_bytes), fn=lambda pb=page_bytes: cell(pb))
        for page_bytes in page_sizes
    ])
    points: list[PageSizePoint] = []
    for page_bytes, task in zip(page_sizes, report.tasks):
        if task.status == "ok":
            points.append(task.result)
        else:
            points.append(PageSizePoint(
                page_bytes=page_bytes, c_data=0, c_dir=0,
                predicted_accesses=float("nan"),
                predicted_seconds=float("nan"),
                status=task.status,
            ))
    return PageSizeSweep(points=tuple(points))
