"""Index-tuning applications built on the prediction model."""

from .dimensions import DimensionPoint, DimensionSweep, sweep_index_dimensions
from .pagesize import PageSizePoint, PageSizeSweep, sweep_page_sizes

__all__ = [
    "DimensionPoint",
    "DimensionSweep",
    "sweep_index_dimensions",
    "PageSizePoint",
    "PageSizeSweep",
    "sweep_page_sizes",
]
