"""Experiment harness shared by the benchmark suite."""

from .config import experiment_queries, experiment_scale
from .runner import ExperimentSetup, get_setup, pearson_correlation
from .tables import format_seconds, format_signed_percent, format_table

__all__ = [
    "experiment_queries",
    "experiment_scale",
    "ExperimentSetup",
    "get_setup",
    "pearson_correlation",
    "format_seconds",
    "format_signed_percent",
    "format_table",
]
