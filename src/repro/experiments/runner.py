"""Shared experiment plumbing for the benchmark harness.

``get_setup`` assembles (and caches) everything an experiment needs for
one dataset: the synthetic analogue points, the density-biased k-NN
workload, a configured :class:`IndexCostPredictor`, and the measured
on-disk ground truth (built index, build cost, per-query leaf accesses,
query I/O).  Ground truth is by far the most expensive piece, so the
cache keys on the full parameter tuple and benchmarks across files
share it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..core.predictor import IndexCostPredictor
from ..data import datasets
from ..disk.accounting import IOCost
from ..ondisk.builder import OnDiskIndex
from ..ondisk.measure import MeasurementResult, measure_knn
from ..runtime.batch import BatchReport, BatchRunner, BatchTask
from ..runtime.budget import Budget
from ..workload.queries import KNNWorkload
from .config import DEFAULT_K, DEFAULT_MEMORY_FRACTION

__all__ = [
    "ExperimentSetup",
    "get_setup",
    "pearson_correlation",
    "run_prediction_grid",
]


@dataclass(frozen=True)
class ExperimentSetup:
    """One dataset's experiment context, ground truth included."""

    name: str
    points: np.ndarray
    workload: KNNWorkload
    predictor: IndexCostPredictor
    index: OnDiskIndex
    measurement: MeasurementResult

    @property
    def measured_mean(self) -> float:
        return self.measurement.mean_accesses

    @property
    def build_cost(self) -> IOCost:
        return self.index.build_cost

    @property
    def ondisk_total_cost(self) -> IOCost:
        """Build + query I/O: what Table 3 reports as "on-disk"."""
        return self.index.build_cost + self.measurement.io_cost


@lru_cache(maxsize=8)
def get_setup(
    dataset: str = "TEXTURE60",
    *,
    scale: float = 0.1,
    n_queries: int = 200,
    k: int = DEFAULT_K,
    memory: int | None = None,
    seed: int = 1,
) -> ExperimentSetup:
    """Build (once) the full experiment context for a dataset analogue.

    ``memory`` defaults to the paper's Table 3 ratio (M = 10,000 for
    N = 275,465) applied to the scaled cardinality.
    """
    points = datasets.load(dataset, scale=scale, seed=seed)
    if memory is None:
        # The paper's Table 3 ratio, floored at 2,000 points: below that
        # the upper tree's per-leaf sample gets too thin to define page
        # geometry (the paper's own M=1,000 runs lean on N=275k).
        memory = max(2_000, math.ceil(points.shape[0] * DEFAULT_MEMORY_FRACTION))
    predictor = IndexCostPredictor(dim=points.shape[1], memory=memory)
    workload = predictor.make_workload(points, n_queries, k, seed=seed)
    index = predictor.build_ondisk(points)
    measurement = measure_knn(index, workload)
    return ExperimentSetup(
        name=dataset,
        points=points,
        workload=workload,
        predictor=predictor,
        index=index,
        measurement=measurement,
    )


def run_prediction_grid(
    predictor: IndexCostPredictor,
    points: np.ndarray,
    workload: KNNWorkload,
    methods: tuple[str, ...] = ("resampled", "cutoff", "mini"),
    *,
    budget: Budget | None = None,
    task_deadline_s: float | None = None,
    max_workers: int = 2,
    seed: int = 0,
) -> BatchReport:
    """Run one prediction per method under a single global budget.

    The benchmark harness compares methods side by side; on a flaky or
    slow configuration one method must not wedge the whole comparison.
    Each method becomes one :class:`~repro.runtime.batch.BatchTask`;
    the :class:`~repro.runtime.batch.BatchRunner` enforces the global
    ``budget`` (wall-clock horizon, observed charged-I/O cap) and the
    per-method ``task_deadline_s``, so the returned
    :class:`~repro.runtime.batch.BatchReport` always accounts for every
    method -- ``ok`` with its result, or an explicit ``over_budget`` /
    ``failed`` / ``rejected`` verdict.
    """
    tasks = [
        BatchTask(
            name=method,
            fn=lambda m=method: predictor.predict(
                points, workload, method=m, seed=seed
            ),
        )
        for method in methods
    ]
    runner = BatchRunner(
        budget=budget, task_deadline_s=task_deadline_s,
        max_workers=max_workers,
    )
    return runner.run(tasks)


def pearson_correlation(predicted: np.ndarray, measured: np.ndarray) -> float:
    """Correlation between per-query predictions and measurements
    (the quantity Figures 11 and 12 visualize)."""
    predicted = np.asarray(predicted, dtype=np.float64)
    measured = np.asarray(measured, dtype=np.float64)
    if predicted.shape != measured.shape or predicted.size < 2:
        raise ValueError("need two equal-length series with >= 2 entries")
    if predicted.std() == 0 or measured.std() == 0:
        return 0.0
    return float(np.corrcoef(predicted, measured)[0, 1])
