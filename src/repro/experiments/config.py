"""Experiment sizing knobs.

The paper's full-size experiments (275k x 60-d points, 500 queries,
full on-disk builds) take a while in pure Python, so the benchmark
harness runs a proportionally scaled-down configuration by default and
honors environment variables for full-fidelity runs:

``REPRO_SCALE``    fraction of each dataset's paper cardinality
                   (default 0.1; use 1.0 for the paper's sizes)
``REPRO_QUERIES``  queries per workload (default 200; paper uses 500)

Scaled runs preserve every *shape* claim (who wins, error signs,
order-of-magnitude speedups); absolute page counts shrink with the
data.
"""

from __future__ import annotations

import os

__all__ = ["experiment_scale", "experiment_queries", "DEFAULT_K", "DEFAULT_MEMORY_FRACTION"]

DEFAULT_K = 21  # the paper's 21-NN queries
# Table 3 uses M = 10,000 for N = 275,465: keep the same M/N ratio when scaling.
DEFAULT_MEMORY_FRACTION = 10_000 / 275_465


def experiment_scale() -> float:
    """Dataset scale factor from ``REPRO_SCALE`` (default 0.1)."""
    value = float(os.environ.get("REPRO_SCALE", "0.1"))
    if not 0 < value <= 1:
        raise ValueError(f"REPRO_SCALE must be in (0, 1], got {value}")
    return value


def experiment_queries() -> int:
    """Workload size from ``REPRO_QUERIES`` (default 200)."""
    value = int(os.environ.get("REPRO_QUERIES", "200"))
    if value < 1:
        raise ValueError(f"REPRO_QUERIES must be positive, got {value}")
    return value
