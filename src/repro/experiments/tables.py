"""Plain-text table rendering for the benchmark harness.

The benchmarks print the same rows the paper's tables and figure series
report; this module keeps that output aligned and consistent.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_seconds", "format_signed_percent"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    n_cols = max(len(row) for row in cells)
    widths = [0] * n_cols
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(c.ljust(w) for c, w in zip(cells[0], widths)).rstrip()
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def format_seconds(seconds: float) -> str:
    """Human-scale duration: '4,460.193 s' style, as in Table 3."""
    return f"{seconds:,.3f} s"


def format_signed_percent(fraction: float) -> str:
    """Signed relative error: '-32%' / '+3%', as in Table 3."""
    return f"{fraction * 100:+.0f}%"
