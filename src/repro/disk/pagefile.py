"""A paged file of points on the simulated disk.

``PointFile`` stores an ``(n, d)`` point matrix row-major in ``B``-point
pages (``B`` derived from the disk's page size and the dimensionality,
Table 2's ``B``).  Every read and write is charged to the owning
:class:`~repro.disk.device.SimulatedDisk` at page granularity, so the
on-disk index builder, the dataset scans of the predictors, and the
resampling spill areas all produce the seek/transfer counts the paper
tabulates.

The actual floats live in an in-process numpy buffer -- the simulation
is about *cost*, not persistence -- but the access API is strictly
file-like: sequential scans, range reads, and appends.

Durability layers (both off by default and zero-overhead when off):

* ``verify_checksums=True`` maintains a CRC32 per page in a page-header
  sidecar, updated on every write and verified on every charged read.
  A bit flip recorded by a fault-injecting disk (its
  ``silent_corruption_rate``) is then caught as
  :class:`~repro.errors.ChecksumError` -- retryable, because the flip
  happened on the wire, not on the platter -- instead of silently
  poisoning the computation.  Without verification the flip lands in
  the returned payload and nobody notices: exactly the failure mode
  checksums exist to close.
* ``journal`` attaches a :class:`~repro.disk.journal.WriteAheadJournal`;
  :meth:`write_range_atomic` then commits multi-page writes
  journal-first, so a crash or torn write mid-install is *repaired* on
  recovery instead of merely detected.
* ``redundancy`` attaches a
  :class:`~repro.disk.redundancy.RedundancyPolicy` (k-way mirrors
  and/or parity stripes); writes propagate to every copy (charged,
  tracked separately in ``redundancy_cost``), and a checksum failure
  caused by *at-rest* rot triggers **repair-on-read**: one charged
  probe reread (the single honest retry -- backoff cannot fix the
  platter), reconstruction from a surviving copy, and an atomic
  rewrite of the healed page.  Only when every copy is bad does the
  read surface :class:`~repro.errors.UnrecoverableCorruptionError`.
  :meth:`scrub` runs the same machinery proactively over the whole
  file.
"""

from __future__ import annotations

import math
import zlib
from typing import TYPE_CHECKING, Callable, Iterator, TypeVar

import numpy as np

from ..errors import (
    BudgetExceededError,
    ChecksumError,
    DiskError,
    InputValidationError,
    UnrecoverableCorruptionError,
)
from .accounting import IOCost
from .device import SimulatedDisk
from .redundancy import RedundancyManager, RedundancyPolicy, ScrubReport
from .retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runtime.breaker import CircuitBreaker
    from ..runtime.governor import Governor
    from .journal import WriteAheadJournal

__all__ = ["PointFile"]

T = TypeVar("T")


class PointFile:
    """Fixed-capacity file of ``dim``-dimensional points on a disk.

    ``retry`` attaches a :class:`~repro.disk.retry.RetryPolicy` to the
    charged paths (:meth:`read_range`, :meth:`read_point`,
    :meth:`write_range`): transient faults raised by a fault-injecting
    disk are retried with backoff charged to the same ledger.  Without
    a policy every fault propagates immediately -- and on a bare
    :class:`~repro.disk.device.SimulatedDisk` no faults ever occur, so
    a policy costs nothing unless it fires.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        dim: int,
        capacity: int,
        *,
        points_per_page: int | None = None,
        retry: RetryPolicy | None = None,
        verify_checksums: bool = False,
        journal: "WriteAheadJournal | None" = None,
        breaker: "CircuitBreaker | None" = None,
        redundancy: RedundancyPolicy | None = None,
    ):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.disk = disk
        self.dim = dim
        self.capacity = capacity
        self.retry = retry
        self.journal = journal
        self.breaker = breaker
        self.points_per_page = points_per_page or disk.parameters.points_per_page(dim)
        if self.points_per_page < 1:
            raise ValueError("a page must hold at least one point")
        self.start_page = disk.allocate(self._pages_for(capacity))
        #: the policy as configured (propagated to derived files, e.g.
        #: spill areas) and the manager actually doing the work --
        #: ``None`` unless the policy is active, so an inactive policy
        #: is provably zero-overhead
        self.redundancy_policy = redundancy
        self.redundancy: RedundancyManager | None = None
        if redundancy is not None and redundancy.is_active:
            self.redundancy = RedundancyManager(self, redundancy)
        # The in-process buffer grows on demand: a file's *capacity*
        # reserves disk pages (address arithmetic), not host memory --
        # spill areas are sized for the worst case but usually stay
        # far smaller.
        self._buffer = np.empty((0, dim), dtype=np.float64)
        self.n_points = 0
        #: relative page index -> CRC32 of the page payload (sidecar)
        self._crc: dict[int, int] | None = {} if verify_checksums else None

    @property
    def verify_checksums(self) -> bool:
        return self._crc is not None

    def _ensure_rows(self, rows: int) -> None:
        if rows <= self._buffer.shape[0]:
            return
        new_rows = min(self.capacity, max(rows, 2 * self._buffer.shape[0], 256))
        grown = np.empty((new_rows, self.dim), dtype=np.float64)
        grown[: self.n_points] = self._buffer[: self.n_points]
        self._buffer = grown

    @classmethod
    def from_points(
        cls,
        disk: SimulatedDisk,
        points: np.ndarray,
        *,
        charge_write: bool = False,
        points_per_page: int | None = None,
        retry: RetryPolicy | None = None,
        verify_checksums: bool = False,
        journal: "WriteAheadJournal | None" = None,
        breaker: "CircuitBreaker | None" = None,
        redundancy: RedundancyPolicy | None = None,
    ) -> "PointFile":
        """Create a file holding ``points``.

        By default the initial load is free (the dataset already exists
        on disk before any experiment starts); pass ``charge_write=True``
        to account for materializing it.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be (n, d), got {points.shape}")
        pf = cls(disk, points.shape[1], points.shape[0],
                 points_per_page=points_per_page, retry=retry,
                 verify_checksums=verify_checksums, journal=journal,
                 breaker=breaker, redundancy=redundancy)
        pf._ensure_rows(points.shape[0])
        pf._buffer[: points.shape[0]] = points
        pf.n_points = points.shape[0]
        pf._refresh_crc(0, pf.n_points)
        if charge_write:
            disk.write(pf.start_page, pf._pages_for(pf.n_points))
        return pf

    # ------------------------------------------------------------------
    # Geometry of the layout
    # ------------------------------------------------------------------

    def _pages_for(self, n_points: int) -> int:
        return math.ceil(n_points / self.points_per_page)

    def page_of(self, index: int) -> int:
        """Absolute disk page holding point ``index``."""
        if not 0 <= index < self.n_points:
            raise IndexError(f"point {index} outside [0, {self.n_points})")
        return self.start_page + index // self.points_per_page

    def page_span(self, start: int, stop: int) -> tuple[int, int]:
        """(first absolute page, page count) covering points [start, stop)."""
        if not 0 <= start <= stop <= self.capacity:
            raise IndexError(f"range [{start}, {stop}) outside [0, {self.capacity}]")
        if start == stop:
            return self.start_page + start // self.points_per_page, 0
        first = start // self.points_per_page
        last = (stop - 1) // self.points_per_page
        return self.start_page + first, last - first + 1

    @property
    def n_pages(self) -> int:
        return self._pages_for(self.n_points)

    # ------------------------------------------------------------------
    # Checksum sidecar
    # ------------------------------------------------------------------

    def _page_rows(self, rel_page: int) -> tuple[int, int]:
        """Row range [lo, hi) of the valid payload of relative page."""
        lo = rel_page * self.points_per_page
        hi = min(lo + self.points_per_page, self.n_points)
        return lo, hi

    def _page_payload(self, rel_page: int) -> np.ndarray:
        """The valid payload rows of a page (a view, do not mutate)."""
        lo, hi = self._page_rows(rel_page)
        return self._buffer[lo:hi]

    def _refresh_crc(self, start_row: int, stop_row: int) -> None:
        """Recompute sidecar CRCs for the pages covering [start, stop).

        Called after every buffer mutation.  The trailing page's payload
        length depends on ``n_points``, so growth (append) refreshes the
        previously-trailing page too -- handled naturally because the
        covered range includes it.
        """
        if self._crc is None or start_row >= stop_row:
            return
        first = start_row // self.points_per_page
        last = (stop_row - 1) // self.points_per_page
        for rel in range(first, last + 1):
            self._crc[rel] = zlib.crc32(self._page_payload(rel).tobytes())

    def _verify_run(
        self, first: int, count: int
    ) -> dict[int, np.ndarray]:
        """Post-read integrity step for the charged run ``[first, first+count)``.

        Collects any silent bit flips the (fault-injecting) disk
        recorded against this run -- the consume-once *in-transit*
        flips and the persistent *at-rest* rot -- and applies each to a
        *copy* of its page's payload: the as-read view of the data,
        distinct from the authoritative buffer.  When checksum
        verification is on, every page of the run is then CRC-checked
        against the sidecar.  A failing page splits by failure class:

        * flipped **in transit only** -- raises
          :class:`~repro.errors.ChecksumError` (inside the retry scope,
          so a retry re-reads cleanly);
        * **rotten at rest** -- a reread cannot help, so the page goes
          straight to :meth:`_repair_rotten` (one charged probe, then
          replica/parity reconstruction), raising
          :class:`~repro.errors.UnrecoverableCorruptionError` only when
          every copy is bad.  If the wire *also* flipped this read, the
          platter is healed first and one retryable
          :class:`~repro.errors.ChecksumError` is raised so the retry
          fetches the clean bits.

        Returns the corrupted payloads by relative page, for the caller
        to surface to its reader when verification is off.
        """
        consume = getattr(self.disk, "consume_corruption", None)
        events = consume(first, count) if consume is not None else []
        rot_query = getattr(self.disk, "at_rest_flips", None)
        rot_events = rot_query(first, count) if rot_query is not None else []
        corrupted: dict[int, np.ndarray] = {}
        for abs_page, byte, bit in [*events, *rot_events]:
            rel = abs_page - self.start_page
            payload = (corrupted[rel] if rel in corrupted
                       else self._page_payload(rel).copy())
            raw = bytearray(payload.tobytes())
            if not raw:
                continue  # flip landed in unused page padding
            raw[byte % len(raw)] ^= 1 << bit
            corrupted[rel] = np.frombuffer(raw, dtype=np.float64).reshape(
                payload.shape
            )
        if self._crc is not None:
            transit_rels = {abs_page - self.start_page
                            for abs_page, _byte, _bit in events}
            rot_rels = {abs_page - self.start_page
                        for abs_page, _byte, _bit in rot_events}
            rel_first = first - self.start_page
            for rel in range(rel_first, rel_first + count):
                if rel in corrupted:
                    actual = zlib.crc32(corrupted[rel].tobytes())
                else:
                    actual = zlib.crc32(self._page_payload(rel).tobytes())
                expected = self._crc.get(rel)
                if expected is None:
                    # Page never written through a checksummed path;
                    # adopt the current payload as its baseline.
                    self._crc[rel] = actual if rel not in corrupted else (
                        zlib.crc32(self._page_payload(rel).tobytes())
                    )
                    expected = self._crc[rel]
                if actual != expected:
                    if rel in rot_rels:
                        self._repair_rotten(rel)
                        corrupted.pop(rel, None)
                        if rel in transit_rels:
                            raise ChecksumError(
                                self.start_page + rel, expected, actual
                            )
                        continue
                    raise ChecksumError(
                        self.start_page + rel, expected, actual
                    )
        return corrupted

    def _repair_rotten(self, rel: int) -> None:
        """Repair-on-read for a page whose corruption is on the platter.

        Charges exactly one probe reread (seek + transfer, counted as
        the single honest retry round) -- confirming the mismatch
        persists -- instead of burning the exponential backoff schedule
        on an error rereads cannot fix.  Then hands the page to the
        redundancy manager; with no redundancy, or with every copy bad,
        raises :class:`~repro.errors.UnrecoverableCorruptionError`
        (non-retryable) for the caller's degradation machinery.
        """
        note_retry = getattr(self.disk, "note_retry", None)
        if note_retry is not None:
            note_retry(IOCost(seeks=1, transfers=1))
        manager = self.redundancy
        if manager is None:
            raise UnrecoverableCorruptionError(self.start_page + rel)
        if manager.repair(rel) is None:
            raise UnrecoverableCorruptionError(
                self.start_page + rel,
                copies_tried=manager.copies_per_page,
            )

    # ------------------------------------------------------------------
    # Charged access
    # ------------------------------------------------------------------

    def charged(self, operation: Callable[[], T]) -> T:
        """Run a charged disk operation under this file's retry policy.

        With a :class:`~repro.runtime.breaker.CircuitBreaker` attached,
        the breaker is consulted *before* anything is issued -- an open
        circuit raises :class:`~repro.errors.CircuitOpenError` with
        zero charged I/O and zero retries -- and every final outcome
        (success, or a :class:`~repro.errors.DiskError` that survived
        the retry policy) is fed back into its failure window.
        """
        breaker = self.breaker
        if breaker is not None:
            breaker.before_attempt()
        try:
            if self.retry is None:
                result = operation()
            else:
                result = self.retry.run(self.disk, operation)
        except DiskError:
            if breaker is not None:
                breaker.record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        return result

    def _read_run(self, first: int, count: int) -> dict[int, np.ndarray]:
        """One charged, integrity-checked read attempt of a page run."""
        self.disk.read(first, count)
        return self._verify_run(first, count)

    def read_range(self, start: int, stop: int) -> np.ndarray:
        """Read points ``[start, stop)``; charges the covering pages.

        The returned block is what came *off the wire*: if the disk
        silently corrupted a page and verification is off, the flipped
        bits are faithfully present in the result.
        """
        if stop > self.n_points:
            raise IndexError(f"read past end: [{start}, {stop}) > {self.n_points}")
        first, count = self.page_span(start, stop)
        corrupted = self.charged(lambda: self._read_run(first, count))
        data = self._buffer[start:stop].copy()
        for rel, payload in corrupted.items():
            lo, hi = self._page_rows(rel)
            s, e = max(lo, start), min(hi, stop)
            if s < e:
                data[s - start : e - start] = payload[s - lo : e - lo]
        return data

    def read_all(self) -> np.ndarray:
        return self.read_range(0, self.n_points)

    def read_point(self, index: int) -> np.ndarray:
        """Random single-point read (one page)."""
        page = self.page_of(index)
        corrupted = self.charged(lambda: self._read_run(page, 1))
        rel = page - self.start_page
        if rel in corrupted:
            lo, _ = self._page_rows(rel)
            return corrupted[rel][index - lo].copy()
        return self._buffer[index].copy()

    def write_range(self, start: int, points: np.ndarray) -> None:
        """Overwrite points starting at ``start``; charges covering pages.

        The charged write happens *before* the in-process buffer is
        touched: a torn write leaves the file's contents and length
        unchanged, so retrying the identical range is safe.
        """
        points = np.asarray(points, dtype=np.float64)
        stop = start + points.shape[0]
        if stop > self.capacity:
            raise IndexError(f"write past capacity: [{start}, {stop})")
        first, count = self.page_span(start, stop)
        self.charged(lambda: self.disk.write(first, count))
        if self.redundancy is not None:
            self.redundancy.on_write(first - self.start_page, count)
        self._ensure_rows(stop)
        self._buffer[start:stop] = points
        self.n_points = max(self.n_points, stop)
        self._refresh_crc(start, stop)

    def install_pages(self, start: int, stop: int) -> None:
        """Charged in-place install of the pages covering points
        ``[start, stop)``: primary write, replica/parity propagation,
        and buffer-pool invalidation -- everything a write path must do
        to leave no stale copy anywhere.  Used by the journal's install
        step; the payload itself is placed by the caller (installs are
        charged here, mutated there, preserving crash ordering).
        """
        first, count = self.page_span(start, stop)
        self.charged(lambda: self.disk.write(first, count))
        if self.redundancy is not None:
            self.redundancy.on_write(first - self.start_page, count)
        self.invalidate_cached(first, count)

    def write_range_atomic(self, start: int, points: np.ndarray) -> None:
        """Overwrite points starting at ``start`` as one atomic commit.

        With a :class:`~repro.disk.journal.WriteAheadJournal` attached,
        the payload is journaled (payload pages, then a one-page commit
        marker) before the in-place install, so a crash or unrecovered
        torn write at any point either replays the full install or
        rolls it back cleanly on ``journal.recover()`` -- never a
        half-applied range.  Without a journal this degrades to the
        plain (detect-only) :meth:`write_range`.
        """
        if self.journal is None:
            points = np.asarray(points, dtype=np.float64)
            self.write_range(start, points)
            first, count = self.page_span(start, start + points.shape[0])
            self.invalidate_cached(first, count)
            return
        self.journal.commit(self, start, points)

    def append(self, points: np.ndarray) -> int:
        """Append a block at the end; returns the index of its first point.

        Appending to a partially filled trailing page re-touches that
        page, exactly as a real buffered writer would.
        """
        start = self.n_points
        self.write_range(start, points)
        return start

    def truncate(self, n_points: int) -> None:
        """Roll the file's length back to ``n_points`` (uncharged).

        Recovery bookkeeping: a resumed spill phase discards a
        partially-applied chunk by truncating each area to its
        checkpointed length before replaying the chunk.  Like a real
        in-place length rollback, no pages move; the sidecar CRC of the
        new trailing page is refreshed for its shortened payload.
        """
        if not 0 <= n_points <= self.n_points:
            raise ValueError(
                f"cannot truncate to {n_points}: file holds {self.n_points}"
            )
        old = self.n_points
        self.n_points = n_points
        if self._crc is not None:
            for rel in range(self._pages_for(old)):
                self._crc.pop(rel, None)
            self._refresh_crc(0, n_points)
        if old > n_points:
            # pages past (and including) the new trailing page changed
            # meaning; a buffer pool must not serve them as current
            first_dead = n_points // self.points_per_page
            last_dead = (old - 1) // self.points_per_page
            self.invalidate_cached(
                self.start_page + first_dead, last_dead - first_dead + 1
            )

    def scan(self, chunk_points: int | None = None) -> Iterator[tuple[int, np.ndarray]]:
        """Sequential full scan: yields ``(start_index, block)`` chunks.

        Charges one seek for the whole scan plus one transfer per page:
        chunks are aligned to page boundaries, so each chunk after the
        first continues exactly where the head already is.
        """
        chunk = chunk_points or max(self.points_per_page, 4096)
        chunk = max(1, math.ceil(chunk / self.points_per_page)) * self.points_per_page
        for start in range(0, self.n_points, chunk):
            stop = min(start + chunk, self.n_points)
            yield start, self.read_range(start, stop)

    def invalidate_cached(self, first_page: int, count: int) -> None:
        """Drop a page run from any buffer pool stacked under this file.

        No-op on pool-less devices.  Called wherever a page's served
        content changes out from under a cache: atomic installs,
        truncation, and repair rewrites -- a repaired page must never
        be served stale.
        """
        invalidate = getattr(self.disk, "invalidate", None)
        if invalidate is not None:
            invalidate(first_page, count)

    @property
    def redundancy_cost(self) -> IOCost:
        """Extra I/O spent on replicas and parity (zero when inactive)."""
        if self.redundancy is None:
            return IOCost()
        return self.redundancy.redundancy_cost

    def scrub(self, *, governor: "Governor | None" = None) -> ScrubReport:
        """Background scrub: verify and repair every page proactively.

        Walks the file's data pages through the normal charged,
        checksum-verified read path -- so repair-on-read does the
        healing -- then sweeps the replica and parity regions,
        rewriting rotten copies from the healed primary.  Pages whose
        every copy is bad are recorded as ``unrecoverable`` (the scrub
        continues; a scrub inventories damage, it does not abort on
        it); transient faults that survive the retry policy are counted
        and skipped likewise.

        ``governor`` makes the pass budget-aware: the op budget and
        deadline are checked before every page, and the scrub stops
        explicitly -- ``completed=False`` with the exhaustion recorded
        -- rather than overspending.  Requires ``verify_checksums``:
        without the sidecar there is nothing to verify against.
        """
        if self._crc is None:
            raise InputValidationError(
                "scrub requires verify_checksums=True: without the CRC "
                "sidecar there is nothing to verify pages against"
            )
        start_cost = self.disk.cost
        manager = self.redundancy
        repairs_before = manager.repairs if manager is not None else 0
        copies_before = manager.copies_repaired if manager is not None else 0
        red_before = (manager.redundancy_cost if manager is not None
                      else IOCost())
        scanned = 0
        unrecoverable: list[int] = []
        transient = 0
        exhausted: dict | None = None
        self.disk.drop_head()  # a background pass starts cold
        for rel in range(self.n_pages):
            if governor is not None:
                try:
                    governor.check("scrub", self.disk.cost - start_cost)
                except BudgetExceededError as error:
                    exhausted = {
                        "error": type(error).__name__,
                        "phase": "scrub:data",
                        "after_pages": rel,
                        "detail": str(error),
                    }
                    break
            page = self.start_page + rel
            try:
                self.charged(lambda p=page: self._read_run(p, 1))
            except UnrecoverableCorruptionError:
                unrecoverable.append(page)
            except DiskError:
                transient += 1
            scanned += 1
        if manager is not None and exhausted is None:
            exhausted = manager.scrub_copies(
                governor=governor, ledger_base=start_cost
            )
        return ScrubReport(
            pages_total=self.n_pages,
            pages_scanned=scanned,
            repaired=(manager.repairs - repairs_before
                      if manager is not None else 0),
            copies_repaired=(manager.copies_repaired - copies_before
                             if manager is not None else 0),
            unrecoverable=tuple(unrecoverable),
            transient_failures=transient,
            io_cost=self.disk.cost - start_cost,
            redundancy_cost=(manager.redundancy_cost - red_before
                             if manager is not None else IOCost()),
            completed=exhausted is None,
            exhausted=exhausted,
        )

    # ------------------------------------------------------------------
    # Uncharged access (bookkeeping that a real system would do in RAM)
    # ------------------------------------------------------------------

    def peek(self, start: int, stop: int) -> np.ndarray:
        """Read without charging -- for assertions and verification only."""
        return self._buffer[start:stop]

    def place(self, start: int, points: np.ndarray) -> None:
        """Write without charging -- used by builders that charge their
        I/O at a coarser, algorithm-level granularity."""
        points = np.asarray(points, dtype=np.float64)
        stop = start + points.shape[0]
        if stop > self.capacity:
            raise IndexError(f"write past capacity: [{start}, {stop})")
        self._ensure_rows(stop)
        self._buffer[start:stop] = points
        self.n_points = max(self.n_points, stop)
        self._refresh_crc(start, stop)
