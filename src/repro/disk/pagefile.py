"""A paged file of points on the simulated disk.

``PointFile`` stores an ``(n, d)`` point matrix row-major in ``B``-point
pages (``B`` derived from the disk's page size and the dimensionality,
Table 2's ``B``).  Every read and write is charged to the owning
:class:`~repro.disk.device.SimulatedDisk` at page granularity, so the
on-disk index builder, the dataset scans of the predictors, and the
resampling spill areas all produce the seek/transfer counts the paper
tabulates.

The actual floats live in an in-process numpy buffer -- the simulation
is about *cost*, not persistence -- but the access API is strictly
file-like: sequential scans, range reads, and appends.

Durability layers (both off by default and zero-overhead when off):

* ``verify_checksums=True`` maintains a CRC32 per page in a page-header
  sidecar, updated on every write and verified on every charged read.
  A bit flip recorded by a fault-injecting disk (its
  ``silent_corruption_rate``) is then caught as
  :class:`~repro.errors.ChecksumError` -- retryable, because the flip
  happened on the wire, not on the platter -- instead of silently
  poisoning the computation.  Without verification the flip lands in
  the returned payload and nobody notices: exactly the failure mode
  checksums exist to close.
* ``journal`` attaches a :class:`~repro.disk.journal.WriteAheadJournal`;
  :meth:`write_range_atomic` then commits multi-page writes
  journal-first, so a crash or torn write mid-install is *repaired* on
  recovery instead of merely detected.
"""

from __future__ import annotations

import math
import zlib
from typing import TYPE_CHECKING, Callable, Iterator, TypeVar

import numpy as np

from ..errors import ChecksumError, DiskError
from .device import SimulatedDisk
from .retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runtime.breaker import CircuitBreaker
    from .journal import WriteAheadJournal

__all__ = ["PointFile"]

T = TypeVar("T")


class PointFile:
    """Fixed-capacity file of ``dim``-dimensional points on a disk.

    ``retry`` attaches a :class:`~repro.disk.retry.RetryPolicy` to the
    charged paths (:meth:`read_range`, :meth:`read_point`,
    :meth:`write_range`): transient faults raised by a fault-injecting
    disk are retried with backoff charged to the same ledger.  Without
    a policy every fault propagates immediately -- and on a bare
    :class:`~repro.disk.device.SimulatedDisk` no faults ever occur, so
    a policy costs nothing unless it fires.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        dim: int,
        capacity: int,
        *,
        points_per_page: int | None = None,
        retry: RetryPolicy | None = None,
        verify_checksums: bool = False,
        journal: "WriteAheadJournal | None" = None,
        breaker: "CircuitBreaker | None" = None,
    ):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.disk = disk
        self.dim = dim
        self.capacity = capacity
        self.retry = retry
        self.journal = journal
        self.breaker = breaker
        self.points_per_page = points_per_page or disk.parameters.points_per_page(dim)
        if self.points_per_page < 1:
            raise ValueError("a page must hold at least one point")
        self.start_page = disk.allocate(self._pages_for(capacity))
        # The in-process buffer grows on demand: a file's *capacity*
        # reserves disk pages (address arithmetic), not host memory --
        # spill areas are sized for the worst case but usually stay
        # far smaller.
        self._buffer = np.empty((0, dim), dtype=np.float64)
        self.n_points = 0
        #: relative page index -> CRC32 of the page payload (sidecar)
        self._crc: dict[int, int] | None = {} if verify_checksums else None

    @property
    def verify_checksums(self) -> bool:
        return self._crc is not None

    def _ensure_rows(self, rows: int) -> None:
        if rows <= self._buffer.shape[0]:
            return
        new_rows = min(self.capacity, max(rows, 2 * self._buffer.shape[0], 256))
        grown = np.empty((new_rows, self.dim), dtype=np.float64)
        grown[: self.n_points] = self._buffer[: self.n_points]
        self._buffer = grown

    @classmethod
    def from_points(
        cls,
        disk: SimulatedDisk,
        points: np.ndarray,
        *,
        charge_write: bool = False,
        points_per_page: int | None = None,
        retry: RetryPolicy | None = None,
        verify_checksums: bool = False,
        journal: "WriteAheadJournal | None" = None,
        breaker: "CircuitBreaker | None" = None,
    ) -> "PointFile":
        """Create a file holding ``points``.

        By default the initial load is free (the dataset already exists
        on disk before any experiment starts); pass ``charge_write=True``
        to account for materializing it.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be (n, d), got {points.shape}")
        pf = cls(disk, points.shape[1], points.shape[0],
                 points_per_page=points_per_page, retry=retry,
                 verify_checksums=verify_checksums, journal=journal,
                 breaker=breaker)
        pf._ensure_rows(points.shape[0])
        pf._buffer[: points.shape[0]] = points
        pf.n_points = points.shape[0]
        pf._refresh_crc(0, pf.n_points)
        if charge_write:
            disk.write(pf.start_page, pf._pages_for(pf.n_points))
        return pf

    # ------------------------------------------------------------------
    # Geometry of the layout
    # ------------------------------------------------------------------

    def _pages_for(self, n_points: int) -> int:
        return math.ceil(n_points / self.points_per_page)

    def page_of(self, index: int) -> int:
        """Absolute disk page holding point ``index``."""
        if not 0 <= index < self.n_points:
            raise IndexError(f"point {index} outside [0, {self.n_points})")
        return self.start_page + index // self.points_per_page

    def page_span(self, start: int, stop: int) -> tuple[int, int]:
        """(first absolute page, page count) covering points [start, stop)."""
        if not 0 <= start <= stop <= self.capacity:
            raise IndexError(f"range [{start}, {stop}) outside [0, {self.capacity}]")
        if start == stop:
            return self.start_page + start // self.points_per_page, 0
        first = start // self.points_per_page
        last = (stop - 1) // self.points_per_page
        return self.start_page + first, last - first + 1

    @property
    def n_pages(self) -> int:
        return self._pages_for(self.n_points)

    # ------------------------------------------------------------------
    # Checksum sidecar
    # ------------------------------------------------------------------

    def _page_rows(self, rel_page: int) -> tuple[int, int]:
        """Row range [lo, hi) of the valid payload of relative page."""
        lo = rel_page * self.points_per_page
        hi = min(lo + self.points_per_page, self.n_points)
        return lo, hi

    def _page_payload(self, rel_page: int) -> np.ndarray:
        """The valid payload rows of a page (a view, do not mutate)."""
        lo, hi = self._page_rows(rel_page)
        return self._buffer[lo:hi]

    def _refresh_crc(self, start_row: int, stop_row: int) -> None:
        """Recompute sidecar CRCs for the pages covering [start, stop).

        Called after every buffer mutation.  The trailing page's payload
        length depends on ``n_points``, so growth (append) refreshes the
        previously-trailing page too -- handled naturally because the
        covered range includes it.
        """
        if self._crc is None or start_row >= stop_row:
            return
        first = start_row // self.points_per_page
        last = (stop_row - 1) // self.points_per_page
        for rel in range(first, last + 1):
            self._crc[rel] = zlib.crc32(self._page_payload(rel).tobytes())

    def _verify_run(
        self, first: int, count: int
    ) -> dict[int, np.ndarray]:
        """Post-read integrity step for the charged run ``[first, first+count)``.

        Collects any silent bit flips the (fault-injecting) disk
        recorded against this run and applies each to a *copy* of its
        page's payload -- the transit view of the data, distinct from
        the authoritative buffer.  When checksum verification is on,
        every page of the run is then CRC-checked against the sidecar;
        a flipped page fails and raises
        :class:`~repro.errors.ChecksumError` (inside the retry scope,
        so a retry re-reads cleanly).  Returns the corrupted payloads
        by relative page, for the caller to surface to its reader when
        verification is off.
        """
        consume = getattr(self.disk, "consume_corruption", None)
        events = consume(first, count) if consume is not None else []
        corrupted: dict[int, np.ndarray] = {}
        for abs_page, byte, bit in events:
            rel = abs_page - self.start_page
            payload = self._page_payload(rel).copy()
            raw = bytearray(payload.tobytes())
            if not raw:
                continue  # flip landed in unused page padding
            raw[byte % len(raw)] ^= 1 << bit
            corrupted[rel] = np.frombuffer(raw, dtype=np.float64).reshape(
                payload.shape
            )
        if self._crc is not None:
            rel_first = first - self.start_page
            for rel in range(rel_first, rel_first + count):
                if rel in corrupted:
                    actual = zlib.crc32(corrupted[rel].tobytes())
                else:
                    actual = zlib.crc32(self._page_payload(rel).tobytes())
                expected = self._crc.get(rel)
                if expected is None:
                    # Page never written through a checksummed path;
                    # adopt the current payload as its baseline.
                    self._crc[rel] = actual if rel not in corrupted else (
                        zlib.crc32(self._page_payload(rel).tobytes())
                    )
                    expected = self._crc[rel]
                if actual != expected:
                    raise ChecksumError(
                        self.start_page + rel, expected, actual
                    )
        return corrupted

    # ------------------------------------------------------------------
    # Charged access
    # ------------------------------------------------------------------

    def charged(self, operation: Callable[[], T]) -> T:
        """Run a charged disk operation under this file's retry policy.

        With a :class:`~repro.runtime.breaker.CircuitBreaker` attached,
        the breaker is consulted *before* anything is issued -- an open
        circuit raises :class:`~repro.errors.CircuitOpenError` with
        zero charged I/O and zero retries -- and every final outcome
        (success, or a :class:`~repro.errors.DiskError` that survived
        the retry policy) is fed back into its failure window.
        """
        breaker = self.breaker
        if breaker is not None:
            breaker.before_attempt()
        try:
            if self.retry is None:
                result = operation()
            else:
                result = self.retry.run(self.disk, operation)
        except DiskError:
            if breaker is not None:
                breaker.record_failure()
            raise
        if breaker is not None:
            breaker.record_success()
        return result

    def _read_run(self, first: int, count: int) -> dict[int, np.ndarray]:
        """One charged, integrity-checked read attempt of a page run."""
        self.disk.read(first, count)
        return self._verify_run(first, count)

    def read_range(self, start: int, stop: int) -> np.ndarray:
        """Read points ``[start, stop)``; charges the covering pages.

        The returned block is what came *off the wire*: if the disk
        silently corrupted a page and verification is off, the flipped
        bits are faithfully present in the result.
        """
        if stop > self.n_points:
            raise IndexError(f"read past end: [{start}, {stop}) > {self.n_points}")
        first, count = self.page_span(start, stop)
        corrupted = self.charged(lambda: self._read_run(first, count))
        data = self._buffer[start:stop].copy()
        for rel, payload in corrupted.items():
            lo, hi = self._page_rows(rel)
            s, e = max(lo, start), min(hi, stop)
            if s < e:
                data[s - start : e - start] = payload[s - lo : e - lo]
        return data

    def read_all(self) -> np.ndarray:
        return self.read_range(0, self.n_points)

    def read_point(self, index: int) -> np.ndarray:
        """Random single-point read (one page)."""
        page = self.page_of(index)
        corrupted = self.charged(lambda: self._read_run(page, 1))
        rel = page - self.start_page
        if rel in corrupted:
            lo, _ = self._page_rows(rel)
            return corrupted[rel][index - lo].copy()
        return self._buffer[index].copy()

    def write_range(self, start: int, points: np.ndarray) -> None:
        """Overwrite points starting at ``start``; charges covering pages.

        The charged write happens *before* the in-process buffer is
        touched: a torn write leaves the file's contents and length
        unchanged, so retrying the identical range is safe.
        """
        points = np.asarray(points, dtype=np.float64)
        stop = start + points.shape[0]
        if stop > self.capacity:
            raise IndexError(f"write past capacity: [{start}, {stop})")
        first, count = self.page_span(start, stop)
        self.charged(lambda: self.disk.write(first, count))
        self._ensure_rows(stop)
        self._buffer[start:stop] = points
        self.n_points = max(self.n_points, stop)
        self._refresh_crc(start, stop)

    def write_range_atomic(self, start: int, points: np.ndarray) -> None:
        """Overwrite points starting at ``start`` as one atomic commit.

        With a :class:`~repro.disk.journal.WriteAheadJournal` attached,
        the payload is journaled (payload pages, then a one-page commit
        marker) before the in-place install, so a crash or unrecovered
        torn write at any point either replays the full install or
        rolls it back cleanly on ``journal.recover()`` -- never a
        half-applied range.  Without a journal this degrades to the
        plain (detect-only) :meth:`write_range`.
        """
        if self.journal is None:
            self.write_range(start, points)
            return
        self.journal.commit(self, start, points)

    def append(self, points: np.ndarray) -> int:
        """Append a block at the end; returns the index of its first point.

        Appending to a partially filled trailing page re-touches that
        page, exactly as a real buffered writer would.
        """
        start = self.n_points
        self.write_range(start, points)
        return start

    def truncate(self, n_points: int) -> None:
        """Roll the file's length back to ``n_points`` (uncharged).

        Recovery bookkeeping: a resumed spill phase discards a
        partially-applied chunk by truncating each area to its
        checkpointed length before replaying the chunk.  Like a real
        in-place length rollback, no pages move; the sidecar CRC of the
        new trailing page is refreshed for its shortened payload.
        """
        if not 0 <= n_points <= self.n_points:
            raise ValueError(
                f"cannot truncate to {n_points}: file holds {self.n_points}"
            )
        old = self.n_points
        self.n_points = n_points
        if self._crc is not None:
            for rel in range(self._pages_for(old)):
                self._crc.pop(rel, None)
            self._refresh_crc(0, n_points)

    def scan(self, chunk_points: int | None = None) -> Iterator[tuple[int, np.ndarray]]:
        """Sequential full scan: yields ``(start_index, block)`` chunks.

        Charges one seek for the whole scan plus one transfer per page:
        chunks are aligned to page boundaries, so each chunk after the
        first continues exactly where the head already is.
        """
        chunk = chunk_points or max(self.points_per_page, 4096)
        chunk = max(1, math.ceil(chunk / self.points_per_page)) * self.points_per_page
        for start in range(0, self.n_points, chunk):
            stop = min(start + chunk, self.n_points)
            yield start, self.read_range(start, stop)

    # ------------------------------------------------------------------
    # Uncharged access (bookkeeping that a real system would do in RAM)
    # ------------------------------------------------------------------

    def peek(self, start: int, stop: int) -> np.ndarray:
        """Read without charging -- for assertions and verification only."""
        return self._buffer[start:stop]

    def place(self, start: int, points: np.ndarray) -> None:
        """Write without charging -- used by builders that charge their
        I/O at a coarser, algorithm-level granularity."""
        points = np.asarray(points, dtype=np.float64)
        stop = start + points.shape[0]
        if stop > self.capacity:
            raise IndexError(f"write past capacity: [{start}, {stop})")
        self._ensure_rows(stop)
        self._buffer[start:stop] = points
        self.n_points = max(self.n_points, stop)
        self._refresh_crc(start, stop)
