"""A paged file of points on the simulated disk.

``PointFile`` stores an ``(n, d)`` point matrix row-major in ``B``-point
pages (``B`` derived from the disk's page size and the dimensionality,
Table 2's ``B``).  Every read and write is charged to the owning
:class:`~repro.disk.device.SimulatedDisk` at page granularity, so the
on-disk index builder, the dataset scans of the predictors, and the
resampling spill areas all produce the seek/transfer counts the paper
tabulates.

The actual floats live in an in-process numpy buffer -- the simulation
is about *cost*, not persistence -- but the access API is strictly
file-like: sequential scans, range reads, and appends.
"""

from __future__ import annotations

import math
from typing import Callable, Iterator, TypeVar

import numpy as np

from .device import SimulatedDisk
from .retry import RetryPolicy

__all__ = ["PointFile"]

T = TypeVar("T")


class PointFile:
    """Fixed-capacity file of ``dim``-dimensional points on a disk.

    ``retry`` attaches a :class:`~repro.disk.retry.RetryPolicy` to the
    charged paths (:meth:`read_range`, :meth:`read_point`,
    :meth:`write_range`): transient faults raised by a fault-injecting
    disk are retried with backoff charged to the same ledger.  Without
    a policy every fault propagates immediately -- and on a bare
    :class:`~repro.disk.device.SimulatedDisk` no faults ever occur, so
    a policy costs nothing unless it fires.
    """

    def __init__(
        self,
        disk: SimulatedDisk,
        dim: int,
        capacity: int,
        *,
        points_per_page: int | None = None,
        retry: RetryPolicy | None = None,
    ):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.disk = disk
        self.dim = dim
        self.capacity = capacity
        self.retry = retry
        self.points_per_page = points_per_page or disk.parameters.points_per_page(dim)
        if self.points_per_page < 1:
            raise ValueError("a page must hold at least one point")
        self.start_page = disk.allocate(self._pages_for(capacity))
        # The in-process buffer grows on demand: a file's *capacity*
        # reserves disk pages (address arithmetic), not host memory --
        # spill areas are sized for the worst case but usually stay
        # far smaller.
        self._buffer = np.empty((0, dim), dtype=np.float64)
        self.n_points = 0

    def _ensure_rows(self, rows: int) -> None:
        if rows <= self._buffer.shape[0]:
            return
        new_rows = min(self.capacity, max(rows, 2 * self._buffer.shape[0], 256))
        grown = np.empty((new_rows, self.dim), dtype=np.float64)
        grown[: self.n_points] = self._buffer[: self.n_points]
        self._buffer = grown

    @classmethod
    def from_points(
        cls,
        disk: SimulatedDisk,
        points: np.ndarray,
        *,
        charge_write: bool = False,
        points_per_page: int | None = None,
        retry: RetryPolicy | None = None,
    ) -> "PointFile":
        """Create a file holding ``points``.

        By default the initial load is free (the dataset already exists
        on disk before any experiment starts); pass ``charge_write=True``
        to account for materializing it.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(f"points must be (n, d), got {points.shape}")
        pf = cls(disk, points.shape[1], points.shape[0],
                 points_per_page=points_per_page, retry=retry)
        pf._ensure_rows(points.shape[0])
        pf._buffer[: points.shape[0]] = points
        pf.n_points = points.shape[0]
        if charge_write:
            disk.write(pf.start_page, pf._pages_for(pf.n_points))
        return pf

    # ------------------------------------------------------------------
    # Geometry of the layout
    # ------------------------------------------------------------------

    def _pages_for(self, n_points: int) -> int:
        return math.ceil(n_points / self.points_per_page)

    def page_of(self, index: int) -> int:
        """Absolute disk page holding point ``index``."""
        if not 0 <= index < self.n_points:
            raise IndexError(f"point {index} outside [0, {self.n_points})")
        return self.start_page + index // self.points_per_page

    def page_span(self, start: int, stop: int) -> tuple[int, int]:
        """(first absolute page, page count) covering points [start, stop)."""
        if not 0 <= start <= stop <= self.capacity:
            raise IndexError(f"range [{start}, {stop}) outside [0, {self.capacity}]")
        if start == stop:
            return self.start_page + start // self.points_per_page, 0
        first = start // self.points_per_page
        last = (stop - 1) // self.points_per_page
        return self.start_page + first, last - first + 1

    @property
    def n_pages(self) -> int:
        return self._pages_for(self.n_points)

    # ------------------------------------------------------------------
    # Charged access
    # ------------------------------------------------------------------

    def charged(self, operation: Callable[[], T]) -> T:
        """Run a charged disk operation under this file's retry policy."""
        if self.retry is None:
            return operation()
        return self.retry.run(self.disk, operation)

    def read_range(self, start: int, stop: int) -> np.ndarray:
        """Read points ``[start, stop)``; charges the covering pages."""
        if stop > self.n_points:
            raise IndexError(f"read past end: [{start}, {stop}) > {self.n_points}")
        first, count = self.page_span(start, stop)
        self.charged(lambda: self.disk.read(first, count))
        return self._buffer[start:stop].copy()

    def read_all(self) -> np.ndarray:
        return self.read_range(0, self.n_points)

    def read_point(self, index: int) -> np.ndarray:
        """Random single-point read (one page)."""
        page = self.page_of(index)
        self.charged(lambda: self.disk.read(page, 1))
        return self._buffer[index].copy()

    def write_range(self, start: int, points: np.ndarray) -> None:
        """Overwrite points starting at ``start``; charges covering pages.

        The charged write happens *before* the in-process buffer is
        touched: a torn write leaves the file's contents and length
        unchanged, so retrying the identical range is safe.
        """
        points = np.asarray(points, dtype=np.float64)
        stop = start + points.shape[0]
        if stop > self.capacity:
            raise IndexError(f"write past capacity: [{start}, {stop})")
        first, count = self.page_span(start, stop)
        self.charged(lambda: self.disk.write(first, count))
        self._ensure_rows(stop)
        self._buffer[start:stop] = points
        self.n_points = max(self.n_points, stop)

    def append(self, points: np.ndarray) -> int:
        """Append a block at the end; returns the index of its first point.

        Appending to a partially filled trailing page re-touches that
        page, exactly as a real buffered writer would.
        """
        start = self.n_points
        self.write_range(start, points)
        return start

    def scan(self, chunk_points: int | None = None) -> Iterator[tuple[int, np.ndarray]]:
        """Sequential full scan: yields ``(start_index, block)`` chunks.

        Charges one seek for the whole scan plus one transfer per page:
        chunks are aligned to page boundaries, so each chunk after the
        first continues exactly where the head already is.
        """
        chunk = chunk_points or max(self.points_per_page, 4096)
        chunk = max(1, math.ceil(chunk / self.points_per_page)) * self.points_per_page
        for start in range(0, self.n_points, chunk):
            stop = min(start + chunk, self.n_points)
            yield start, self.read_range(start, stop)

    # ------------------------------------------------------------------
    # Uncharged access (bookkeeping that a real system would do in RAM)
    # ------------------------------------------------------------------

    def peek(self, start: int, stop: int) -> np.ndarray:
        """Read without charging -- for assertions and verification only."""
        return self._buffer[start:stop]

    def place(self, start: int, points: np.ndarray) -> None:
        """Write without charging -- used by builders that charge their
        I/O at a coarser, algorithm-level granularity."""
        points = np.asarray(points, dtype=np.float64)
        stop = start + points.shape[0]
        if stop > self.capacity:
            raise IndexError(f"write past capacity: [{start}, {stop})")
        self._ensure_rows(stop)
        self._buffer[start:stop] = points
        self.n_points = max(self.n_points, stop)
