"""I/O cost accounting.

The paper reports every experiment in *counted* disk operations: the
number of page seeks (reads of a page not adjacent to the previously
read page) and the number of 8 KByte page transfers, priced with
``t_seek = 10 ms`` and ``t_xfer = 0.4 ms`` (20 MB/s).  This module holds
the value types for those counts so the simulator, the analytical cost
model (Eqs. 1-5), and the experiment tables all speak the same unit.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DiskParameters", "IOCost"]

#: sentinel distinguishing "argument omitted" from an explicit ``None``
_DEFAULT_DISK = object()


@dataclass(frozen=True)
class DiskParameters:
    """Physical disk characteristics (Table 2 / Section 4.6 defaults).

    ``t_seek`` is the average seek-plus-rotational-latency time in
    seconds; ``t_xfer`` the transfer time of one ``page_bytes`` page.
    The defaults model the paper's disk: 10 ms seek, 20 MB/s bandwidth,
    8 KB pages (8192 / 20e6 s = 0.4096 ms, rounded to 0.4 ms as in the
    paper).
    """

    t_seek: float = 0.010
    t_xfer: float = 0.0004
    page_bytes: int = 8192
    bytes_per_value: int = 4

    def __post_init__(self) -> None:
        if self.t_seek < 0 or self.t_xfer < 0:
            raise ValueError("disk times must be non-negative")
        if self.page_bytes < 1 or self.bytes_per_value < 1:
            raise ValueError("page_bytes and bytes_per_value must be positive")

    def points_per_page(self, dim: int) -> int:
        """``B``: how many ``dim``-dimensional points fit in one page.

        At least 1 even when a single point exceeds the page (a point is
        then stored across multiple pages; the transfer count below is
        adjusted by the caller via fractional pages where needed).
        """
        if dim < 1:
            raise ValueError("dim must be >= 1")
        return max(1, self.page_bytes // (dim * self.bytes_per_value))

    def with_page_bytes(self, page_bytes: int) -> "DiskParameters":
        """A copy with a different page size, transfer time rescaled.

        Used by the page-size tuning application (Section 6.1): seek
        time is size-independent, transfer time scales linearly with the
        page size.
        """
        scale = page_bytes / self.page_bytes
        return DiskParameters(
            t_seek=self.t_seek,
            t_xfer=self.t_xfer * scale,
            page_bytes=page_bytes,
            bytes_per_value=self.bytes_per_value,
        )


@dataclass(frozen=True)
class IOCost:
    """A count of seeks and page transfers; supports + and scaling.

    ``retries`` and ``faults_seen`` are resilience diagnostics: how
    many retry rounds a :class:`~repro.disk.retry.RetryPolicy` spent
    and how many injected faults the device saw.  The *priced* cost of
    a retry (its backoff plus the re-issued access) is already folded
    into ``seeks``/``transfers`` when it happens, so :meth:`seconds`
    deliberately ignores both counters -- they count events, not time.
    """

    seeks: int = 0
    transfers: int = 0
    retries: int = 0
    faults_seen: int = 0

    def __post_init__(self) -> None:
        if self.seeks < 0 or self.transfers < 0:
            raise ValueError("I/O counts must be non-negative")
        if self.retries < 0 or self.faults_seen < 0:
            raise ValueError("retry and fault counts must be non-negative")

    def __add__(self, other: "IOCost") -> "IOCost":
        return IOCost(
            self.seeks + other.seeks,
            self.transfers + other.transfers,
            self.retries + other.retries,
            self.faults_seen + other.faults_seen,
        )

    def __sub__(self, other: "IOCost") -> "IOCost":
        return IOCost(
            self.seeks - other.seeks,
            self.transfers - other.transfers,
            self.retries - other.retries,
            self.faults_seen - other.faults_seen,
        )

    def scaled(self, factor: int) -> "IOCost":
        """The cost of repeating this I/O pattern ``factor`` times."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return IOCost(
            self.seeks * factor,
            self.transfers * factor,
            self.retries * factor,
            self.faults_seen * factor,
        )

    def seconds(self, disk: "DiskParameters" = _DEFAULT_DISK) -> float:
        """Priced cost in seconds: ``seeks * t_seek + transfers * t_xfer``.

        Omitting ``disk`` prices against the paper's default geometry.
        Passing ``None`` (or anything that is not a
        :class:`DiskParameters`) raises a naming :class:`ValueError`
        immediately -- the old behavior silently fell back to the
        default geometry on an explicit ``None``, mispricing ledgers
        whose caller *meant* to pass a real disk and lost it on the
        way (e.g. an unset optional attribute).
        """
        if disk is _DEFAULT_DISK:
            disk = DiskParameters()
        elif not isinstance(disk, DiskParameters):
            raise ValueError(
                f"IOCost.seconds needs a DiskParameters to price seeks and "
                f"transfers, got {disk!r}; omit the argument for the "
                f"default geometry"
            )
        return self.seeks * disk.t_seek + self.transfers * disk.t_xfer

    @property
    def ops(self) -> int:
        """Charged operations: seeks + transfers (the budget unit of
        :class:`~repro.runtime.budget.Budget`)."""
        return self.seeks + self.transfers

    @property
    def is_zero(self) -> bool:
        return (
            self.seeks == 0
            and self.transfers == 0
            and self.retries == 0
            and self.faults_seen == 0
        )
