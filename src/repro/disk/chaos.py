"""Deterministic chaos harness for the crash-consistent disk layer.

The harness sweeps a grid of *cells* -- (fault rate, corruption rate,
crash point, seed) combinations -- and runs the resampled predictor
under each, with checksum verification on and crash resume via the
checkpoint protocol of :meth:`repro.core.resampled.ResampledModel.predict`.
Every cell must end in one of exactly three states:

* ``identical`` -- the prediction, possibly after any number of retries
  and crash resumes, is **bit-identical** to the fault-free reference;
* ``repaired`` -- bit-identical too, but only because repair-on-read
  rebuilt at-rest-corrupted pages from replicas or parity (the outcome
  counts the repairs, so healing is never invisible);
* ``degraded`` -- the run could not finish (retry budget exhausted, or
  media corruption with no surviving copy) and says so explicitly: the
  outcome carries the facade's degradation record naming the error, the
  methods attempted, and the method that produced the returned
  estimate.

The third state -- a prediction that *differs* from the reference
without announcing degradation -- is the one durability exists to
prevent.  :func:`assert_no_silent_divergence` turns its absence into a
single assertion, and the sweep is fully deterministic: same grid, same
dataset, same outcomes, byte for byte.

Everything here is ordinary library code (no test-framework imports) so
benchmarks and examples can run sweeps too; ``tests/test_chaos.py`` is
a thin pytest wrapper over this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Sequence

import numpy as np

from ..errors import CrashPoint, ReproError
from ..runtime.budget import Budget
from ..runtime.governor import Governor
from .accounting import IOCost
from .device import SimulatedDisk
from .faults import FaultInjector
from .pagefile import PointFile
from .redundancy import RedundancyPolicy
from .retry import RetryPolicy

__all__ = [
    "ChaosCell",
    "ChaosOutcome",
    "assert_budget_honored",
    "assert_no_silent_divergence",
    "chaos_grid",
    "run_cell",
    "run_sweep",
]

#: resumes allowed per cell before the harness declares the cell stuck;
#: a single disarming reboot per crash means one is enough, the margin
#: covers future recurring-crash cells
_MAX_RESUMES = 8


@dataclass(frozen=True)
class ChaosCell:
    """One point of the sweep grid.

    ``max_io_ops`` / ``deadline_s`` arm the budget axis: the cell's
    prediction runs under a :class:`~repro.runtime.governor.Governor`
    and must end within budget, explicitly degraded, or explicitly
    ``over_budget`` -- never hung, never silently overspent
    (:func:`assert_budget_honored`).

    ``at_rest_rate`` arms the media-rot axis: pages decay while the
    predictor is not looking.  ``replication_factor`` / ``parity`` arm
    the redundancy that repair-on-read draws on; with neither, a rotten
    page is unrecoverable and the cell must end explicitly degraded.
    """

    fault_rate: float = 0.0
    corruption_rate: float = 0.0
    crash_at: int | None = None
    seed: int = 0
    max_io_ops: int | None = None
    deadline_s: float | None = None
    at_rest_rate: float = 0.0
    replication_factor: int = 1
    parity: bool = False

    def budget(self) -> Budget | None:
        """The cell's budget, or ``None`` when the axis is unarmed."""
        if self.max_io_ops is None and self.deadline_s is None:
            return None
        return Budget(max_io_ops=self.max_io_ops, max_seconds=self.deadline_s)

    def redundancy_policy(self) -> RedundancyPolicy | None:
        """The cell's redundancy, or ``None`` when the axis is unarmed."""
        if self.replication_factor <= 1 and not self.parity:
            return None
        return RedundancyPolicy(
            replication_factor=self.replication_factor, parity=self.parity
        )

    def label(self) -> str:
        return (
            f"fault={self.fault_rate} corrupt={self.corruption_rate} "
            f"crash_at={self.crash_at} seed={self.seed} "
            f"max_io_ops={self.max_io_ops} deadline_s={self.deadline_s} "
            f"at_rest={self.at_rest_rate} rf={self.replication_factor} "
            f"parity={self.parity}"
        )


@dataclass
class ChaosOutcome:
    """What one cell did, and proof it did not lie.

    ``status`` is ``"identical"``, ``"repaired"`` (bit-identical, but
    only after repair-on-read rebuilt at-rest-corrupted pages --
    ``repairs`` says how many), ``"degraded"``, ``"over_budget"``
    (budget-axis cells whose governed fallback still finished above a
    limit -- explicit, with the spend report attached), or
    ``"mismatch"`` (the forbidden one).  ``degradation`` is the
    facade's explicit record when status is ``"degraded"`` or
    ``"over_budget"``; ``crashes`` counts resumes taken; ``io_cost`` is
    the cell's total charged ledger including retries, backoff,
    checkpoints, recovery, and redundancy upkeep.
    """

    cell: ChaosCell
    status: str
    per_query: np.ndarray
    crashes: int = 0
    repairs: int = 0
    degradation: dict | None = None
    io_cost: IOCost = field(default_factory=IOCost)
    #: the governed spend report for budget-axis cells (``None`` when
    #: the cell has no budget)
    budget_report: dict | None = None

    @property
    def silent_divergence(self) -> bool:
        return self.status == "mismatch"


def chaos_grid(
    fault_rates: Sequence[float] = (0.0, 0.05),
    corruption_rates: Sequence[float] = (0.0, 0.05),
    crash_points: Sequence[int | None] = (None, 1, 25),
    seeds: Sequence[int] = (0,),
    budgets: Sequence[int | None] = (None,),
    at_rest_rates: Sequence[float] = (0.0,),
    replication_factors: Sequence[int] = (1,),
) -> list[ChaosCell]:
    """The full cross product, minus the all-quiet cell per extra seed.

    The (0, 0, None) cell is kept only for the first seed -- with no
    faults armed the seed is dead weight, and the sweep stays small.
    ``budgets`` is the charged-I/O-op budget axis (``None`` entries run
    ungoverned); wall-clock deadlines are left off the default grid
    because they make outcomes timing-dependent, but individual
    :class:`ChaosCell` objects accept ``deadline_s`` directly.
    ``at_rest_rates`` and ``replication_factors`` arm the media-rot
    axis; both default to single inert entries so the default grid is
    unchanged.
    """
    cells = []
    for fr, cr, ca, seed, ops, ar, rf in product(
        fault_rates, corruption_rates, crash_points, seeds, budgets,
        at_rest_rates, replication_factors,
    ):
        if (fr == 0.0 and cr == 0.0 and ca is None and ar == 0.0
                and seed != seeds[0]):
            continue
        cells.append(ChaosCell(
            fr, cr, ca, seed, max_io_ops=ops,
            at_rest_rate=ar, replication_factor=rf,
        ))
    return cells


def _reference(points, workload, model, prediction_seed):
    """The fault-free prediction every cell is measured against."""
    file = PointFile.from_points(SimulatedDisk(), points)
    return model.predict(
        file, workload, np.random.default_rng(prediction_seed)
    )


def run_cell(
    points: np.ndarray,
    workload,
    model,
    cell: ChaosCell,
    reference: np.ndarray,
    *,
    prediction_seed: int = 0,
) -> ChaosOutcome:
    """Run one cell to a verdict.

    The predictor runs with checksum verification and a checkpoint; a
    :class:`~repro.errors.CrashPoint` reboots the injector (disarmed)
    and re-enters ``predict`` with the same file and checkpoint.  Any
    other :class:`~repro.errors.ReproError` escaping the retry policy
    sends the cell down the facade's explicit degradation chain.
    """
    injector = FaultInjector(
        SimulatedDisk(),
        read_fault_rate=cell.fault_rate,
        silent_corruption_rate=cell.corruption_rate,
        at_rest_corruption_rate=cell.at_rest_rate,
        seed=cell.seed,
        crash_at=cell.crash_at,
    )
    file = PointFile.from_points(
        injector, points, retry=RetryPolicy(), verify_checksums=True,
        redundancy=cell.redundancy_policy(),
    )
    budget = cell.budget()
    governor = Governor(budget) if budget is not None else None
    checkpoint: dict = {}
    crashes = 0
    folded = IOCost()
    while True:
        try:
            result = model.predict(
                file, workload, np.random.default_rng(prediction_seed),
                checkpoint=checkpoint, governor=governor,
            )
        except CrashPoint:
            crashes += 1
            if crashes > _MAX_RESUMES:
                raise
            if governor is not None:
                # The resumed attempt's ledger restarts from the file's
                # current cost, so fold everything spent so far first --
                # the budget governs the cell, not one attempt.
                governor.observe("crash_resume", file.disk.cost - folded)
                governor.end_attempt()
                folded = file.disk.cost
            injector.reboot()
            continue
        except ReproError as error:
            return _degrade(points, workload, model, cell, crashes, error,
                            prediction_seed, budget=budget)
        break
    if governor is not None:
        # True up: ops charged after the model's last boundary check.
        governor.observe("final", file.disk.cost - folded)
    identical = np.array_equal(result.per_query, reference)
    repairs = file.redundancy.repairs if file.redundancy is not None else 0
    if identical:
        status = "repaired" if repairs else "identical"
    else:
        status = "mismatch"
    return ChaosOutcome(
        cell=cell,
        status=status,
        per_query=result.per_query,
        crashes=crashes,
        repairs=repairs,
        io_cost=injector.cost,
        budget_report=governor.report() if governor is not None else None,
    )


def _degrade(points, workload, model, cell, crashes, error, prediction_seed,
             *, budget=None):
    """Retries exhausted: take the facade's fallback chain, loudly.

    The facade re-runs the method chain against fresh disks with the
    cell's fault configuration (no crash -- the crash, if any, already
    happened and was resumed); its terminal baseline touches no disk,
    so the chain always produces an estimate, and the outcome carries
    the full degradation record.  Budget-axis cells hand the facade
    the cell's budget, so the fallback chain is governed too; the
    outcome is ``"over_budget"`` when the governed run still finished
    above a limit, ``"degraded"`` otherwise -- explicit either way.
    """
    import warnings

    from ..core.predictor import IndexCostPredictor
    from ..errors import DegradedResultWarning

    facade = IndexCostPredictor(
        dim=points.shape[1],
        memory=model.memory,
        c_data=model.c_data,
        c_dir=model.c_dir,
        fault_rate=cell.fault_rate,
        silent_corruption_rate=cell.corruption_rate,
        at_rest_corruption_rate=cell.at_rest_rate,
        replication_factor=cell.replication_factor,
        parity=cell.parity,
        fault_seed=cell.seed,
        verify_checksums=True,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DegradedResultWarning)
        result = facade.predict(
            points, workload, method="resampled", seed=prediction_seed,
            budget=budget,
        )
    record = result.detail.get("degradation", {})
    record = dict(record)
    record.setdefault("attempts", [])
    record["triggering_error"] = f"{type(error).__name__}: {error}"
    budget_report = result.detail.get("budget")
    over = budget_report is not None and not budget_report["within_budget"]
    status = "over_budget" if over else "degraded"
    return ChaosOutcome(
        cell=cell,
        status=status,
        per_query=result.per_query,
        crashes=crashes,
        degradation=record,
        io_cost=result.io_cost,
        budget_report=budget_report,
    )


def run_sweep(
    points: np.ndarray,
    workload,
    model,
    cells: Sequence[ChaosCell],
    *,
    prediction_seed: int = 0,
) -> list[ChaosOutcome]:
    """Run every cell against one shared fault-free reference."""
    reference = _reference(points, workload, model, prediction_seed)
    return [
        run_cell(points, workload, model, cell, reference.per_query,
                 prediction_seed=prediction_seed)
        for cell in cells
    ]


def assert_no_silent_divergence(outcomes: Sequence[ChaosOutcome]) -> None:
    """The sweep's single invariant, as an assertion.

    Every outcome either reproduced the fault-free prediction
    bit-identically (``identical``, or ``repaired`` with a repair
    count admitting the healing) or carries an explicit degradation
    record; a ``mismatch`` -- or a degraded outcome with no record, or
    a repaired outcome with no repairs -- raises.
    """
    for outcome in outcomes:
        if outcome.silent_divergence:
            raise AssertionError(
                f"silent divergence in cell [{outcome.cell.label()}]: "
                f"prediction differs from the fault-free reference with "
                f"no degradation record"
            )
        if outcome.status == "degraded" and not outcome.degradation:
            raise AssertionError(
                f"cell [{outcome.cell.label()}] degraded without a record"
            )
        if outcome.status == "repaired" and outcome.repairs <= 0:
            raise AssertionError(
                f"cell [{outcome.cell.label()}] claims repaired with a "
                f"zero repair count"
            )


def assert_budget_honored(outcomes: Sequence[ChaosOutcome]) -> None:
    """The budget axis's invariant: no silent overspend, no silent caps.

    Every budget-axis cell must end in one of exactly three explicit
    states -- finished within budget, degraded with a record naming the
    budget trip, or ``over_budget`` carrying a spend report that admits
    it.  A budgeted outcome whose charged ops exceed its cap *without*
    saying so raises.
    """
    for outcome in outcomes:
        budget = outcome.cell.budget()
        if budget is None:
            continue
        label = outcome.cell.label()
        if outcome.budget_report is None:
            raise AssertionError(
                f"budgeted cell [{label}] carries no spend report"
            )
        if outcome.status == "over_budget":
            if outcome.budget_report["within_budget"]:
                raise AssertionError(
                    f"cell [{label}] claims over_budget but its report "
                    f"says within budget"
                )
            continue
        if outcome.status not in ("identical", "repaired", "degraded"):
            raise AssertionError(
                f"budgeted cell [{label}] ended in forbidden state "
                f"{outcome.status!r}"
            )
        report = outcome.budget_report
        if (budget.max_io_ops is not None
                and report["spent_io_ops"] > budget.max_io_ops
                and report["within_budget"]):
            raise AssertionError(
                f"silent overspend in cell [{label}]: "
                f"{report['spent_io_ops']} charged ops of "
                f"{budget.max_io_ops} with within_budget=True"
            )
        if (not report["within_budget"]
                and outcome.status in ("identical", "repaired")):
            raise AssertionError(
                f"cell [{label}] finished over budget without an explicit "
                f"over_budget or degraded verdict"
            )
