"""Retry policy for transient simulated-disk faults.

Real object servers retry transient I/O errors with exponential
backoff; in this simulation the backoff is not wall-clock sleep but
*simulated seek time charged to the IOCost ledger*, so a prediction
that survives faults honestly reports what surviving them cost.  The
re-issued access itself is charged by the device exactly like the
original attempt, and every retry round increments the ledger's
``retries`` counter (see :class:`~repro.disk.accounting.IOCost`).

Only fault classes that are retryable by re-issuing the operation are
retried: :class:`~repro.errors.TransientReadError` (re-read the run),
:class:`~repro.errors.TornWriteError` (rewrite the full range -- page
writes here are idempotent), and :class:`~repro.errors.ChecksumError`
(the flip happened in transit; re-reading fetches clean bits).
Everything else propagates -- in particular
:class:`~repro.errors.CrashPoint`: a dead process retries nothing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, TypeVar

from ..errors import ChecksumError, TornWriteError, TransientReadError
from .accounting import IOCost

__all__ = ["RetryPolicy"]

T = TypeVar("T")

_RETRYABLE = (TransientReadError, TornWriteError, ChecksumError)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff charged in seeks.

    ``max_attempts`` counts the original attempt: the default of 4
    allows three retries.  Retry round ``r`` (1-based) charges
    ``ceil(backoff_seeks * backoff_factor ** (r - 1))`` penalty seeks
    before the operation is re-issued, modeling the re-queue and
    re-positioning delay of a real device.
    """

    max_attempts: int = 4
    backoff_seeks: int = 1
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_seeks < 0:
            raise ValueError("backoff_seeks must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be at least 1")

    def backoff_cost(self, retry_round: int) -> IOCost:
        """Penalty charged before retry round ``retry_round`` (1-based)."""
        if retry_round < 1:
            raise ValueError("retry rounds are 1-based")
        seeks = math.ceil(
            self.backoff_seeks * self.backoff_factor ** (retry_round - 1)
        )
        return IOCost(seeks=seeks)

    def run(self, disk, operation: Callable[[], T]) -> T:
        """Execute ``operation`` with retries charged to ``disk``.

        ``disk`` is any device-like object exposing ``note_retry`` and
        ``drop_head`` (both optional -- a bare accounting stub still
        works, it just goes unbilled).  On exhaustion the last fault is
        re-raised, with its ``attempts`` attribute updated when the
        exception carries one.
        """
        attempt = 1
        while True:
            try:
                return operation()
            except _RETRYABLE as fault:
                if attempt >= self.max_attempts:
                    if hasattr(fault, "attempts"):
                        fault.attempts = attempt
                    raise
                note_retry = getattr(disk, "note_retry", None)
                if note_retry is not None:
                    note_retry(self.backoff_cost(attempt))
                # After a failed access the head position is untrusted.
                drop_head = getattr(disk, "drop_head", None)
                if drop_head is not None:
                    drop_head()
                attempt += 1
