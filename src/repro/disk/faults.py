"""Deterministic fault injection over the simulated disk.

:class:`FaultInjector` wraps a :class:`~repro.disk.device.SimulatedDisk`
behind the same ``allocate``/``access``/``read``/``write`` API and
injects seed-driven fault classes with independent rates:

* **transient read failures** -- the attempted run is charged (the
  device did seek and stream) but the data is garbage, so
  :class:`~repro.errors.TransientReadError` is raised; a retry may
  succeed;
* **torn multi-page writes** -- only a random prefix of a multi-page
  write lands (and is charged) before
  :class:`~repro.errors.TornWriteError` is raised; rewriting the full
  range is safe because page writes are idempotent;
* **latency spikes** -- the access succeeds but costs extra penalty
  seeks, modeling queueing or remapping stalls;
* **silent corruption** -- the read succeeds and *nothing is raised*:
  the injector records a deterministic bit flip against one page of the
  run, which the data layer above (a checksum-verifying
  :class:`~repro.disk.pagefile.PointFile`) applies to the returned
  payload.  Without checksum verification the caller silently consumes
  corrupted data; with it, the flip is caught as
  :class:`~repro.errors.ChecksumError`.
* **at-rest corruption** -- rot on the platter, not the wire.  On the
  *first* read of each page a seed-deterministic verdict is drawn at
  ``at_rest_corruption_rate``; a rotten page carries a persistent bit
  flip that every subsequent read returns, so retries cannot help and
  the flip survives :meth:`reboot` and :meth:`reset_counters` alike.
  Only a *write* to the page heals it (re-magnetizing the platter) --
  which is exactly what the repair-on-read path of a redundant
  :class:`~repro.disk.pagefile.PointFile` does, reconstructing the
  payload from a mirrored replica or a parity stripe
  (:mod:`repro.disk.redundancy`).  The registry is queried
  non-destructively via :meth:`at_rest_flips` / :meth:`is_rotten`,
  unlike the consume-once in-transit flips.  A freshly written page is
  considered durably clean: its verdict is settled as "not rotten" and
  later reads draw nothing, keeping replay deterministic (no
  heal-then-re-rot loops).

Crash scheduling is orthogonal to the rates: ``crash_at=N`` raises
:class:`~repro.errors.CrashPoint` when the N-th charged operation
(1-based, reads and writes alike) is about to be issued.  The
operation never lands, and the injector then plays dead -- every later
charged access raises ``CrashPoint`` again -- until :meth:`reboot`.

Faults come from a private :class:`numpy.random.Generator` seeded at
construction, so a fixed seed over a fixed operation sequence replays
bit-identically -- the property the fault-injection tests pin down.
With all rates zero and no crash armed the injector is a strict
pass-through: no random draws, no extra cost, byte-identical ledgers to
the bare device (the zero-overhead guarantee).

The errors surfaced here feed two recovery layers above: the
per-access :class:`~repro.disk.retry.RetryPolicy` (charged retries with
backoff), and -- when a :class:`~repro.runtime.breaker.CircuitBreaker`
is attached to the :class:`~repro.disk.pagefile.PointFile` -- a
failure-rate window that opens the circuit on a persistently faulty
device, short-circuiting further charged attempts with
:class:`~repro.errors.CircuitOpenError` instead of burning the retry
budget (the facade then degrades to the disk-free methods).
"""

from __future__ import annotations

import numpy as np

from ..errors import (
    CrashPoint,
    InputValidationError,
    TornWriteError,
    TransientReadError,
)
from .accounting import DiskParameters, IOCost
from .device import SimulatedDisk

__all__ = ["FaultInjector"]


class FaultInjector:
    """Seed-driven fault wrapper presenting the ``SimulatedDisk`` API."""

    def __init__(
        self,
        disk: SimulatedDisk,
        *,
        read_fault_rate: float = 0.0,
        torn_write_rate: float = 0.0,
        latency_spike_rate: float = 0.0,
        silent_corruption_rate: float = 0.0,
        at_rest_corruption_rate: float = 0.0,
        seed: int = 0,
        spike_seeks: int = 2,
        crash_at: int | None = None,
    ):
        for name, rate in (
            ("read_fault_rate", read_fault_rate),
            ("torn_write_rate", torn_write_rate),
            ("latency_spike_rate", latency_spike_rate),
            ("silent_corruption_rate", silent_corruption_rate),
            ("at_rest_corruption_rate", at_rest_corruption_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise InputValidationError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        if spike_seeks < 0:
            raise InputValidationError("spike_seeks must be non-negative")
        if crash_at is not None and crash_at < 1:
            raise InputValidationError(
                f"crash_at is a 1-based charged-op index, got {crash_at}"
            )
        self.inner = disk
        self.read_fault_rate = read_fault_rate
        self.torn_write_rate = torn_write_rate
        self.latency_spike_rate = latency_spike_rate
        self.silent_corruption_rate = silent_corruption_rate
        self.at_rest_corruption_rate = at_rest_corruption_rate
        self.seed = seed
        self.spike_seeks = spike_seeks
        self.crash_at = crash_at
        self._rng = np.random.default_rng(seed)
        self._ops_issued = 0
        self._crashed = False
        #: (absolute page, byte offset within payload, bit) flips recorded
        #: by the last corrupted read, awaiting pickup by the data layer
        self._pending_corruption: list[tuple[int, int, int]] = []
        #: absolute page -> (byte, bit) persistent flip on the media;
        #: unlike pending corruption this is the state of the platter,
        #: surviving reboots, counter resets, and any number of rereads
        self._rotten: dict[int, tuple[int, int]] = {}
        #: pages whose at-rest verdict is settled (rotten or durably
        #: clean); a page is only ever drawn against the rate once
        self._rot_decided: set[int] = set()

    @property
    def _inert(self) -> bool:
        return (
            self.read_fault_rate == 0.0
            and self.torn_write_rate == 0.0
            and self.latency_spike_rate == 0.0
            and self.silent_corruption_rate == 0.0
            and self.at_rest_corruption_rate == 0.0
        )

    # ------------------------------------------------------------------
    # Crash scheduling
    # ------------------------------------------------------------------

    def _count_op(self) -> None:
        """Account one charged operation; dies if the crash is due.

        Raises *before* the operation reaches the device: the op that
        hits the crash point never lands, matching a process killed
        between issuing the syscall and the device accepting it.
        """
        if self._crashed:
            raise CrashPoint(self._ops_issued)
        self._ops_issued += 1
        if self.crash_at is not None and self._ops_issued >= self.crash_at:
            self._crashed = True
            raise CrashPoint(self._ops_issued)

    @property
    def crashed(self) -> bool:
        return self._crashed

    @property
    def ops_issued(self) -> int:
        """Charged operations issued to the device so far."""
        return self._ops_issued

    def reboot(self, *, crash_at: int | None = None) -> None:
        """Bring a crashed injector back up.

        Clears the dead state, restarts the charged-op count, and arms
        the next crash at ``crash_at`` (``None`` disarms).  The head
        position is forgotten -- a rebooted machine has no idea where
        the arm sits -- so recovery I/O pays its first seek honestly.
        Fault rates and the fault RNG stream are left untouched: the
        world stays as hostile as it was before the crash.  At-rest rot
        survives too -- a reboot spins the same rusty platter back up.
        """
        self._crashed = False
        self._ops_issued = 0
        self.crash_at = crash_at
        self.inner.drop_head()

    # ------------------------------------------------------------------
    # Faulting access paths
    # ------------------------------------------------------------------

    def read(self, start_page: int, n_pages: int) -> IOCost:
        """Read a run; may raise ``TransientReadError`` after charging
        the failed attempt, or record a silent bit flip."""
        if n_pages == 0:
            return self.inner.read(start_page, n_pages)
        if self._inert:
            if self.crash_at is not None or self._crashed:
                self._count_op()
            return self.inner.read(start_page, n_pages)
        self._count_op()
        if (
            self.read_fault_rate > 0.0
            and self._rng.random() < self.read_fault_rate
        ):
            self.inner.read(start_page, n_pages)  # the attempt is paid for
            self.inner.note_fault()
            raise TransientReadError(start_page, n_pages)
        cost = self.inner.read(start_page, n_pages)
        if self.at_rest_corruption_rate > 0.0:
            self._decide_rot(start_page, n_pages)
        if (
            self.silent_corruption_rate > 0.0
            and self._rng.random() < self.silent_corruption_rate
        ):
            page = start_page + int(self._rng.integers(0, n_pages))
            byte = int(self._rng.integers(0, self.inner.parameters.page_bytes))
            bit = int(self._rng.integers(0, 8))
            self._pending_corruption.append((page, byte, bit))
            self.inner.note_fault()
        return cost + self._maybe_spike()

    def write(self, start_page: int, n_pages: int) -> IOCost:
        """Write a run; may raise ``TornWriteError`` after charging the
        prefix that landed."""
        if n_pages == 0:
            return self.inner.write(start_page, n_pages)
        if self._inert:
            if self.crash_at is not None or self._crashed:
                self._count_op()
            self._settle_write(start_page, n_pages)
            return self.inner.write(start_page, n_pages)
        self._count_op()
        if (
            n_pages >= 2
            and self.torn_write_rate > 0.0
            and self._rng.random() < self.torn_write_rate
        ):
            pages_written = int(self._rng.integers(1, n_pages))
            self.inner.write(start_page, pages_written)
            # only the landed prefix was re-magnetized
            self._settle_write(start_page, pages_written)
            self.inner.note_fault()
            raise TornWriteError(start_page, n_pages, pages_written)
        cost = self.inner.write(start_page, n_pages)
        self._settle_write(start_page, n_pages)
        return cost + self._maybe_spike()

    # ``SimulatedDisk`` exposes a direction-agnostic ``access``; callers
    # using it get the read fault model (scans dominate that path).
    access = read

    def consume_corruption(
        self, start_page: int, n_pages: int
    ) -> list[tuple[int, int, int]]:
        """Hand pending bit flips for ``[start_page, start_page+n_pages)``
        to the data layer, clearing them.

        Flips are recorded by the read that drew them and consumed by
        the layer holding the bytes (the device itself stores none).
        Flips outside the queried run stay pending -- they belong to a
        different file's pages.
        """
        if not self._pending_corruption:
            return []
        end = start_page + n_pages
        taken = [c for c in self._pending_corruption if start_page <= c[0] < end]
        if taken:
            self._pending_corruption = [
                c for c in self._pending_corruption if not start_page <= c[0] < end
            ]
        return taken

    # ------------------------------------------------------------------
    # At-rest corruption (rot on the platter)
    # ------------------------------------------------------------------

    def _decide_rot(self, start_page: int, n_pages: int) -> None:
        """Draw the one-time at-rest verdict for undecided pages of a run."""
        for page in range(start_page, start_page + n_pages):
            if page in self._rot_decided:
                continue
            self._rot_decided.add(page)
            if self._rng.random() < self.at_rest_corruption_rate:
                byte = int(
                    self._rng.integers(0, self.inner.parameters.page_bytes)
                )
                bit = int(self._rng.integers(0, 8))
                self._rotten[page] = (byte, bit)
                self.inner.note_fault()

    def _settle_write(self, start_page: int, n_pages: int) -> None:
        """A landed write re-magnetizes its pages: rot is healed and the
        verdict is settled as durably clean."""
        if self.at_rest_corruption_rate > 0.0:
            self._rot_decided.update(range(start_page, start_page + n_pages))
        if self._rotten:
            for page in range(start_page, start_page + n_pages):
                self._rotten.pop(page, None)

    def at_rest_flips(
        self, start_page: int, n_pages: int
    ) -> list[tuple[int, int, int]]:
        """Persistent ``(page, byte, bit)`` flips within the run.

        Non-destructive, unlike :meth:`consume_corruption`: the rot is
        on the platter and stays until the page is rewritten.  The data
        layer calls this after every charged read to overlay the
        media's true state on the returned payload.
        """
        if not self._rotten:
            return []
        end = start_page + n_pages
        return [
            (page, byte, bit)
            for page, (byte, bit) in self._rotten.items()
            if start_page <= page < end
        ]

    def is_rotten(self, page: int) -> bool:
        """Whether ``page`` currently carries an at-rest flip."""
        return page in self._rotten

    @property
    def rotten_pages(self) -> int:
        """Number of pages currently rotten on the media."""
        return len(self._rotten)

    def _maybe_spike(self) -> IOCost:
        if (
            self.latency_spike_rate > 0.0
            and self._rng.random() < self.latency_spike_rate
        ):
            penalty = IOCost(seeks=self.spike_seeks)
            self.inner.charge_penalty(penalty)
            self.inner.note_fault()
            return penalty
        return IOCost()

    # ------------------------------------------------------------------
    # Pass-through of the rest of the device API
    # ------------------------------------------------------------------

    @property
    def parameters(self) -> DiskParameters:
        return self.inner.parameters

    @property
    def capacity_pages(self) -> int | None:
        return self.inner.capacity_pages

    def allocate(self, n_pages: int) -> int:
        return self.inner.allocate(n_pages)

    @property
    def allocated_pages(self) -> int:
        return self.inner.allocated_pages

    @property
    def cost(self) -> IOCost:
        return self.inner.cost

    def seconds(self) -> float:
        return self.inner.seconds()

    def reset_counters(self) -> IOCost:
        """Zero the ledger *and* the injector's phase-local residue.

        Phase-scoped accounting (``reset; run phase; read cost``) must
        not leak state between phases: the device zeroes seeks,
        transfers, retries, and faults_seen together, and the injector
        drops corruption flips recorded but never consumed -- a flip
        from phase A materializing in phase B would charge B for A's
        fault.  The fault RNG stream, the crash schedule, and the
        at-rest rot registry are *not* reset: they model the hostile
        world (and the physical media), not the ledger.
        """
        self._pending_corruption.clear()
        return self.inner.reset_counters()

    def drop_head(self) -> None:
        self.inner.drop_head()

    def charge_penalty(self, penalty: IOCost) -> None:
        self.inner.charge_penalty(penalty)

    def note_retry(self, backoff: IOCost) -> None:
        self.inner.note_retry(backoff)

    def note_fault(self) -> None:
        self.inner.note_fault()
