"""Deterministic fault injection over the simulated disk.

:class:`FaultInjector` wraps a :class:`~repro.disk.device.SimulatedDisk`
behind the same ``allocate``/``access``/``read``/``write`` API and
injects three seed-driven fault classes with independent rates:

* **transient read failures** -- the attempted run is charged (the
  device did seek and stream) but the data is garbage, so
  :class:`~repro.errors.TransientReadError` is raised; a retry may
  succeed;
* **torn multi-page writes** -- only a random prefix of a multi-page
  write lands (and is charged) before
  :class:`~repro.errors.TornWriteError` is raised; rewriting the full
  range is safe because page writes are idempotent;
* **latency spikes** -- the access succeeds but costs extra penalty
  seeks, modeling queueing or remapping stalls.

Faults come from a private :class:`numpy.random.Generator` seeded at
construction, so a fixed seed over a fixed operation sequence replays
bit-identically -- the property the fault-injection tests pin down.
With all rates zero the injector is a strict pass-through: no random
draws, no extra cost, byte-identical ledgers to the bare device (the
zero-overhead guarantee).
"""

from __future__ import annotations

import numpy as np

from ..errors import InputValidationError, TornWriteError, TransientReadError
from .accounting import DiskParameters, IOCost
from .device import SimulatedDisk

__all__ = ["FaultInjector"]


class FaultInjector:
    """Seed-driven fault wrapper presenting the ``SimulatedDisk`` API."""

    def __init__(
        self,
        disk: SimulatedDisk,
        *,
        read_fault_rate: float = 0.0,
        torn_write_rate: float = 0.0,
        latency_spike_rate: float = 0.0,
        seed: int = 0,
        spike_seeks: int = 2,
    ):
        for name, rate in (
            ("read_fault_rate", read_fault_rate),
            ("torn_write_rate", torn_write_rate),
            ("latency_spike_rate", latency_spike_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise InputValidationError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        if spike_seeks < 0:
            raise InputValidationError("spike_seeks must be non-negative")
        self.inner = disk
        self.read_fault_rate = read_fault_rate
        self.torn_write_rate = torn_write_rate
        self.latency_spike_rate = latency_spike_rate
        self.seed = seed
        self.spike_seeks = spike_seeks
        self._rng = np.random.default_rng(seed)

    @property
    def _inert(self) -> bool:
        return (
            self.read_fault_rate == 0.0
            and self.torn_write_rate == 0.0
            and self.latency_spike_rate == 0.0
        )

    # ------------------------------------------------------------------
    # Faulting access paths
    # ------------------------------------------------------------------

    def read(self, start_page: int, n_pages: int) -> IOCost:
        """Read a run; may raise ``TransientReadError`` after charging
        the failed attempt."""
        if self._inert or n_pages == 0:
            return self.inner.read(start_page, n_pages)
        if (
            self.read_fault_rate > 0.0
            and self._rng.random() < self.read_fault_rate
        ):
            self.inner.read(start_page, n_pages)  # the attempt is paid for
            self.inner.note_fault()
            raise TransientReadError(start_page, n_pages)
        cost = self.inner.read(start_page, n_pages)
        return cost + self._maybe_spike()

    def write(self, start_page: int, n_pages: int) -> IOCost:
        """Write a run; may raise ``TornWriteError`` after charging the
        prefix that landed."""
        if self._inert or n_pages == 0:
            return self.inner.write(start_page, n_pages)
        if (
            n_pages >= 2
            and self.torn_write_rate > 0.0
            and self._rng.random() < self.torn_write_rate
        ):
            pages_written = int(self._rng.integers(1, n_pages))
            self.inner.write(start_page, pages_written)
            self.inner.note_fault()
            raise TornWriteError(start_page, n_pages, pages_written)
        cost = self.inner.write(start_page, n_pages)
        return cost + self._maybe_spike()

    # ``SimulatedDisk`` exposes a direction-agnostic ``access``; callers
    # using it get the read fault model (scans dominate that path).
    access = read

    def _maybe_spike(self) -> IOCost:
        if (
            self.latency_spike_rate > 0.0
            and self._rng.random() < self.latency_spike_rate
        ):
            penalty = IOCost(seeks=self.spike_seeks)
            self.inner.charge_penalty(penalty)
            self.inner.note_fault()
            return penalty
        return IOCost()

    # ------------------------------------------------------------------
    # Pass-through of the rest of the device API
    # ------------------------------------------------------------------

    @property
    def parameters(self) -> DiskParameters:
        return self.inner.parameters

    @property
    def capacity_pages(self) -> int | None:
        return self.inner.capacity_pages

    def allocate(self, n_pages: int) -> int:
        return self.inner.allocate(n_pages)

    @property
    def allocated_pages(self) -> int:
        return self.inner.allocated_pages

    @property
    def cost(self) -> IOCost:
        return self.inner.cost

    def seconds(self) -> float:
        return self.inner.seconds()

    def reset_counters(self) -> IOCost:
        return self.inner.reset_counters()

    def drop_head(self) -> None:
        self.inner.drop_head()

    def charge_penalty(self, penalty: IOCost) -> None:
        self.inner.charge_penalty(penalty)

    def note_retry(self, backoff: IOCost) -> None:
        self.inner.note_retry(backoff)

    def note_fault(self) -> None:
        self.inner.note_fault()
