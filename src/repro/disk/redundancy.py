"""Page redundancy under :class:`~repro.disk.pagefile.PointFile`.

PR 2's CRC32 sidecar *detects* a corrupted page; retry helps only when
the flip happened in transit.  Rot on the platter
(``at_rest_corruption_rate`` in :mod:`repro.disk.faults`) fails every
reread the same way, so detection alone leaves the page -- and any
prediction that needs it -- unrecoverable.  This module closes the
detect-to-repair gap with two interchangeable redundancy schemes:

* **k-way mirroring** (``replication_factor=k``): ``k - 1`` replica
  regions of the file's pages, each write propagated to every copy;
* **RAID-4-style parity** (``parity=True``): one parity page per
  ``stripe_width`` data pages in a dedicated region, updated on every
  data write; a lost data page is reconstructed by XOR-ing the
  surviving stripe members with the parity page.

Both schemes charge their extra I/O through the owning file's
``charged`` path (same retry policy, same circuit breaker, same
:class:`~repro.disk.accounting.IOCost` pricing) and additionally track
it in a separate ``redundancy_cost`` ledger, mirroring how journal I/O
is reported -- so the redundancy tax is always visible, never smeared
into the data cost.  With ``replication_factor=1`` and parity off no
manager is created at all: zero allocations, zero charges, bit-identical
ledgers to an unreplicated file.

Because the simulated device stores no bytes (the authoritative payload
lives in the file's buffer; see :mod:`repro.disk.device`), a copy's
goodness is modeled through the fault injector's rot registry: a
replica page is usable iff it is not rotten and its verification read
was not flipped in transit, and a parity reconstruction succeeds iff
*every* surviving stripe member (data and parity pages alike) is clean
-- any flip in any member corrupts the XOR, which the CRC check would
catch.  Repair rewrites the healed page through
``write_range_atomic`` (journal-protected when a journal is attached),
which also refreshes every copy of that page: after a repair the page
is healthy across the whole redundancy group.

The **scrubber** (:meth:`PointFile.scrub
<repro.disk.pagefile.PointFile.scrub>`) turns repair-on-read into a
background pass: walk every data page through the verified read path
(repairing as it goes), then sweep the replica and parity regions,
rewriting any rotten copy from the authoritative primary.  The walk is
budget-aware -- handed a :class:`~repro.runtime.governor.Governor` it
checks the op budget and deadline at every page and stops explicitly,
reporting how far it got -- and returns a structured
:class:`ScrubReport`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import BudgetExceededError, InputValidationError
from .accounting import IOCost

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..runtime.governor import Governor
    from .pagefile import PointFile

__all__ = ["RedundancyPolicy", "RedundancyManager", "ScrubReport"]


@dataclass(frozen=True)
class RedundancyPolicy:
    """What redundancy a file carries; ``is_active`` False costs nothing.

    ``replication_factor`` counts the primary: 1 means no mirrors.
    ``parity`` adds one RAID-4-style parity page per ``stripe_width``
    data pages, usable alone (pure parity) or on top of mirroring
    (mirrors are tried first on repair -- one page read beats a stripe
    reconstruction).
    """

    replication_factor: int = 1
    parity: bool = False
    stripe_width: int = 8

    def __post_init__(self) -> None:
        if (not isinstance(self.replication_factor, int)
                or self.replication_factor < 1):
            raise InputValidationError(
                f"replication_factor must be a positive integer, got "
                f"{self.replication_factor!r}"
            )
        if not isinstance(self.stripe_width, int) or self.stripe_width < 2:
            raise InputValidationError(
                f"stripe_width must be an integer >= 2, got "
                f"{self.stripe_width!r}"
            )

    @property
    def is_active(self) -> bool:
        return self.replication_factor > 1 or self.parity


@dataclass(frozen=True)
class ScrubReport:
    """What one scrub pass found, fixed, and spent.

    ``unrecoverable`` lists absolute page numbers whose every copy was
    bad -- the pages a subsequent read would fail on with
    :class:`~repro.errors.UnrecoverableCorruptionError`.  ``completed``
    is False when a governed scrub stopped at a budget or deadline
    boundary; ``exhausted`` then records where.
    """

    pages_total: int
    pages_scanned: int
    repaired: int
    copies_repaired: int
    unrecoverable: tuple[int, ...]
    transient_failures: int
    io_cost: IOCost = field(default_factory=IOCost)
    redundancy_cost: IOCost = field(default_factory=IOCost)
    completed: bool = True
    exhausted: dict | None = None

    @property
    def clean(self) -> bool:
        """True when the media needed nothing: no repairs, no losses."""
        return (not self.unrecoverable and self.repaired == 0
                and self.copies_repaired == 0)

    def as_dict(self) -> dict:
        """JSON-friendly form for result details and CLI output."""
        return {
            "pages_total": self.pages_total,
            "pages_scanned": self.pages_scanned,
            "repaired": self.repaired,
            "copies_repaired": self.copies_repaired,
            "unrecoverable": list(self.unrecoverable),
            "transient_failures": self.transient_failures,
            "io_seeks": self.io_cost.seeks,
            "io_transfers": self.io_cost.transfers,
            "redundancy_seeks": self.redundancy_cost.seeks,
            "redundancy_transfers": self.redundancy_cost.transfers,
            "completed": self.completed,
            "exhausted": self.exhausted,
        }


class RedundancyManager:
    """Owns a file's replica and parity regions and the repair protocol.

    Created by :class:`~repro.disk.pagefile.PointFile` when its policy
    ``is_active``; the regions are allocated up front from the same
    disk (capacity errors surface at file creation, like a real
    pre-provisioned RAID group).  All charged I/O flows through the
    owning file's retry policy and breaker; ``redundancy_cost``
    accumulates it separately, and ``repairs`` / ``copies_repaired``
    count pages healed on the primary and in the copy regions.
    """

    def __init__(self, file: "PointFile", policy: RedundancyPolicy):
        self.file = file
        self.policy = policy
        self.redundancy_cost = IOCost()
        self.repairs = 0
        self.copies_repaired = 0
        pages = file._pages_for(file.capacity)
        self._region_pages = pages
        self.replica_bases = [
            file.disk.allocate(pages)
            for _ in range(policy.replication_factor - 1)
        ]
        self.parity_base: int | None = None
        if policy.parity and pages > 0:
            self.parity_base = file.disk.allocate(
                math.ceil(pages / policy.stripe_width)
            )

    @property
    def copies_per_page(self) -> int:
        """Primary plus every way a page's payload can be recovered."""
        return (1 + len(self.replica_bases)
                + (1 if self.parity_base is not None else 0))

    # ------------------------------------------------------------------
    # Write propagation
    # ------------------------------------------------------------------

    def on_write(self, rel_first: int, count: int) -> None:
        """Propagate a landed primary write to every copy.

        One charged write run per replica region, plus one charged
        single-page write per touched parity stripe.  Charged through
        the file (retry + breaker) and billed to ``redundancy_cost``.
        """
        if count <= 0:
            return
        for base in self.replica_bases:
            self._charged_write(base + rel_first, count)
        if self.parity_base is not None:
            width = self.policy.stripe_width
            last = (rel_first + count - 1) // width
            for stripe in range(rel_first // width, last + 1):
                self._charged_write(self.parity_base + stripe, 1)

    def _charged_write(self, page: int, n_pages: int) -> None:
        def op() -> IOCost:
            self.file.disk.drop_head()  # the copy region is elsewhere
            return self.file.disk.write(page, n_pages)

        self.redundancy_cost = self.redundancy_cost + self.file.charged(op)

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------

    def repair(self, rel: int) -> str | None:
        """Reconstruct relative page ``rel`` from any surviving copy.

        Tries mirrored replicas first (one page read each), then parity
        reconstruction.  On success the healed payload is rewritten
        through ``write_range_atomic`` -- journal-protected when the
        file has a journal, and propagated back to every copy by the
        write path -- so the whole redundancy group is healthy
        afterwards.  Returns the source that served the repair
        (``"replica-i"`` / ``"parity"``), or ``None`` when every copy
        was bad; the caller then raises
        :class:`~repro.errors.UnrecoverableCorruptionError`.
        """
        file = self.file
        disk = file.disk
        source: str | None = None
        for i, base in enumerate(self.replica_bases):
            if self._copy_is_clean(base + rel, 1):
                source = f"replica-{i}"
                break
        if source is None and self.parity_base is not None:
            if self._parity_reconstructs(rel):
                source = "parity"
        if source is None:
            return None
        lo, hi = file._page_rows(rel)
        payload = file.peek(lo, hi).copy()
        file.write_range_atomic(lo, payload)
        file.invalidate_cached(file.start_page + rel, 1)
        self.repairs += 1
        return source

    def _copy_is_clean(self, page: int, n_pages: int) -> bool:
        """Charged verification read of a copy run; True iff usable.

        A copy is unusable when it is rotten on the platter, or when
        this very verification read was flipped in transit -- a real
        repairer cannot trust bits it cannot verify, so it moves on to
        the next copy rather than recursing into rereads.
        """
        disk = self.file.disk
        disk.drop_head()
        self.redundancy_cost = self.redundancy_cost + disk.read(page, n_pages)
        consume = getattr(disk, "consume_corruption", None)
        transit = consume(page, n_pages) if consume is not None else []
        if transit:
            return False
        is_rotten = getattr(disk, "is_rotten", None)
        if is_rotten is None:
            return True
        return not any(
            is_rotten(p) for p in range(page, page + n_pages)
        )

    def _parity_reconstructs(self, rel: int) -> bool:
        """Whether XOR over the stripe's survivors yields the lost page.

        Reads the stripe's data run and its parity page (charged);
        the reconstruction is clean iff every member other than the
        lost page is clean -- one flipped member poisons the XOR, and
        the CRC check against the sidecar would reject it.
        """
        file = self.file
        disk = file.disk
        width = self.policy.stripe_width
        stripe = rel // width
        first_rel = stripe * width
        count = min(width, self._region_pages - first_rel)
        consume = getattr(disk, "consume_corruption", None)
        is_rotten = getattr(disk, "is_rotten", None)

        disk.drop_head()
        self.redundancy_cost = self.redundancy_cost + disk.read(
            file.start_page + first_rel, count
        )
        data_transit = (consume(file.start_page + first_rel, count)
                        if consume is not None else [])
        parity_clean = self._copy_is_clean(self.parity_base + stripe, 1)

        lost = file.start_page + rel
        if any(page != lost for page, _b, _t in data_transit):
            return False
        if not parity_clean:
            return False
        if is_rotten is not None:
            for p in range(first_rel, first_rel + count):
                if p != rel and is_rotten(file.start_page + p):
                    return False
        return True

    # ------------------------------------------------------------------
    # Copy-region scrub
    # ------------------------------------------------------------------

    def scrub_copies(
        self,
        *,
        governor: "Governor | None" = None,
        ledger_base: IOCost | None = None,
    ) -> dict | None:
        """Sweep replica and parity regions, rewriting rotten copies.

        Runs after the primary pages were scrubbed (so the primary is
        the authoritative clean source).  Returns ``None`` on
        completion, or the exhaustion record when the governor stopped
        the sweep at a region boundary.
        """
        file = self.file
        disk = file.disk
        pages = file.n_pages
        if pages == 0:
            return None
        base_cost = ledger_base if ledger_base is not None else disk.cost
        regions = [(base, pages) for base in self.replica_bases]
        if self.parity_base is not None:
            regions.append(
                (self.parity_base,
                 math.ceil(pages / self.policy.stripe_width))
            )
        is_rotten = getattr(disk, "is_rotten", None)
        for base, n_pages in regions:
            if governor is not None:
                try:
                    governor.check("scrub", disk.cost - base_cost)
                except BudgetExceededError as error:
                    return {
                        "error": type(error).__name__,
                        "phase": "scrub:copies",
                        "detail": str(error),
                    }
            def read_region(base=base, n=n_pages) -> IOCost:
                disk.drop_head()
                return disk.read(base, n)

            self.redundancy_cost = (
                self.redundancy_cost + file.charged(read_region)
            )
            consume = getattr(disk, "consume_corruption", None)
            if consume is not None:
                # copies carry no checksummed reader of their own; a
                # wire flip on the sweep read is noise, not state
                consume(base, n_pages)
            if is_rotten is None:
                continue
            for page in range(base, base + n_pages):
                if is_rotten(page):
                    self._charged_write(page, 1)
                    self.copies_repaired += 1
        return None
