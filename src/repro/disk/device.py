"""A simulated disk that counts seeks and page transfers.

The device models what the paper measures: a linear address space of
fixed-size pages, a head position, and two counters.  Reading or
writing a run of pages costs one *seek* if the run does not start where
the head currently is, plus one *transfer* per page.  This reproduces
the paper's definition exactly ("page seeks [are] caused by reading a
page not adjacent to the previously read page").

The device stores no bytes -- data lives in the
:class:`~repro.disk.pagefile.PointFile` layers above -- it is purely the
accountant through which *all* simulated I/O must flow.

The ledger is lock-protected: a batch runner or the prediction service
can drive one device from several worker threads, and every counter
update is a read-modify-write that would otherwise lose increments
(two threads both reading ``_transfers`` before either writes it
back).  The lock covers only counter arithmetic -- no I/O, no
randomness -- so single-threaded callers pay nothing measurable.
"""

from __future__ import annotations

import threading

from ..errors import DiskError
from .accounting import DiskParameters, IOCost

__all__ = ["SimulatedDisk"]


class SimulatedDisk:
    """Page-addressed disk with adjacency-aware seek counting.

    ``capacity_pages`` bounds the address space: when set, allocations
    past it raise :class:`~repro.errors.DiskError` instead of silently
    simulating a device larger than the one being modeled.
    """

    def __init__(
        self,
        parameters: DiskParameters | None = None,
        *,
        capacity_pages: int | None = None,
    ):
        if capacity_pages is not None and capacity_pages < 0:
            raise ValueError("capacity_pages must be non-negative")
        self.parameters = parameters or DiskParameters()
        self.capacity_pages = capacity_pages
        self._seeks = 0
        self._transfers = 0
        self._retries = 0
        self._faults = 0
        self._head: int | None = None  # page the head sits *after*
        self._next_free_page = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def allocate(self, n_pages: int) -> int:
        """Reserve ``n_pages`` consecutive pages; returns the start page."""
        if n_pages < 0:
            raise ValueError("cannot allocate a negative number of pages")
        with self._lock:
            if (
                self.capacity_pages is not None
                and self._next_free_page + n_pages > self.capacity_pages
            ):
                raise DiskError(
                    f"allocation of {n_pages} pages exceeds device capacity: "
                    f"{self._next_free_page} of {self.capacity_pages} pages "
                    f"already allocated"
                )
            start = self._next_free_page
            self._next_free_page += n_pages
            return start

    @property
    def allocated_pages(self) -> int:
        return self._next_free_page

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def access(self, start_page: int, n_pages: int) -> IOCost:
        """Read or write ``n_pages`` consecutive pages starting at
        ``start_page``; returns the incremental cost charged."""
        if start_page < 0 or n_pages < 0:
            raise ValueError("page addresses and counts must be non-negative")
        if n_pages == 0:
            return IOCost()
        with self._lock:
            seeks = 0 if self._head == start_page else 1
            self._seeks += seeks
            self._transfers += n_pages
            self._head = start_page + n_pages
        return IOCost(seeks=seeks, transfers=n_pages)

    read = access
    write = access

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def cost(self) -> IOCost:
        """Total cost charged since construction (or the last reset)."""
        with self._lock:
            return IOCost(
                seeks=self._seeks,
                transfers=self._transfers,
                retries=self._retries,
                faults_seen=self._faults,
            )

    def seconds(self) -> float:
        return self.cost.seconds(self.parameters)

    def reset_counters(self) -> IOCost:
        """Zero the counters; returns the counts accumulated so far.

        The head position and the allocation pointer are preserved --
        resetting the ledger must not create a phantom free seek.
        """
        with self._lock:
            total = IOCost(
                seeks=self._seeks,
                transfers=self._transfers,
                retries=self._retries,
                faults_seen=self._faults,
            )
            self._seeks = 0
            self._transfers = 0
            self._retries = 0
            self._faults = 0
            return total

    # ------------------------------------------------------------------
    # Resilience accounting (used by FaultInjector / RetryPolicy)
    # ------------------------------------------------------------------

    def charge_penalty(self, penalty: IOCost) -> None:
        """Charge extra simulated time (latency spike, retry backoff)
        without moving the head -- the device stalled, it did not seek
        anywhere useful."""
        with self._lock:
            self._seeks += penalty.seeks
            self._transfers += penalty.transfers

    def note_retry(self, backoff: IOCost) -> None:
        """Record one retry round and charge its backoff to the ledger."""
        with self._lock:
            self._seeks += backoff.seeks
            self._transfers += backoff.transfers
            self._retries += 1

    def note_fault(self) -> None:
        """Record one injected fault observation."""
        with self._lock:
            self._faults += 1

    def drop_head(self) -> None:
        """Forget the head position (e.g. another process used the disk),
        so the next access pays a seek."""
        with self._lock:
            self._head = None
