"""Simulated disk: seek/transfer accounting, paged point files,
fault injection, and retry policies."""

from .accounting import DiskParameters, IOCost
from .bufferpool import BufferedDisk
from .device import SimulatedDisk
from .faults import FaultInjector
from .pagefile import PointFile
from .retry import RetryPolicy

__all__ = [
    "DiskParameters",
    "IOCost",
    "BufferedDisk",
    "SimulatedDisk",
    "FaultInjector",
    "PointFile",
    "RetryPolicy",
]
