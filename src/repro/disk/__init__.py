"""Simulated disk: seek/transfer accounting and paged point files."""

from .accounting import DiskParameters, IOCost
from .bufferpool import BufferedDisk
from .device import SimulatedDisk
from .pagefile import PointFile

__all__ = ["DiskParameters", "IOCost", "BufferedDisk", "SimulatedDisk", "PointFile"]
