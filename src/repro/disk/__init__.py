"""Simulated disk: seek/transfer accounting, paged point files,
fault injection, retry policies, checksummed pages, write-ahead
journaling, and the chaos harness exercising them."""

from .accounting import DiskParameters, IOCost
from .bufferpool import BufferedDisk
from .device import SimulatedDisk
from .faults import FaultInjector
from .journal import JournalEntry, RecoveryReport, WriteAheadJournal
from .pagefile import PointFile
from .retry import RetryPolicy

__all__ = [
    "DiskParameters",
    "IOCost",
    "BufferedDisk",
    "SimulatedDisk",
    "FaultInjector",
    "JournalEntry",
    "PointFile",
    "RecoveryReport",
    "RetryPolicy",
    "WriteAheadJournal",
]
