"""Simulated disk: seek/transfer accounting, paged point files,
fault injection, retry policies, checksummed pages, write-ahead
journaling, self-healing redundancy (mirrors, parity stripes, and the
background scrubber), and the chaos harness exercising them."""

from .accounting import DiskParameters, IOCost
from .bufferpool import BufferedDisk
from .device import SimulatedDisk
from .faults import FaultInjector
from .journal import JournalEntry, RecoveryReport, WriteAheadJournal
from .pagefile import PointFile
from .redundancy import RedundancyManager, RedundancyPolicy, ScrubReport
from .retry import RetryPolicy

__all__ = [
    "DiskParameters",
    "IOCost",
    "BufferedDisk",
    "SimulatedDisk",
    "FaultInjector",
    "JournalEntry",
    "PointFile",
    "RecoveryReport",
    "RedundancyManager",
    "RedundancyPolicy",
    "RetryPolicy",
    "ScrubReport",
    "WriteAheadJournal",
]
