"""Write-ahead journal: atomic multi-page commits on the simulated disk.

A torn multi-page write is *detectable* (PR 1's fault model raises
:class:`~repro.errors.TornWriteError`) but not *repairable*: once the
retry policy is exhausted, the caller only knows the range is suspect.
The journal closes that gap with the classic journal-then-install
protocol:

1. **journal write** -- the payload pages are written to a dedicated
   journal region of the same disk (charged: one seek to the region
   plus one transfer per page, the same Eq. 1-5 seek/transfer pricing
   as every other access);
2. **commit marker** -- a single-page marker write seals the entry.
   Single-page writes are atomic on this device (torn writes require at
   least two pages), so an entry is either fully journaled or garbage;
3. **install** -- the target pages are overwritten in place;
4. **applied marker** -- a final single-page write retires the entry
   and frees its journal space.

A crash (:class:`~repro.errors.CrashPoint`) or an unrecovered fault at
any step leaves the entry in a well-defined state, and
:meth:`WriteAheadJournal.recover` finishes the job: entries with a
commit marker are **replayed** (the install is idempotent), entries
without one are **rolled back** (discarded -- nothing was installed,
because installs strictly follow commits).  Every step charges the
ledger *before* mutating in-process state, so the simulated crash
leaves exactly the durable prefix visible.

The journal stores entry payloads in process memory (the device stores
no bytes anywhere -- see :mod:`repro.disk.device`); what is simulated
faithfully is the I/O cost and the commit-ordering protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..errors import DiskError
from .accounting import IOCost

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .pagefile import PointFile

__all__ = ["JournalEntry", "RecoveryReport", "WriteAheadJournal"]


@dataclass
class JournalEntry:
    """One atomic write in flight: its target, payload, and protocol state."""

    file: "PointFile"
    start: int
    points: np.ndarray
    journal_page: int
    payload_pages: int
    committed: bool = False
    applied: bool = False


@dataclass(frozen=True)
class RecoveryReport:
    """What :meth:`WriteAheadJournal.recover` did, and what it cost."""

    replayed: int
    rolled_back: int
    io_cost: IOCost = field(default_factory=IOCost)

    @property
    def clean(self) -> bool:
        return self.replayed == 0 and self.rolled_back == 0


class WriteAheadJournal:
    """A circular journal region on ``disk`` serving atomic commits.

    ``capacity_pages`` bounds a *single* commit (payload plus its
    marker page); the region is reused circularly, since an applied
    entry's pages are dead.  All journal I/O flows through ``disk`` --
    typically a :class:`~repro.disk.faults.FaultInjector` -- so it is
    charged to the same :class:`~repro.disk.accounting.IOCost` ledger
    as data I/O, shows up in ``journal_cost``, and is itself subject to
    injected faults and crash points.
    """

    def __init__(self, disk, *, capacity_pages: int = 256):
        if capacity_pages < 2:
            raise ValueError(
                "a journal needs at least one payload page plus a marker"
            )
        self.disk = disk
        self.capacity_pages = capacity_pages
        self.start_page = disk.allocate(capacity_pages)
        self._cursor = 0
        self._entries: list[JournalEntry] = []
        self._journal_cost = IOCost()

    @property
    def journal_cost(self) -> IOCost:
        """Cumulative cost of journal-region I/O (not installs)."""
        return self._journal_cost

    @property
    def pending_entries(self) -> int:
        """Entries not yet retired by an applied marker."""
        return sum(1 for e in self._entries if not e.applied)

    # ------------------------------------------------------------------

    def _reserve(self, n_pages: int) -> int:
        if n_pages > self.capacity_pages:
            raise DiskError(
                f"commit of {n_pages} pages exceeds the journal's "
                f"{self.capacity_pages}-page region"
            )
        if self._cursor + n_pages > self.capacity_pages:
            self._cursor = 0  # wrap: earlier entries are applied and dead
        start = self.start_page + self._cursor
        self._cursor += n_pages
        return start

    def _charge_journal(self, page: int, n_pages: int, file: "PointFile") -> None:
        """One charged journal-region write, under the file's retry policy."""
        def op() -> IOCost:
            self.disk.drop_head()  # the journal region is elsewhere
            return self.disk.write(page, n_pages)

        self._journal_cost = self._journal_cost + file.charged(op)

    def commit(self, file: "PointFile", start: int, points: np.ndarray) -> None:
        """Atomically overwrite ``file[start : start + len(points)]``.

        Journal-then-install; see the module docstring for the
        protocol.  On return the write is fully applied and retired.
        If an exception escapes (crash, retries exhausted), the entry
        remains queued for :meth:`recover`.
        """
        points = np.asarray(points, dtype=np.float64)
        stop = start + points.shape[0]
        if stop > file.capacity:
            raise IndexError(f"write past capacity: [{start}, {stop})")
        payload_pages = max(1, math.ceil(points.shape[0] / file.points_per_page))
        jstart = self._reserve(payload_pages + 1)
        entry = JournalEntry(
            file=file,
            start=start,
            points=np.array(points, copy=True),
            journal_page=jstart,
            payload_pages=payload_pages,
        )
        self._entries.append(entry)
        # 1. payload into the journal region (torn here -> rollback later)
        self._charge_journal(jstart, payload_pages, file)
        # 2. single-page commit marker: the atomicity point
        self._charge_journal(jstart + payload_pages, 1, file)
        entry.committed = True
        # 3. + 4. install in place, then retire
        self._install(entry)
        self._retire(entry)

    def _install(self, entry: JournalEntry) -> None:
        """Overwrite the target pages from the journaled payload.

        Idempotent: replaying after a partial install rewrites the full
        range.  The charge lands before the buffer mutation, so a crash
        mid-install leaves the file's visible state at the old version
        for recovery to finish.
        """
        file = entry.file
        stop = entry.start + entry.points.shape[0]
        # install_pages carries the charged write plus everything a
        # write must propagate: replica/parity copies and buffer-pool
        # invalidation (a cached pre-install page is stale the moment
        # the install lands)
        file.install_pages(entry.start, stop)
        file.place(entry.start, entry.points)

    def _retire(self, entry: JournalEntry) -> None:
        marker = entry.journal_page + entry.payload_pages
        self._charge_journal(marker, 1, entry.file)
        entry.applied = True
        self._entries = [e for e in self._entries if not e.applied]

    # ------------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Finish or discard every in-flight entry after a crash.

        Committed entries are replayed (re-installed from the journal
        payload and retired); uncommitted entries are rolled back.
        Replay I/O is charged like any other I/O.  Safe to call on a
        clean journal -- it reports ``clean`` and charges nothing.
        """
        start_cost = self.disk.cost
        replayed = rolled_back = 0
        for entry in list(self._entries):
            if entry.applied:
                continue
            if entry.committed:
                self._install(entry)
                self._retire(entry)
                replayed += 1
            else:
                rolled_back += 1
        self._entries = [e for e in self._entries if not e.applied]
        # Rolled-back entries are simply forgotten: nothing was
        # installed, and their journal pages are dead space the cursor
        # will reuse.
        self._entries = [e for e in self._entries if e.committed]
        return RecoveryReport(
            replayed=replayed,
            rolled_back=rolled_back,
            io_cost=self.disk.cost - start_cost,
        )
