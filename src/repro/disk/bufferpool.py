"""An LRU buffer pool in front of the simulated disk.

The paper prices every page access as physical I/O -- the standard
worst-case assumption for index cost models.  Real systems keep a
buffer pool, and repeated leaf accesses across a query workload hit it.
This wrapper makes that assumption measurable: reads check an LRU page
cache and only misses reach (and charge) the underlying
:class:`~repro.disk.device.SimulatedDisk`; consecutive missed pages
coalesce into one physical run, as a real scheduler would issue them.

The buffer-pool ablation benchmark replays a measured workload through
pools of increasing size, quantifying how conservative the paper's
cold-read pricing is.

The pool also stacks *under* a :class:`~repro.disk.pagefile.PointFile`
(over a bare disk or a :class:`~repro.disk.faults.FaultInjector`): the
full device API is passed through, and :meth:`invalidate` evicts page
runs whose served content changed out from under the cache -- atomic
installs, truncation, and repair rewrites all route through it via
``PointFile.invalidate_cached``, so a repaired page is never served
stale.
"""

from __future__ import annotations

from collections import OrderedDict

from .accounting import DiskParameters, IOCost
from .device import SimulatedDisk

__all__ = ["BufferedDisk"]


class BufferedDisk:
    """Page-granular LRU cache charging only misses to the real disk."""

    def __init__(self, disk: SimulatedDisk, capacity_pages: int):
        if capacity_pages < 0:
            raise ValueError("capacity_pages must be non-negative")
        self.disk = disk
        self.capacity_pages = capacity_pages
        self._pages: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------

    def read(self, start_page: int, n_pages: int) -> IOCost:
        """Read a run of pages; returns the *physical* cost incurred."""
        if start_page < 0 or n_pages < 0:
            raise ValueError("page addresses and counts must be non-negative")
        total = IOCost()
        run_start: int | None = None
        run_length = 0
        for page in range(start_page, start_page + n_pages):
            if self._touch(page):
                self.hits += 1
                if run_start is not None:
                    total = total + self.disk.read(run_start, run_length)
                    run_start, run_length = None, 0
            else:
                self.misses += 1
                self._admit(page)
                if run_start is None:
                    run_start, run_length = page, 1
                else:
                    run_length += 1
        if run_start is not None:
            total = total + self.disk.read(run_start, run_length)
        return total

    def write(self, start_page: int, n_pages: int) -> IOCost:
        """Write-through: charge the disk, keep the pages cached."""
        if start_page < 0 or n_pages < 0:
            raise ValueError("page addresses and counts must be non-negative")
        for page in range(start_page, start_page + n_pages):
            if not self._touch(page):
                self._admit(page)
        if n_pages == 0:
            return IOCost()
        return self.disk.write(start_page, n_pages)

    def invalidate(self, start_page: int, n_pages: int) -> None:
        """Evict a page run: its cached content is no longer current.

        Uncharged -- eviction is bookkeeping, not I/O.  The next read
        of an evicted page is a miss and pays the physical cost of
        fetching the (new) content.
        """
        if start_page < 0 or n_pages < 0:
            raise ValueError("page addresses and counts must be non-negative")
        for page in range(start_page, start_page + n_pages):
            self._pages.pop(page, None)

    def drop_head(self) -> None:
        self.disk.drop_head()

    @property
    def hit_rate(self) -> float:
        accesses = self.hits + self.misses
        return self.hits / accesses if accesses else 0.0

    def clear(self) -> None:
        """Evict everything (e.g. between experiment repetitions)."""
        self._pages.clear()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------

    def _touch(self, page: int) -> bool:
        """True (and refresh recency) if ``page`` is cached."""
        if self.capacity_pages == 0 or page not in self._pages:
            return False
        self._pages.move_to_end(page)
        return True

    def _admit(self, page: int) -> None:
        if self.capacity_pages == 0:
            return
        self._pages[page] = None
        self._pages.move_to_end(page)
        while len(self._pages) > self.capacity_pages:
            self._pages.popitem(last=False)

    # ------------------------------------------------------------------
    # Pass-through of the rest of the device API, so the pool stacks
    # under a PointFile (reads/writes above take the cached paths)
    # ------------------------------------------------------------------

    access = read

    @property
    def parameters(self) -> DiskParameters:
        return self.disk.parameters

    def allocate(self, n_pages: int) -> int:
        return self.disk.allocate(n_pages)

    @property
    def allocated_pages(self) -> int:
        return self.disk.allocated_pages

    @property
    def cost(self) -> IOCost:
        return self.disk.cost

    def seconds(self) -> float:
        return self.disk.seconds()

    def reset_counters(self) -> IOCost:
        return self.disk.reset_counters()

    def charge_penalty(self, penalty: IOCost) -> None:
        self.disk.charge_penalty(penalty)

    def note_retry(self, backoff: IOCost) -> None:
        self.disk.note_retry(backoff)

    def note_fault(self) -> None:
        self.disk.note_fault()

    def consume_corruption(
        self, start_page: int, n_pages: int
    ) -> list[tuple[int, int, int]]:
        consume = getattr(self.disk, "consume_corruption", None)
        return consume(start_page, n_pages) if consume is not None else []

    def at_rest_flips(
        self, start_page: int, n_pages: int
    ) -> list[tuple[int, int, int]]:
        flips = getattr(self.disk, "at_rest_flips", None)
        return flips(start_page, n_pages) if flips is not None else []

    def is_rotten(self, page: int) -> bool:
        rotten = getattr(self.disk, "is_rotten", None)
        return bool(rotten(page)) if rotten is not None else False
