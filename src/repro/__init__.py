"""Sampling-based cost prediction for high-dimensional index structures.

A from-scratch reproduction of Lang & Singh, "Modeling High-Dimensional
Index Structures using Sampling" (SIGMOD 2001): predict the number of
index leaf-page accesses a query workload incurs on a bulk-loaded
VAMSplit R*-tree by building a miniature index on a data sample,
compensating for sampling-induced page shrinkage, and counting
query-region/page intersections -- under explicit memory budgets and
with full I/O cost accounting on a simulated disk.

Typical use::

    import numpy as np
    from repro import IndexCostPredictor

    points = np.load("features.npy")            # (n, d) float matrix
    predictor = IndexCostPredictor(dim=points.shape[1], memory=10_000)
    workload = predictor.make_workload(points, n_queries=500, k=21)
    estimate = predictor.predict(points, workload, method="resampled")
    print(estimate.mean_accesses, estimate.io_cost)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from .baselines import FractalCostModel, FractalEstimationError, UniformCostModel
from .core import (
    AnalyticalCostModel,
    CutoffModel,
    DynamicMiniIndexModel,
    IndexCostPredictor,
    MiniIndexModel,
    PredictionResult,
    ResampledModel,
    Topology,
    compensation_side_factor,
    compensation_volume_factor,
    page_capacities,
)
from .disk import (
    DiskParameters,
    FaultInjector,
    IOCost,
    PointFile,
    RedundancyPolicy,
    RetryPolicy,
    ScrubReport,
    SimulatedDisk,
)
from .errors import (
    ArtifactCorruptError,
    BudgetExceededError,
    CircuitOpenError,
    DeadlineExceededError,
    DegradedResultWarning,
    DiskError,
    InputValidationError,
    PredictionError,
    ReplicaUnavailableError,
    ReproError,
    ServiceOverloadedError,
    TenantQuotaExceededError,
    TornWriteError,
    TransientReadError,
    UnknownKernelError,
    UnrecoverableCorruptionError,
)
from .cluster import (
    ClusterResponse,
    PredictionCluster,
    Router,
    RoutingTable,
    run_cluster_loadtest,
)
from .kernels import LeafGeometry, available_kernels, get_kernel
from .ondisk import MeasurementResult, OnDiskBuilder, OnDiskIndex, measure_knn
from .runtime import (
    BatchReport,
    BatchRunner,
    BatchTask,
    Budget,
    CircuitBreaker,
    Governor,
    HedgeOutcome,
    TaskReport,
    run_hedged,
)
from .rtree import MBR, BulkLoadConfig, KNNResult, RStarTree, RTree
from .service import (
    ArtifactStore,
    FittedModel,
    PredictionService,
    ServiceResponse,
    TenantQuota,
    fit_model,
    load_artifact,
    run_loadtest,
    save_artifact,
)
from .workload import (
    KNNWorkload,
    RangeWorkload,
    density_biased_knn_workload,
    density_biased_range_workload,
    exact_knn_radii,
)

__version__ = "1.0.0"

__all__ = [
    "FractalCostModel",
    "FractalEstimationError",
    "UniformCostModel",
    "AnalyticalCostModel",
    "CutoffModel",
    "DynamicMiniIndexModel",
    "IndexCostPredictor",
    "MiniIndexModel",
    "PredictionResult",
    "ResampledModel",
    "Topology",
    "compensation_side_factor",
    "compensation_volume_factor",
    "page_capacities",
    "DiskParameters",
    "FaultInjector",
    "IOCost",
    "PointFile",
    "RedundancyPolicy",
    "RetryPolicy",
    "ScrubReport",
    "SimulatedDisk",
    "ArtifactCorruptError",
    "BudgetExceededError",
    "CircuitOpenError",
    "DeadlineExceededError",
    "DegradedResultWarning",
    "DiskError",
    "InputValidationError",
    "PredictionError",
    "ReplicaUnavailableError",
    "ReproError",
    "ServiceOverloadedError",
    "TenantQuotaExceededError",
    "TornWriteError",
    "TransientReadError",
    "UnknownKernelError",
    "UnrecoverableCorruptionError",
    "ClusterResponse",
    "PredictionCluster",
    "Router",
    "RoutingTable",
    "run_cluster_loadtest",
    "LeafGeometry",
    "available_kernels",
    "get_kernel",
    "MeasurementResult",
    "OnDiskBuilder",
    "OnDiskIndex",
    "measure_knn",
    "BatchReport",
    "BatchRunner",
    "BatchTask",
    "Budget",
    "CircuitBreaker",
    "Governor",
    "HedgeOutcome",
    "TaskReport",
    "run_hedged",
    "MBR",
    "BulkLoadConfig",
    "KNNResult",
    "RStarTree",
    "RTree",
    "ArtifactStore",
    "FittedModel",
    "PredictionService",
    "ServiceResponse",
    "TenantQuota",
    "fit_model",
    "load_artifact",
    "run_loadtest",
    "save_artifact",
    "KNNWorkload",
    "RangeWorkload",
    "density_biased_knn_workload",
    "density_biased_range_workload",
    "exact_knn_radii",
    "__version__",
]
