"""Uniform-data cost model baseline (Weber et al. / Berchtold et al.).

The latest uniformity-based models the paper compares against assume:

* data uniform in the unit hypercube ``[0, 1]^d``;
* leaf pages created by recursively splitting the space *in the middle*
  -- with ``p`` pages, ``ceil(log2 p)`` binary midpoint splits spread
  round-robin over the dimensions, so a page has extent ``2^-t`` in a
  dimension split ``t`` times and ``1`` elsewhere;
* the expected k-NN sphere radius obtained by equating the expected
  number of neighbors inside the sphere with ``k`` (volume formula);
* page accesses estimated with a Minkowski-sum argument: a page is read
  iff the query lies within ``r`` of it, so the access probability is
  the (dataspace-clipped) volume of the page enlarged by ``r`` per side.

In high dimensions the predicted radius exceeds the dataspace extent
and every enlarged page covers the whole space -- the model predicts
that *all* pages are read (Section 5.3: 8,641 of 8,641 pages for
TEXTURE60, a 1,169% relative error).  That failure is the point of the
baseline; the implementation below is a faithful, documented rendering
of it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.special import gammaln

__all__ = ["UniformCostModel"]


@dataclass(frozen=True)
class UniformCostModel:
    """Closed-form uniform model for ``n_points`` points in ``dim`` dims.

    ``c_eff`` is the effective leaf-page capacity (points per page).
    """

    n_points: int
    dim: int
    c_eff: float

    def __post_init__(self) -> None:
        if self.n_points < 2 or self.dim < 1 or self.c_eff <= 1:
            raise ValueError("need n_points >= 2, dim >= 1, c_eff > 1")

    @property
    def n_pages(self) -> int:
        return max(1, math.ceil(self.n_points / self.c_eff))

    @property
    def n_split_dimensions(self) -> int:
        """How many dimensions the midpoint splits touch at least once."""
        return min(self.dim, max(1, math.ceil(math.log2(self.n_pages))))

    def page_extents(self) -> list[float]:
        """Per-dimension extent of the average midpoint-split page."""
        splits_total = max(1, math.ceil(math.log2(self.n_pages)))
        base, extra = divmod(splits_total, self.dim)
        return [
            2.0 ** -(base + (1 if i < extra else 0)) for i in range(self.dim)
        ]

    def expected_knn_radius(self, k: int) -> float:
        """Radius with ``k`` expected uniform neighbors inside the sphere.

        Solves ``N * V_d(r) = k`` with the d-ball volume
        ``V_d(r) = pi^(d/2) / Gamma(d/2 + 1) * r^d`` (computed in log
        space -- the Gamma term overflows beyond ~300 dimensions).
        Unclipped: in high dimensions the radius exceeds 1, which is
        precisely the regime where the model collapses.
        """
        if not 1 <= k <= self.n_points:
            raise ValueError(f"k={k} outside [1, {self.n_points}]")
        d = self.dim
        log_unit_ball = (d / 2.0) * math.log(math.pi) - gammaln(d / 2.0 + 1.0)
        log_r = (math.log(k / self.n_points) - log_unit_ball) / d
        return math.exp(log_r)

    def access_probability(self, radius: float) -> float:
        """Minkowski-sum access probability of the average page.

        Each dimension contributes ``min(1, extent + 2r)`` -- the page
        slab enlarged by the radius, clipped to the unit dataspace.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        probability = 1.0
        for extent in self.page_extents():
            probability *= min(1.0, extent + 2.0 * radius)
        return probability

    def predict_knn_accesses(self, k: int) -> float:
        """Expected leaf-page accesses of a k-NN query."""
        return self.n_pages * self.access_probability(self.expected_knn_radius(k))

    def predict_range_accesses(self, side: float) -> float:
        """Expected leaf-page accesses of a cubic range query."""
        if side < 0:
            raise ValueError("side must be non-negative")
        return self.n_pages * self.access_probability(side / 2.0)
