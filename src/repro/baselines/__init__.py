"""Comparison baselines: uniform and fractal cost models."""

from .fractal import (
    FractalCostModel,
    FractalEstimationError,
    box_counting_dimension,
    correlation_dimension,
)
from .uniform_model import UniformCostModel

__all__ = [
    "FractalCostModel",
    "FractalEstimationError",
    "box_counting_dimension",
    "correlation_dimension",
    "UniformCostModel",
]
