"""Fractal-dimensionality cost model baseline (Korn et al. style).

The second family of models the paper compares against describes a
dataset by two global parameters:

* the Hausdorff / box-counting dimension ``D0`` -- the slope of
  ``log N(eps)`` (occupied grid cells of side ``eps``) against
  ``log (1/eps)``;
* the correlation fractal dimension ``D2`` -- the slope of the
  log-log correlation integral (fraction of point pairs within
  distance ``r``).

The cost model then assumes square pages whose side comes from the
fractal measure (a page holding ``C`` of ``N`` points sits at the box
scale where ``N(eps) = N / C``), a k-NN radius from inverting the
fitted correlation integral at ``k / (N - 1)`` expected neighbors, and
a Minkowski-sum access estimate with the *fractal* exponent:
``accesses = pages * min(1, s + 2 r)^D0``.

On high-dimensional clustered data ``D0`` collapses toward 0, the
exponent flattens the Minkowski term toward 1, and the model predicts
that nearly all pages are read -- a large overestimate (Table 4:
5,892 predicted vs. 681 measured).  For the very-high-dimensional
datasets (N << d) the log-log fits have no linear regime at all; this
implementation raises :class:`FractalEstimationError` there, matching
the paper's "not applicable anymore" verdict.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "FractalEstimationError",
    "LogLogFit",
    "box_counting_dimension",
    "correlation_dimension",
    "FractalCostModel",
]


class FractalEstimationError(ValueError):
    """The dataset admits no usable fractal-dimension estimate."""


@dataclass(frozen=True)
class LogLogFit:
    """A fitted line ``log y = slope * log x + intercept``."""

    slope: float
    intercept: float

    def predict_log_y(self, log_x: float) -> float:
        return self.slope * log_x + self.intercept

    def invert_to_log_x(self, log_y: float) -> float:
        if self.slope == 0:
            raise FractalEstimationError("zero slope: cannot invert fit")
        return (log_y - self.intercept) / self.slope


def _normalize(points: np.ndarray) -> np.ndarray:
    """Stretch the point cloud into the unit cube, per dimension.

    Per-dimension normalization is the standard preprocessing of
    fractal-dimension estimators -- and it is also why they collapse on
    transformed feature data: KLT/DFT trailing dimensions carry pure
    noise, get stretched to full extent, and make the box count
    saturate, which is how near-zero ``D0`` estimates like the paper's
    0.094 for TEXTURE60 arise.  Reproducing the baseline means
    reproducing this behavior.
    """
    points = np.asarray(points, dtype=np.float64)
    lower = points.min(axis=0)
    extent = points.max(axis=0) - lower
    extent[extent == 0] = 1.0
    return (points - lower) / extent


def _fit_line(log_x: np.ndarray, log_y: np.ndarray) -> LogLogFit:
    if log_x.size < 2:
        raise FractalEstimationError("fewer than two usable scales in fit")
    slope, intercept = np.polyfit(log_x, log_y, deg=1)
    return LogLogFit(slope=float(slope), intercept=float(intercept))


def box_counting_dimension(
    points: np.ndarray,
    *,
    n_scales: int = 8,
    min_cells: int = 2,
) -> LogLogFit:
    """Fit the box-counting (Hausdorff) dimension ``D0``.

    Grid cells are identified by hashing the integer cell coordinates,
    so the method works in arbitrary dimensionality (the grid is never
    materialized).  Scales run geometrically from 1/2 down.  The fit
    deliberately keeps *saturated* scales (every point in its own
    cell): the estimator cannot tell saturation from structure, and on
    high-dimensional data the resulting near-flat fit is exactly the
    failure mode the paper reports.  A dataset whose box count never
    grows at all (slope <= 0, e.g. N << d with all-distinct cells at
    every scale) raises :class:`FractalEstimationError` -- the paper's
    "not applicable" case.
    """
    normalized = _normalize(points)
    log_inv_eps: list[float] = []
    log_cells: list[float] = []
    for level in range(1, n_scales + 1):
        eps = 0.5**level
        cells = np.floor(normalized / eps).astype(np.int64)
        occupied = len({row.tobytes() for row in cells})
        if occupied < min_cells:
            continue
        log_inv_eps.append(level * math.log(2.0))
        log_cells.append(math.log(occupied))
    fit = _fit_line(np.array(log_inv_eps), np.array(log_cells))
    if fit.slope <= 0:
        raise FractalEstimationError(f"non-positive D0 estimate {fit.slope:.4f}")
    return fit


def correlation_dimension(
    points: np.ndarray,
    rng: np.random.Generator,
    *,
    n_pairs: int = 100_000,
    n_scales: int = 12,
) -> LogLogFit:
    """Fit the correlation dimension ``D2`` from sampled point pairs.

    ``C(r)`` -- the fraction of pairs within distance ``r`` -- is
    estimated on ``n_pairs`` random pairs and fitted over a geometric
    radius grid spanning the observed pair-distance range.
    """
    normalized = _normalize(points)
    n = normalized.shape[0]
    if n < 4:
        raise FractalEstimationError("too few points for pair statistics")
    a = rng.integers(0, n, size=n_pairs)
    b = rng.integers(0, n, size=n_pairs)
    keep = a != b
    diffs = normalized[a[keep]] - normalized[b[keep]]
    dists = np.sqrt(np.einsum("nd,nd->n", diffs, diffs))
    dists = dists[dists > 0]
    if dists.size < 100:
        raise FractalEstimationError("too few distinct pair distances")
    lo, hi = np.quantile(dists, [0.01, 0.99])
    if not 0 < lo < hi:
        raise FractalEstimationError("degenerate pair-distance distribution")
    radii = np.geomspace(lo, hi, n_scales)
    fractions = np.searchsorted(np.sort(dists), radii) / dists.size
    usable = fractions > 0
    fit = _fit_line(np.log(radii[usable]), np.log(fractions[usable]))
    if fit.slope <= 0:
        raise FractalEstimationError(f"non-positive D2 estimate {fit.slope:.4f}")
    return fit


@dataclass(frozen=True)
class FractalCostModel:
    """Korn-et-al-style k-NN cost prediction from ``D0`` and ``D2``."""

    n_points: int
    c_eff: float
    d0_fit: LogLogFit
    d2_fit: LogLogFit

    @classmethod
    def from_points(
        cls,
        points: np.ndarray,
        c_eff: float,
        rng: np.random.Generator,
        *,
        min_points_per_dim: int = 100,
    ) -> "FractalCostModel":
        """Estimate both dimensions from the data and build the model.

        Raises :class:`FractalEstimationError` when the cardinality is
        too small relative to the dimensionality for the fits to have a
        scaling regime -- the paper's verdict for its 360- and 617-
        dimensional datasets ("the number of points is too small
        compared to the number of dimensions", Section 5.3).
        """
        points = np.asarray(points, dtype=np.float64)
        n, dim = points.shape
        if n < min_points_per_dim * dim:
            raise FractalEstimationError(
                f"{n} points in {dim} dimensions: too few points per "
                f"dimension for a fractal scaling regime "
                f"(need >= {min_points_per_dim} per dimension)"
            )
        return cls(
            n_points=n,
            c_eff=c_eff,
            d0_fit=box_counting_dimension(points),
            d2_fit=correlation_dimension(points, rng),
        )

    @property
    def d0(self) -> float:
        return self.d0_fit.slope

    @property
    def d2(self) -> float:
        return self.d2_fit.slope

    @property
    def n_pages(self) -> int:
        return max(1, math.ceil(self.n_points / self.c_eff))

    def page_side(self) -> float:
        """Side of the average page at the fractal box scale.

        A page holds ``C`` of ``N`` points, i.e. sits at the box-count
        scale with ``N / C`` occupied cells; inverting the fitted
        box-count line gives its side (``log N(eps)`` grows with
        ``log (1/eps)``, hence the sign flip).
        """
        log_inv_eps = self.d0_fit.invert_to_log_x(math.log(self.n_pages))
        # Clamp into the unit dataspace: a near-flat fit extrapolates to
        # absurd scales in either direction.
        return math.exp(-min(max(log_inv_eps, 0.0), 700.0))

    def expected_knn_radius(self, k: int) -> float:
        """Radius with ``k`` expected neighbors, from the fitted
        correlation integral: ``(N - 1) * C(r) = k``."""
        if not 1 <= k < self.n_points:
            raise ValueError(f"k={k} outside [1, {self.n_points})")
        log_r = self.d2_fit.invert_to_log_x(math.log(k / (self.n_points - 1)))
        # Clamp into the unit dataspace, as for the page side.
        return math.exp(min(max(log_r, -700.0), 0.0))

    def predict_knn_accesses(self, k: int) -> float:
        """Expected leaf accesses: fractal Minkowski sum over the pages."""
        grown = min(1.0, self.page_side() + 2.0 * self.expected_knn_radius(k))
        return self.n_pages * grown**self.d0
